#!/usr/bin/env python3
"""Snapshot SELECTs over the virtual device tables (paper Section 3.2).

Demonstrates the scan-operator abstraction: each device type is a
virtual relational table whose sensory columns are acquired live over
the (simulated) network at query time.

Run:  python examples/snapshot_queries.py
"""

from repro import (
    AortaEngine,
    Environment,
    MobilePhone,
    PanTiltZoomCamera,
    Point,
    SensorMote,
    SensorStimulus,
)


def build(engine: AortaEngine) -> None:
    env = engine.env
    engine.add_device(PanTiltZoomCamera(env, "cam1", Point(0, 0),
                                        ip_address="10.0.0.1"))
    engine.add_device(PanTiltZoomCamera(env, "cam2", Point(18, 4),
                                        ip_address="10.0.0.2",
                                        view_range=12.0))
    for i, (x, y, depth) in enumerate(
            [(3, 1, 1), (8, -2, 2), (14, 3, 1), (25, 0, 3)]):
        engine.add_device(SensorMote(env, f"mote{i + 1}", Point(x, y),
                                     hop_depth=depth, noise_amplitude=0.0))
    engine.add_device(MobilePhone(env, "phone1", Point(0, 0),
                                  number="+85290000000"))


def show(engine: AortaEngine, sql: str) -> None:
    print(f"\nSQL> {' '.join(sql.split())}")
    plan = engine.execute(sql)
    print(plan.describe())
    rows = []

    def run(env):
        result = yield from plan.execute()
        rows.extend(result)

    engine.env.process(run(engine.env))
    engine.env.run()
    for row in rows:
        printable = tuple(
            f"{v:.2f}" if isinstance(v, float) else v for v in row)
        print(f"  {printable}")
    print(f"  ({len(rows)} row(s), virtual time now "
          f"{engine.env.now:.3f}s)")


def main() -> None:
    env = Environment()
    engine = AortaEngine(env)
    build(engine)

    # Inject a physical event so sensory columns show live variation.
    engine.comm.registry.get("mote2").inject(
        SensorStimulus("accel_x", start=0.0, duration=1e6, magnitude=700))

    show(engine, "SELECT c.id, c.ip, c.pan, c.zoom FROM camera c")
    show(engine, "SELECT s.id, s.accel_x, s.temperature, s.battery "
                 "FROM sensor s")
    show(engine, "SELECT s.id FROM sensor s WHERE s.accel_x > 500")
    show(engine, "SELECT s.id, c.id FROM sensor s, camera c "
                 "WHERE coverage(c.id, s.loc)")
    show(engine, "SELECT s.id, distance(s.loc, c.loc) "
                 "FROM sensor s, camera c "
                 'WHERE c.id = "cam1" AND distance(s.loc, c.loc) < 10')
    show(engine, "SELECT p.number, p.in_coverage, p.battery FROM phone p")

    # Take one camera offline: the virtual table reflects the network.
    engine.comm.registry.get("cam2").go_offline()
    show(engine, "SELECT c.id FROM camera c")


if __name__ == "__main__":
    main()
