#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 snapshot query, end to end.

A mote senses a door being pushed (an accel_x spike); the engine picks
the best-placed camera, aims its head and takes a photo of the mote's
location.

Run:  python examples/quickstart.py
"""

from repro import (
    AortaEngine,
    Environment,
    PanTiltZoomCamera,
    Point,
    SensorMote,
    SensorStimulus,
)

SNAPSHOT_QUERY = '''CREATE AQ snapshot AS
SELECT photo(c.ip, s.loc, "photos/admin")
FROM sensor s, camera c
WHERE s.accel_x > 500 AND coverage(c.id, s.loc)'''


def main() -> None:
    env = Environment()
    engine = AortaEngine(env)

    # The pervasive lab: two ceiling cameras, one mote on the door.
    engine.add_device(PanTiltZoomCamera(env, "cam1", Point(0, 0),
                                        ip_address="10.0.0.1"))
    engine.add_device(PanTiltZoomCamera(env, "cam2", Point(20, 0),
                                        facing=180.0,
                                        ip_address="10.0.0.2"))
    door_mote = SensorMote(env, "mote1", Point(5, 3), noise_amplitude=0.0)
    engine.add_device(door_mote)

    # Register the action-embedded continuous query of Figure 1.
    registered = engine.execute(SNAPSHOT_QUERY)
    print("Registered continuous query:")
    print(registered.plan.describe())
    print()

    # Someone pushes the door 2 virtual seconds in.
    door_mote.inject(SensorStimulus("accel_x", start=2.0, duration=3.0,
                                    magnitude=850.0))

    engine.start()
    engine.run(until=30.0)

    print("Engine statistics after 30 virtual seconds:")
    for key, value in engine.statistics().items():
        print(f"  {key:22s} {value}")
    print()

    for request in engine.completed_requests:
        photo = request.result
        print(f"Request {request.request_id} [{request.state.value}] "
              f"on {request.assigned_device}:")
        print(f"  stored at   {photo.pathname}")
        print(f"  sharp       {not photo.blurred}")
        print(f"  aim error   {photo.aim_error_degrees:.2f} deg")
        print(f"  latency     {request.completion_seconds:.2f} s "
              f"(event to stored photo)")


if __name__ == "__main__":
    main()
