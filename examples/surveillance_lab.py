#!/usr/bin/env python3
"""The pervasive-lab monitoring application (paper Section 6).

Reconstructs the paper's testbed: two AXIS-style PTZ cameras on the
ceiling and ten MICA2 motes at places of interest, running an
action-enabled monitoring application:

1. ten snapshot queries — query i photographs mote i's location on
   motion;
2. a user-defined ``sendphoto()`` action, registered with CREATE ACTION
   exactly as in Section 2.2, forwards each stored photo to the
   off-duty manager's phone over MMS;
3. devices fail and recover while the application runs (Section 4's
   unreliability), exercised via failure injection.

Run:  python examples/surveillance_lab.py
"""

import random

from repro import (
    AortaEngine,
    EngineConfig,
    Environment,
    MobilePhone,
    PanTiltZoomCamera,
    Point,
    SensorMote,
    SensorStimulus,
)
from repro.actions.builtins import sendphoto_profile, sendphoto_resolver
from repro.devices.failures import FailureInjector, OutageSpec

MANAGER_PHONE = "+85291234567"
N_MOTES = 10
MINUTES = 5


def build_lab(engine: AortaEngine) -> None:
    env = engine.env
    engine.add_device(PanTiltZoomCamera(env, "cam1", Point(0, 0),
                                        ip_address="192.168.0.90"))
    engine.add_device(PanTiltZoomCamera(env, "cam2", Point(24, 0),
                                        facing=180.0,
                                        ip_address="192.168.0.91"))
    rng = random.Random(7)
    for i in range(1, N_MOTES + 1):
        engine.add_device(SensorMote(
            env, f"mote{i}",
            Point(rng.uniform(2, 22), rng.uniform(-6, 6)),
            hop_depth=rng.choice([1, 1, 2, 3]),
            noise_amplitude=0.5,
            rng=random.Random(i),
        ))
    engine.add_device(MobilePhone(env, "manager_phone", Point(0, 0),
                                  number=MANAGER_PHONE))


def register_sendphoto(engine: AortaEngine) -> None:
    """The Section 2.2 CREATE ACTION flow for a user-defined action."""

    def sendphoto_impl(device, args):
        yield from device.execute("connect")
        outcome = yield from device.execute(
            "receive_mms", sender="aorta-lab",
            body="lab motion snapshot",
            attachment=args["photo_pathname"], size_kb=120.0)
        return outcome.detail

    engine.install_action_code("lib/users/sendphoto.dll", sendphoto_impl)
    engine.install_action_profile(
        "profiles/users/sendphoto.xml",
        sendphoto_profile(), sendphoto_resolver,
        device_parameters={"phone_no": "number"},
    )
    engine.execute('''CREATE ACTION sendphoto(String phone_no,
                                              String photo_pathname)
        AS "lib/users/sendphoto.dll"
        PROFILE "profiles/users/sendphoto.xml"''')


def register_queries(engine: AortaEngine) -> None:
    for i in range(1, N_MOTES + 1):
        engine.execute(f'''CREATE AQ photo_mote{i} AS
            SELECT photo(c.ip, s.loc, "photos/mote{i}")
            FROM sensor s, camera c
            WHERE s.accel_x > 500 AND s.id = "mote{i}"
              AND coverage(c.id, s.loc)''')


def forward_photos_to_manager(engine: AortaEngine) -> None:
    """Bridge: each stored photo triggers a sendphoto() request.

    (A production deployment would express this as another AQ over a
    photo-store table; the bridge keeps the example compact.)
    """
    sendphoto = engine.actions.get("sendphoto")
    operator = engine.dispatcher.operator_for(sendphoto)
    operator.attach("forwarder")
    phone_ids = tuple(d.device_id
                      for d in engine.comm.registry.of_type("phone"))
    seen = set()

    def forward(env):
        from repro.actions.request import ActionRequest
        while True:
            for request in engine.completed_requests:
                photo = request.result
                if (request.request_id in seen or photo is None
                        or not hasattr(photo, "pathname")):
                    continue
                seen.add(request.request_id)
                if not photo.ok:
                    continue
                operator.submit(ActionRequest(
                    action_name="sendphoto",
                    arguments={"photo_pathname": photo.pathname},
                    query_id="forwarder",
                    created_at=env.now,
                    candidates=phone_ids,
                ))
            yield env.timeout(2.0)

    engine.env.process(forward(engine.env))


def inject_workload(engine: AortaEngine) -> None:
    rng = random.Random(42)
    for minute in range(MINUTES):
        # A few motes see motion each minute.
        for mote_index in rng.sample(range(1, N_MOTES + 1), 3):
            mote = engine.comm.registry.get(f"mote{mote_index}")
            mote.inject(SensorStimulus(
                "accel_x", start=60.0 * minute + rng.uniform(1, 50),
                duration=3.0, magnitude=rng.uniform(600, 1200)))


def inject_failures(engine: AortaEngine) -> None:
    injector = FailureInjector(engine.env)
    injector.schedule_outage(
        engine.comm.registry.get("cam2"),
        OutageSpec(device_id="cam2", start=70.0, duration=45.0))
    injector.schedule_outage(
        engine.comm.registry.get("mote3"),
        OutageSpec(device_id="mote3", start=120.0, duration=60.0,
                   kind="crash"))


def main() -> None:
    env = Environment()
    engine = AortaEngine(env, config=EngineConfig(scheduler="SRFAE"))
    build_lab(engine)
    register_sendphoto(engine)
    register_queries(engine)
    inject_workload(engine)
    inject_failures(engine)
    engine.start()
    forward_photos_to_manager(engine)
    engine.run(until=60.0 * MINUTES + 30.0)

    stats = engine.statistics()
    print(f"Ran {MINUTES} virtual minutes of lab monitoring")
    print(f"  queries registered     {stats['queries']}")
    print(f"  requests completed     {stats['requests_completed']}")
    print(f"  requests serviced      {stats['requests_serviced']}")
    print(f"  requests failed        {stats['requests_failed']}")
    print(f"  probes (sent/failed)   {stats['probes_sent']}"
          f"/{stats['probes_failed']}")

    cam_photos = {
        camera_id: len(engine.comm.registry.get(camera_id).photo_log)
        for camera_id in ("cam1", "cam2")
    }
    print(f"  photos per camera      {cam_photos}")
    phone = engine.comm.registry.get("manager_phone")
    print(f"  MMS in manager inbox   {len(phone.inbox)}")
    for message in phone.inbox[:3]:
        print(f"    {message.received_at:8.1f}s  {message.attachment}")


if __name__ == "__main__":
    main()
