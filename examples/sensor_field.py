#!/usr/bin/env python3
"""A multi-hop sensor field: topology-derived costs and mote actions.

Deploys a 4x4 grid of motes whose hop depths come from geometric radio
connectivity (base station in a corner, bounded radio range) rather
than hand assignment. A heat anomaly at one mote triggers an AQ that
blinks the motes around it — both the event table and the device table
are the *sensor* table, showing self-joins in the dialect. Deeper motes
cost more to operate (per-hop connect time), which the optimizer's
estimates reflect.

Run:  python examples/sensor_field.py
"""

from repro import AortaEngine, Environment, Point, SensorMote, SensorStimulus
from repro.network.topology import RadioTopology
from repro.profiles.action_profile import ActionProfile, OperationRef, seq

GRID = 4
SPACING = 8.0
RADIO_RANGE = 9.0  # reaches orthogonal neighbours, not diagonals


def register_blinkall(engine: AortaEngine) -> None:
    """A select-all variant of blink(): every candidate mote flashes.

    The built-in blink() uses the paper's device-selection semantics
    (one best candidate); a "halo" needs all of them.
    """

    def blinkall_impl(device, args):
        yield from device.execute("connect")
        outcome = yield from device.execute("blink")
        return outcome.detail

    profile = ActionProfile(
        action_name="blinkall",
        device_type="sensor",
        composition=seq(OperationRef("connect", quantity="hops"),
                        OperationRef("blink")),
        status_fields=["hop_depth"],
    )

    def resolver(device, status, args):
        return {"hops": float(status.get("hop_depth", 1.0))}, dict(status)

    engine.install_action_code("lib/users/blinkall.dll", blinkall_impl)
    engine.install_action_profile("profiles/users/blinkall.xml",
                                  profile, resolver,
                                  device_parameters={"sensor_id": "id"},
                                  select_all=True)
    engine.execute('''CREATE ACTION blinkall(String sensor_id)
        AS "lib/users/blinkall.dll" PROFILE "profiles/users/blinkall.xml"''')


def main() -> None:
    env = Environment()
    engine = AortaEngine(env)

    motes = []
    for row in range(GRID):
        for column in range(GRID):
            mote = SensorMote(
                env, f"mote_{row}_{column}",
                Point(SPACING * column, SPACING * row),
                noise_amplitude=0.0)
            motes.append(mote)
            engine.add_device(mote)

    # Hop depths from geometry: base station at the origin corner.
    topology = RadioTopology(base_station=Point(0, 0),
                             radio_range=RADIO_RANGE)
    unreachable = topology.assign_hop_depths(motes)
    assert not unreachable, "grid spacing keeps everything connected"
    print("Hop depths (base station at the 0,0 corner):")
    for row in range(GRID):
        cells = [f"{engine.comm.registry.get(f'mote_{row}_{c}').hop_depth}"
                 for c in range(GRID)]
        print("  " + "  ".join(cells))

    # Deeper motes are costlier to operate; the cost model sees it.
    near = engine.comm.registry.get("mote_0_1")
    far = engine.comm.registry.get(f"mote_{GRID - 1}_{GRID - 1}")
    cost_near = engine.cost_model.estimate("blink", near, {}).seconds
    cost_far = engine.cost_model.estimate("blink", far, {}).seconds
    print(f"\nblink() estimate: {near.device_id} (depth "
          f"{near.hop_depth}) = {cost_near:.3f}s, {far.device_id} "
          f"(depth {far.hop_depth}) = {cost_far:.3f}s")

    register_blinkall(engine)

    # Self-join AQ: a hot mote blinks its neighbours (evacuation guide).
    print("\n" + engine.execute(f'''EXPLAIN CREATE AQ heat_halo AS
        SELECT blinkall(t.id)
        FROM sensor s, sensor t
        WHERE s.temperature > 40
          AND distance(t.loc, s.loc) < {SPACING * 1.5}
          AND distance(t.loc, s.loc) > 0'''))
    engine.execute(f'''CREATE AQ heat_halo AS
        SELECT blinkall(t.id)
        FROM sensor s, sensor t
        WHERE s.temperature > 40
          AND distance(t.loc, s.loc) < {SPACING * 1.5}
          AND distance(t.loc, s.loc) > 0''')

    # Heat anomaly at the grid centre, 5 virtual seconds in.
    hot = engine.comm.registry.get("mote_1_1")
    hot.inject(SensorStimulus("temperature", start=5.0, duration=10.0,
                              magnitude=30.0))

    engine.start()
    engine.run(until=60.0)

    serviced = [r for r in engine.completed_requests
                if r.state.value == "serviced"]
    blinked = sorted(r.assigned_device for r in serviced)
    print(f"\nHeat detected at {hot.device_id}; blinked "
          f"{len(blinked)} neighbouring mote(s):")
    for device_id in blinked:
        device = engine.comm.registry.get(device_id)
        print(f"  {device_id} (hop depth {device.hop_depth}, "
              f"battery {device.battery_volts:.3f} V)")


if __name__ == "__main__":
    main()
