#!/usr/bin/env python3
"""Standalone scheduling study: the paper's Section 6.3 in one script.

Runs the five algorithms on uniform and skewed synthetic camera
workloads and prints makespans plus the scheduling/service time
breakdown, mirroring Figures 4-6.

Run:  python examples/scheduling_study.py  [--runs N] [--fast]
"""

import argparse

from repro.scheduling import (
    LerfaSrfeScheduler,
    ListScheduler,
    RandomScheduler,
    SAParameters,
    SimulatedAnnealingScheduler,
    SrfaeScheduler,
    breakdown,
    skewed_camera_workload,
    uniform_camera_workload,
)

FAST_SA = SAParameters(moves_per_temperature_per_request=8, cooling=0.9)


def algorithm_factories(fast: bool):
    sa_params = FAST_SA if fast else None
    return [
        ("LERFA+SRFE", lambda seed: LerfaSrfeScheduler(seed)),
        ("SRFAE", lambda seed: SrfaeScheduler(seed)),
        ("LS", lambda seed: ListScheduler(seed)),
        ("SA", lambda seed: SimulatedAnnealingScheduler(
            seed, parameters=sa_params)),
        ("RANDOM", lambda seed: RandomScheduler(seed)),
    ]


def run_workloads(problems, factories):
    """Average (scheduling, service, total) seconds per algorithm."""
    rows = []
    for name, factory in factories:
        scheduling = service = 0.0
        for seed, problem in enumerate(problems):
            result = breakdown(problem, factory(seed).schedule(problem))
            scheduling += result.scheduling_seconds
            service += result.service_seconds
        count = len(problems)
        rows.append((name, scheduling / count, service / count,
                     (scheduling + service) / count))
    return rows


def print_table(title, rows):
    print(f"\n{title}")
    print(f"  {'algorithm':12s} {'sched (s)':>10s} {'service (s)':>12s} "
          f"{'makespan (s)':>13s}")
    for name, scheduling, service, total in rows:
        print(f"  {name:12s} {scheduling:10.4f} {service:12.2f} "
              f"{total:13.2f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10,
                        help="independent runs per configuration")
    parser.add_argument("--fast", action="store_true",
                        help="use a lighter SA schedule")
    args = parser.parse_args()
    factories = algorithm_factories(args.fast)

    # Figure 4: uniform workloads, 10 cameras, n in {10, 20, 30}.
    for n_requests in (10, 20, 30):
        problems = [uniform_camera_workload(n_requests, 10, seed=seed)
                    for seed in range(args.runs)]
        print_table(
            f"Uniform workload: {n_requests} requests on 10 cameras "
            f"(Figure 4, avg of {args.runs})",
            run_workloads(problems, factories))

    # Figure 6: skewed workloads, skewness in {0.2, 0.3, 0.4}.
    for skewness in (0.2, 0.3, 0.4):
        problems = [skewed_camera_workload(20, 10, skewness, seed=seed)
                    for seed in range(args.runs)]
        print_table(
            f"Skewed workload: skewness {skewness} "
            f"(Figure 6, avg of {args.runs})",
            run_workloads(problems, factories))


if __name__ == "__main__":
    main()
