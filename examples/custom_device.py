#!/usr/bin/env python3
"""Extending Aorta with a new device type, end to end.

The paper lists "extending the uniform data communication layer to
support new types of devices" as future work; the layer was designed
generically to make that cheap. This example adds a **smart door
lock** — a device type the paper never had — and drives it from a
declarative query, touching every extension point:

1. a device simulator (`DoorLock`, with physical status and atomic
   operations);
2. device profiles: a catalog (virtual table schema) and an
   atomic-operation cost table;
3. a network link model for its medium (Zigbee-ish);
4. a user-defined action `lockdown()` with profile + resolver,
   registered through CREATE ACTION;
5. an AQ that locks doors near a sensed intrusion.

Run:  python examples/custom_device.py
"""

from typing import Any, Dict, Generator

from repro import (
    AortaEngine,
    Environment,
    Point,
    SensorMote,
    SensorStimulus,
)
from repro.devices.base import Device
from repro.network import LinkModel
from repro.network.link import DEFAULT_LINKS
from repro.profiles import (
    ActionProfile,
    AtomicOperationCost,
    AttributeSpec,
    CostTable,
    DeviceCatalog,
    OperationRef,
)
from repro.profiles.action_profile import seq


# ----------------------------------------------------------------------
# 1. The device simulator
# ----------------------------------------------------------------------

class DoorLock(Device):
    """A remotely controllable electronic door lock."""

    device_type = "doorlock"

    def __init__(self, env, device_id, location, *, door_name: str):
        super().__init__(env, device_id, location)
        self.door_name = door_name
        self.engaged = False
        #: Deadbolt travel takes longer when the mechanism is cold.
        self.mechanism_temperature = 20.0

    def static_attributes(self) -> Dict[str, Any]:
        row = super().static_attributes()
        row["door_name"] = self.door_name
        return row

    def read_sensory(self, name: str) -> Any:
        if name == "engaged":
            return self.engaged
        if name == "mech_temp":
            return self.mechanism_temperature
        return super().read_sensory(name)

    def physical_status(self) -> Dict[str, float]:
        return {"engaged": 1.0 if self.engaged else 0.0,
                "mech_temp": self.mechanism_temperature}

    def operation_names(self):
        return ("connect", "engage_bolt", "release_bolt")

    def op_connect(self) -> Generator:
        yield self.env.timeout(0.05)

    def op_engage_bolt(self) -> Generator:
        # Cold mechanisms are slower: 0.5 s base + up to 0.5 s penalty.
        penalty = max(0.0, (20.0 - self.mechanism_temperature) / 40.0)
        yield self.env.timeout(0.5 + penalty)
        self.engaged = True
        self.mechanism_temperature += 1.0  # actuation warms the motor

    def op_release_bolt(self) -> Generator:
        yield self.env.timeout(0.4)
        self.engaged = False


# ----------------------------------------------------------------------
# 2. Profiles: catalog + cost table
# ----------------------------------------------------------------------

def doorlock_catalog() -> DeviceCatalog:
    return DeviceCatalog(
        device_type="doorlock",
        model="ACME BoltMaster 3000",
        attributes=[
            AttributeSpec("id", "str", sensory=False),
            AttributeSpec("door_name", "str", sensory=False),
            AttributeSpec("loc_x", "float", sensory=False, unit="m"),
            AttributeSpec("loc_y", "float", sensory=False, unit="m"),
            AttributeSpec("engaged", "bool", sensory=True,
                          acquisition_method="read_engaged"),
            AttributeSpec("mech_temp", "float", sensory=True, unit="C",
                          acquisition_method="read_mech_temp"),
        ],
    )


def doorlock_cost_table() -> CostTable:
    return CostTable.from_operations("doorlock", [
        AtomicOperationCost("connect", fixed_seconds=0.05),
        AtomicOperationCost("engage_bolt", fixed_seconds=0.5,
                            per_unit_seconds=0.0125, unit="cold_degrees",
                            description="deadbolt travel, slower when cold"),
        AtomicOperationCost("release_bolt", fixed_seconds=0.4),
    ])


# ----------------------------------------------------------------------
# 4. The lockdown() user-defined action
# ----------------------------------------------------------------------

def lockdown_impl(device: Device, args) -> Generator:
    yield from device.execute("connect")
    outcome = yield from device.execute("engage_bolt")
    return outcome


def lockdown_profile() -> ActionProfile:
    return ActionProfile(
        action_name="lockdown",
        device_type="doorlock",
        composition=seq(
            OperationRef("connect"),
            OperationRef("engage_bolt", quantity="cold_degrees"),
        ),
        status_fields=["mech_temp"],
    )


def lockdown_resolver(device, status, args):
    cold = max(0.0, 20.0 - status["mech_temp"])
    post = dict(status)
    post["engaged"] = 1.0
    post["mech_temp"] = status["mech_temp"] + 1.0
    return {"cold_degrees": cold}, post


def main() -> None:
    env = Environment()
    # 3. A link model for the lock's medium.
    links = dict(DEFAULT_LINKS)
    links["doorlock"] = LinkModel(latency_seconds=0.04,
                                  jitter_seconds=0.01, loss_rate=0.01)
    engine = AortaEngine(env, links=links)

    # Register the new device type with the communication layer and the
    # schema catalog — exactly what register_builtin_types does for the
    # three paper types.
    engine.comm.register_device_type(doorlock_catalog(),
                                     doorlock_cost_table(),
                                     probe_timeout=0.8)
    engine.schema.register_table(engine.comm.catalog("doorlock"))
    engine.cost_model.register_cost_table(
        engine.comm.cost_table("doorlock"))

    # The building: four doors, one intrusion sensor.
    for i, (x, name) in enumerate([(0, "front"), (10, "lab"),
                                   (20, "server_room"), (30, "rear")]):
        engine.add_device(DoorLock(env, f"lock{i + 1}", Point(x, 0),
                                   door_name=name))
    window = SensorMote(env, "window1", Point(12, 5), noise_amplitude=0.0)
    engine.add_device(window)

    # 5. CREATE ACTION + an AQ over the new table.
    engine.install_action_code("lib/users/lockdown.dll", lockdown_impl)
    # select_all: unlike photo() (one best camera suffices), a lockdown
    # must run on EVERY candidate door.
    engine.install_action_profile("profiles/users/lockdown.xml",
                                  lockdown_profile(), lockdown_resolver,
                                  device_parameters={"lock_id": "id"},
                                  select_all=True)
    engine.execute('''CREATE ACTION lockdown(String lock_id)
        AS "lib/users/lockdown.dll" PROFILE "profiles/users/lockdown.xml"''')
    engine.execute('''CREATE AQ intrusion_lockdown AS
        SELECT lockdown(d.id)
        FROM sensor s, doorlock d
        WHERE s.accel_x > 600 AND distance(d.loc, s.loc) < 15''')

    print("Virtual doorlock table before the intrusion:")
    for row in engine.run_select(
            "SELECT d.id, d.door_name, d.engaged FROM doorlock d"):
        print(f"  {row}")

    # Glass breaks at t = 5 s.
    window.inject(SensorStimulus("accel_x", start=5.0, duration=3.0,
                                 magnitude=900.0))
    engine.start()
    engine.run(until=30.0)

    print("\nAfter the intrusion event:")
    for device in engine.comm.registry.of_type("doorlock"):
        state = "ENGAGED" if device.engaged else "open"
        print(f"  {device.door_name:12s} {state}")
    serviced = [r for r in engine.completed_requests
                if r.state.value == "serviced"]
    print(f"\n{len(serviced)} lockdown action(s) serviced; doors within "
          f"15 m of the window are bolted, the rest stay open.")


if __name__ == "__main__":
    main()
