"""Per-device health tracking: a circuit breaker over probe/action outcomes.

Pervasive devices "are intrinsically unreliable" (Section 4), and a
flapping device is worse than a dead one: every batch re-probes it,
re-trusts it, assigns it work, and watches the work fail. The health
tracker quarantines such devices with a standard circuit breaker:

* **CLOSED** — healthy; failures are counted, successes reset the count.
* **OPEN** — quarantined after ``failure_threshold`` consecutive
  failures; the device is excluded from candidate sets (not even
  probed) for a backoff window that doubles on each relapse.
* **HALF_OPEN** — the window expired; the device is readmitted on
  probation and the next probe decides: success closes the breaker,
  failure re-opens it with a longer window.

The tracker is passive — it never schedules simulation events; state
transitions happen lazily when the dispatcher asks whether a device may
be a candidate. That keeps it free when unused and deterministic always.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import DeviceError
from repro.obs.spans import NULL_OBS
from repro.runtime import Runtime

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.tracing import EngineTracer
    from repro.obs.spans import Observability


class BreakerState(enum.Enum):
    """Circuit-breaker state of one device."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class HealthPolicy:
    """Tunables of the per-device circuit breaker."""

    #: Consecutive failures (probe or action) that open the breaker.
    failure_threshold: int = 3
    #: First quarantine window, in virtual seconds.
    quarantine_seconds: float = 30.0
    #: Window multiplier on each relapse (failure while on probation).
    backoff_factor: float = 2.0
    #: Ceiling on the quarantine window.
    quarantine_max: float = 300.0
    #: Probation successes required to close a HALF_OPEN breaker.
    probation_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise DeviceError("failure_threshold must be >= 1")
        if self.quarantine_seconds <= 0 or self.quarantine_max <= 0:
            raise DeviceError("quarantine windows must be positive")
        if self.backoff_factor < 1.0:
            raise DeviceError("backoff_factor must be >= 1")
        if self.probation_successes < 1:
            raise DeviceError("probation_successes must be >= 1")


@dataclass
class _DeviceHealth:
    """Mutable breaker bookkeeping for one device."""

    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    #: Virtual time the current quarantine window expires (OPEN only).
    open_until: float = 0.0
    #: Current window length; grows by ``backoff_factor`` per relapse.
    window: float = 0.0
    #: Successes collected while HALF_OPEN.
    probation_successes: int = 0
    #: When the device first entered the current quarantine episode,
    #: for time-to-recovery accounting.
    quarantined_at: float = 0.0
    quarantines: int = 0
    recoveries: int = 0


class DeviceHealthTracker:
    """Circuit breakers for every device the engine has observed."""

    def __init__(
        self,
        env: Runtime,
        policy: Optional[HealthPolicy] = None,
        tracer: Optional["EngineTracer"] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.env = env
        self.policy = policy or HealthPolicy()
        self.tracer = tracer
        self.obs = obs if obs is not None else NULL_OBS
        self._devices: Dict[str, _DeviceHealth] = {}
        #: Called on every breaker transition with (device_id, new
        #: state). The comm fast path hooks this to drop pooled
        #: connections and cached statuses of devices entering or
        #: leaving quarantine — their last-known state is untrustworthy.
        self.transition_listeners: List[
            Callable[[str, BreakerState], None]] = []
        #: Lifetime counters for statistics().
        self.quarantines_total = 0
        self.recoveries_total = 0
        #: Sum of quarantine-entry-to-readmission times, for the mean.
        self.recovery_seconds_total = 0.0

    def _entry(self, device_id: str) -> _DeviceHealth:
        if device_id not in self._devices:
            self._devices[device_id] = _DeviceHealth()
        return self._devices[device_id]

    def _trace(self, kind: str, **fields: object) -> None:
        if self.tracer is not None:
            self.tracer.record(self.env.now, kind, **fields)

    def _notify(self, device_id: str, state: BreakerState) -> None:
        for listener in self.transition_listeners:
            listener(device_id, state)

    # ------------------------------------------------------------------
    # Outcome reporting (from the prober and the dispatcher)
    # ------------------------------------------------------------------
    def record_success(self, device_id: str) -> None:
        """A probe answered or an action serviced on this device."""
        entry = self._entry(device_id)
        if entry.state is BreakerState.HALF_OPEN:
            entry.probation_successes += 1
            if entry.probation_successes >= self.policy.probation_successes:
                entry.state = BreakerState.CLOSED
                entry.consecutive_failures = 0
                entry.window = 0.0
                entry.recoveries += 1
                self.recoveries_total += 1
                self.recovery_seconds_total += (
                    self.env.now - entry.quarantined_at)
                self._trace("device_readmitted", device=device_id,
                            recovery_seconds=self.env.now
                            - entry.quarantined_at)
                self.obs.inc("health.readmissions", device=device_id)
                self.obs.observe("health.recovery_seconds",
                                 self.env.now - entry.quarantined_at,
                                 device=device_id)
                self._notify(device_id, BreakerState.CLOSED)
        else:
            entry.consecutive_failures = 0

    def record_failure(self, device_id: str, reason: str = "") -> None:
        """A probe missed or an action failed on this device."""
        entry = self._entry(device_id)
        if entry.state is BreakerState.HALF_OPEN:
            # Relapse on probation: back to quarantine, longer window.
            self._open(device_id, entry, reason, relapse=True)
            return
        entry.consecutive_failures += 1
        if entry.state is BreakerState.CLOSED \
                and entry.consecutive_failures \
                >= self.policy.failure_threshold:
            entry.quarantined_at = self.env.now
            self._open(device_id, entry, reason, relapse=False)

    def _open(self, device_id: str, entry: _DeviceHealth, reason: str,
              *, relapse: bool) -> None:
        if entry.window:
            entry.window = min(entry.window * self.policy.backoff_factor,
                               self.policy.quarantine_max)
        else:
            entry.window = min(self.policy.quarantine_seconds,
                               self.policy.quarantine_max)
        entry.state = BreakerState.OPEN
        entry.open_until = self.env.now + entry.window
        entry.probation_successes = 0
        entry.quarantines += 1
        self.quarantines_total += 1
        self._trace("device_quarantined", device=device_id,
                    window=entry.window, relapse=relapse, reason=reason)
        self.obs.inc("health.quarantines", device=device_id)
        self._notify(device_id, BreakerState.OPEN)

    # ------------------------------------------------------------------
    # Candidate gating (from the dispatcher)
    # ------------------------------------------------------------------
    def allow_candidate(self, device_id: str) -> bool:
        """Whether the device may enter a candidate set right now.

        Lazily transitions OPEN breakers whose window has expired to
        HALF_OPEN — the caller's next probe is the probation probe.
        """
        entry = self._devices.get(device_id)
        if entry is None or entry.state is BreakerState.CLOSED:
            return True
        if entry.state is BreakerState.OPEN:
            if self.env.now < entry.open_until:
                return False
            entry.state = BreakerState.HALF_OPEN
            entry.probation_successes = 0
            self._trace("device_probation", device=device_id)
            self.obs.inc("health.probations", device=device_id)
            self._notify(device_id, BreakerState.HALF_OPEN)
        return True

    # ------------------------------------------------------------------
    # Read-only observability
    # ------------------------------------------------------------------
    def state_of(self, device_id: str) -> BreakerState:
        """The breaker state of one device (CLOSED if never seen)."""
        entry = self._devices.get(device_id)
        return entry.state if entry is not None else BreakerState.CLOSED

    def quarantined_ids(self) -> List[str]:
        """Devices whose breaker is OPEN with an unexpired window."""
        return sorted(
            device_id for device_id, entry in self._devices.items()
            if entry.state is BreakerState.OPEN
            and self.env.now < entry.open_until)

    def stats(self) -> Dict[str, float]:
        """Lifetime counters, for engine statistics and benchmarks."""
        return {
            "quarantines": self.quarantines_total,
            "recoveries": self.recoveries_total,
            "currently_quarantined": len(self.quarantined_ids()),
            "mean_recovery_seconds": (
                self.recovery_seconds_total / self.recoveries_total
                if self.recoveries_total else 0.0),
        }
