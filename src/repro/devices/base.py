"""Device base class and shared device behaviour."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Generator

from repro.errors import DeviceDownError, DeviceError
from repro.geometry import Point
from repro.runtime import Runtime


class DeviceState(enum.Enum):
    """Lifecycle state of a physical device.

    Devices "may join, move around, or leave the network dynamically in
    a way unpredictable to the system" (paper Section 4) — the probing
    mechanism exists precisely because of OFFLINE and CRASHED devices.
    """

    ONLINE = "online"
    OFFLINE = "offline"
    CRASHED = "crashed"


@dataclass
class OperationOutcome:
    """Result record of one atomic operation executed on a device."""

    device_id: str
    operation: str
    started_at: float
    finished_at: float
    succeeded: bool
    detail: Any = None

    @property
    def duration(self) -> float:
        """Seconds of virtual time the operation took."""
        return self.finished_at - self.started_at


class Device:
    """Base class of all simulated devices.

    Subclasses model one device type each and provide:

    * static (non-sensory) attributes — identity, location, addresses;
    * sensory attributes read from live physical state;
    * atomic operations, executed as simulation processes that consume
      virtual time according to the device's physical model;
    * a *physical status* snapshot used by the cost model, because "the
      cost of an action execution on a device may depend on the current
      physical status of the device" (Section 2.3).
    """

    #: Subclasses set this to their catalog device type name.
    device_type: str = "device"

    def __init__(
        self,
        env: Runtime,
        device_id: str,
        location: Point,
    ) -> None:
        if not device_id:
            raise DeviceError("device_id must be non-empty")
        self.env = env
        self.device_id = device_id
        self.location = location
        self.state = DeviceState.ONLINE
        #: Count of operations executed, for utilization accounting.
        self.operations_executed = 0
        #: Virtual seconds this device has spent busy on operations.
        self.busy_seconds = 0.0
        #: Straggler injection: every operation duration is multiplied
        #: by this factor (1.0 = nominal; ``x * 1.0`` is bit-exact, so
        #: a never-inflated device is byte-identical to one built
        #: before the knob existed). Set by FailureInjector stragglers.
        self.slowdown_factor = 1.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def online(self) -> bool:
        """Whether the device itself is powered and healthy."""
        return self.state is DeviceState.ONLINE

    @property
    def reachable(self) -> bool:
        """Whether the network can currently reach the device.

        Defaults to :attr:`online`; subclasses refine it — a phone is
        online but unreachable while out of carrier coverage
        (Section 4's example). The transport and the probing mechanism
        test reachability, not just health.
        """
        return self.online

    def go_offline(self) -> None:
        """Take the device off the network (clean leave)."""
        self.state = DeviceState.OFFLINE

    def go_online(self) -> None:
        """Rejoin the network."""
        self.state = DeviceState.ONLINE

    def crash(self) -> None:
        """Hard-fail the device; it stops answering until repaired."""
        self.state = DeviceState.CRASHED

    def repair(self) -> None:
        """Recover a crashed device back to service."""
        self.state = DeviceState.ONLINE

    # ------------------------------------------------------------------
    # Attributes (virtual-table columns)
    # ------------------------------------------------------------------
    def static_attributes(self) -> Dict[str, Any]:
        """Non-sensory column values for this device's table row."""
        return {"id": self.device_id, "loc_x": self.location.x,
                "loc_y": self.location.y}

    def read_sensory(self, name: str) -> Any:
        """Acquire one sensory attribute from live device state.

        Subclasses override to expose their readings; unknown names are
        a :class:`DeviceError` so schema bugs surface loudly.
        """
        raise DeviceError(
            f"{self.device_type} {self.device_id!r} has no sensory "
            f"attribute {name!r}"
        )

    def physical_status(self) -> Dict[str, float]:
        """Snapshot of the cost-relevant physical status.

        Probing a device returns this snapshot; the optimizer feeds it
        to the cost model for device-selection optimization.
        """
        return {}

    def service_seconds(self, seconds: float) -> float:
        """Operation duration after straggler inflation.

        Device operation handlers route every physical-model duration
        through this, so an injected slowdown stretches real work
        uniformly without touching the per-operation models.
        """
        return seconds * self.slowdown_factor

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def operation_names(self) -> tuple[str, ...]:
        """The atomic operations this device supports."""
        return ()

    def execute(
        self, operation: str, **params: Any
    ) -> Generator[Any, Any, OperationOutcome]:
        """Run one atomic operation as a simulation process.

        Returns (via StopIteration) an :class:`OperationOutcome`.
        Dispatches to a method named ``op_<operation>``.
        """
        if not self.online:
            # Transient by definition: the device may come back (outage
            # end, repair), so the retry policy is allowed to try again.
            raise DeviceDownError(
                f"{self.device_type} {self.device_id!r} is {self.state.value}"
            )
        handler = getattr(self, f"op_{operation}", None)
        if handler is None:
            raise DeviceError(
                f"{self.device_type} {self.device_id!r} has no operation "
                f"{operation!r}"
            )
        started = self.env.now
        detail = yield from handler(**params)
        finished = self.env.now
        self.operations_executed += 1
        self.busy_seconds += finished - started
        return OperationOutcome(
            device_id=self.device_id,
            operation=operation,
            started_at=started,
            finished_at=finished,
            succeeded=True,
            detail=detail,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.device_id} "
            f"{self.state.value} at {self.location}>"
        )
