"""Simulated Berkeley MICA2 sensor mote with an MTS310CA sensor board.

Motes expose accelerometer, temperature and light readings plus battery
voltage; they communicate over a lossy radio and may sit several hops
deep in the network ("the depth of a sensor in a multi-hop network
affects the cost of connecting the sensor", paper Section 2.3).

Physical-world events are injected as :class:`SensorStimulus` records —
e.g. "someone pushes the door and causes a movement of the door
together with the sensor attached on it" (Section 2.2) becomes an
``accel_x`` stimulus, which the snapshot query's ``s.accel_x > 500``
predicate then detects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.errors import CommunicationError, DeviceError
from repro.geometry import Point
from repro.devices.base import Device
from repro.runtime import Runtime

#: Baseline sensory readings of an idle mote.
BASELINES = {
    "accel_x": 0.0,      # milli-g
    "accel_y": 0.0,      # milli-g
    "temperature": 22.0,  # Celsius
    "light": 300.0,       # lux
}

#: Fresh-battery voltage and the cutoff below which the mote dies.
BATTERY_FULL_VOLTS = 3.0
BATTERY_DEAD_VOLTS = 2.0

#: Battery cost (volts) per atomic operation.
OPERATION_DRAIN = {
    "connect": 0.0002,
    "read_sample": 0.0001,
    "beep": 0.0010,
    "blink": 0.0005,
}


@dataclass(frozen=True)
class SensorStimulus:
    """A physical-world event affecting one sensory attribute.

    While active (``start <= now < start + duration``) the stimulus adds
    ``magnitude`` to the attribute's baseline reading.
    """

    attribute: str
    start: float
    duration: float
    magnitude: float

    def __post_init__(self) -> None:
        if self.attribute not in BASELINES:
            raise DeviceError(
                f"stimulus attribute {self.attribute!r} is not a sensory "
                f"reading (expected one of {sorted(BASELINES)})"
            )
        if self.duration <= 0:
            raise DeviceError("stimulus duration must be positive")

    def active_at(self, now: float) -> bool:
        """Whether the stimulus contributes to readings at time ``now``."""
        return self.start <= now < self.start + self.duration


class SensorMote(Device):
    """One MICA2 mote: sensing, lossy radio, beep/blink actuators."""

    device_type = "sensor"

    def __init__(
        self,
        env: Runtime,
        device_id: str,
        location: Point,
        *,
        hop_depth: int = 1,
        packet_loss_rate: float = 0.0,
        noise_amplitude: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(env, device_id, location)
        if hop_depth < 1:
            raise DeviceError(f"hop_depth must be >= 1, got {hop_depth}")
        if not 0.0 <= packet_loss_rate < 1.0:
            raise DeviceError(
                f"packet_loss_rate must be in [0, 1), got {packet_loss_rate}"
            )
        self.hop_depth = hop_depth
        self.packet_loss_rate = packet_loss_rate
        self.noise_amplitude = noise_amplitude
        self._rng = rng or random.Random(0)
        self.battery_volts = BATTERY_FULL_VOLTS
        self._stimuli: List[SensorStimulus] = []
        #: Seconds of one-hop radio latency; total = hops * this.
        self.per_hop_seconds = 0.02

    # ------------------------------------------------------------------
    # Physical-world event injection
    # ------------------------------------------------------------------
    def inject(self, stimulus: SensorStimulus) -> None:
        """Attach a stimulus; readings reflect it while it is active."""
        self._stimuli.append(stimulus)

    def active_stimuli(self) -> List[SensorStimulus]:
        """Stimuli currently influencing readings."""
        return [s for s in self._stimuli if s.active_at(self.env.now)]

    def prune_expired_stimuli(self) -> int:
        """Drop stimuli that can never be active again; returns count."""
        now = self.env.now
        before = len(self._stimuli)
        self._stimuli = [s for s in self._stimuli
                         if s.start + s.duration > now]
        return before - len(self._stimuli)

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------
    def read_sensory(self, name: str) -> Any:
        if name == "battery":
            return self.battery_volts
        if name in BASELINES:
            if self.battery_volts <= BATTERY_DEAD_VOLTS:
                raise DeviceError(
                    f"sensor {self.device_id}: battery dead "
                    f"({self.battery_volts:.2f} V)"
                )
            value = BASELINES[name]
            value += sum(s.magnitude for s in self._stimuli
                         if s.attribute == name and s.active_at(self.env.now))
            value += self._rng.gauss(0.0, self.noise_amplitude)
            return value
        return super().read_sensory(name)

    def physical_status(self) -> Dict[str, float]:
        return {"battery": self.battery_volts, "hop_depth": float(self.hop_depth)}

    # ------------------------------------------------------------------
    # Radio
    # ------------------------------------------------------------------
    def radio_delivers(self) -> bool:
        """One Bernoulli draw of the lossy radio channel."""
        return self._rng.random() >= self.packet_loss_rate

    def _drain(self, operation: str) -> None:
        self.battery_volts = max(
            self.battery_volts - OPERATION_DRAIN[operation], 0.0)

    # ------------------------------------------------------------------
    # Atomic operations
    # ------------------------------------------------------------------
    def operation_names(self) -> tuple[str, ...]:
        return ("connect", "read_sample", "beep", "blink")

    def op_connect(self) -> Generator[Any, Any, None]:
        """Establish a multi-hop route to the mote; deeper is slower,
        and every hop is a chance for the lossy radio to drop us."""
        self._drain("connect")
        for _ in range(self.hop_depth):
            yield self.env.timeout(self.service_seconds(
                self.per_hop_seconds))
            if not self.radio_delivers():
                raise CommunicationError(
                    f"sensor {self.device_id}: radio packet lost en route"
                )

    def op_read_sample(self) -> Generator[Any, Any, Dict[str, float]]:
        """Sample every sensory attribute once."""
        self._drain("read_sample")
        yield self.env.timeout(self.service_seconds(0.01))
        return {name: self.read_sensory(name) for name in BASELINES}

    def op_beep(self) -> Generator[Any, Any, None]:
        """Sound the on-board buzzer once."""
        self._drain("beep")
        yield self.env.timeout(self.service_seconds(0.5))

    def op_blink(self) -> Generator[Any, Any, None]:
        """Flash the on-board LEDs once."""
        self._drain("blink")
        yield self.env.timeout(self.service_seconds(0.25))
