"""Simulated AXIS-2130-style pan/tilt/zoom network camera.

The paper built a "homegrown camera simulator ... tuned through
extensive tests on the real cameras, so that a photo() action executed
on a simulated camera had similar effects (e.g., time for head movement)
to that on a real camera" (Section 6.3). This module is that simulator.

Calibration targets the paper's measured interval: a ``photo()``
execution costs **0.36 s** with the head already on target and up to
**5.36 s** for a full head traversal (Section 6.3's cost range
[0.36, 5.36]).

The model also reproduces the *unsynchronized* failure modes of
Section 6.2: when two photo actions overlap on one camera, the head is
redirected mid-move, so photos come out blurred, aimed at the wrong
position, or fail outright under connection overload.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Generator, List, Optional

from repro.errors import ActionFailedError, DeviceDownError, DeviceError
from repro.geometry import Point, ViewSector, angle_difference, normalize_angle
from repro.devices.base import Device
from repro.runtime import Runtime

#: Photo sizes supported by the capture operations.
PHOTO_SIZES = ("small", "medium", "large")


@dataclass(frozen=True)
class CameraCalibration:
    """Timing/physics constants of the simulated camera.

    The default values are chosen so a medium ``photo()`` costs exactly
    the paper's [0.36, 5.36] s interval: 0.36 s of fixed work
    (connect + capture + store) plus 0–5 s of head movement.
    """

    #: Degrees per second of pan-axis head movement.
    pan_speed: float = 68.0
    #: Degrees per second of tilt-axis head movement.
    tilt_speed: float = 27.0
    #: Zoom factor change per second.
    zoom_speed: float = 3.0
    #: Pan limits in degrees (AXIS 2130: +/- 170).
    pan_min: float = -170.0
    pan_max: float = 170.0
    #: Tilt limits in degrees.
    tilt_min: float = -45.0
    tilt_max: float = 90.0
    #: Zoom factor limits.
    zoom_min: float = 1.0
    zoom_max: float = 10.0
    #: Seconds to open the HTTP control channel.
    connect_seconds: float = 0.06
    #: Seconds to expose/encode a photo, by size.
    capture_seconds: Dict[str, float] = field(default_factory=lambda: {
        "small": 0.12, "medium": 0.20, "large": 0.34,
    })
    #: Seconds to store the image file.
    store_seconds: float = 0.10
    #: Concurrent control connections before new connects are refused.
    max_concurrent_requests: int = 4

    def fixed_photo_seconds(self, size: str = "medium") -> float:
        """Cost of a photo with no head movement (paper: 0.36 s)."""
        return self.connect_seconds + self.capture_seconds[size] + self.store_seconds

    def max_movement_seconds(self) -> float:
        """Worst-case head traversal (paper: 5.0 s)."""
        return max(
            (self.pan_max - self.pan_min) / self.pan_speed,
            (self.tilt_max - self.tilt_min) / self.tilt_speed,
            (self.zoom_max - self.zoom_min) / self.zoom_speed,
        )


@dataclass(frozen=True)
class HeadPosition:
    """A camera head pose: pan and tilt in degrees, zoom as a factor."""

    pan: float = 0.0
    tilt: float = 0.0
    zoom: float = 1.0

    def movement_seconds(self, target: "HeadPosition",
                         calibration: CameraCalibration) -> float:
        """Time to move to ``target``: axes move in parallel, so the
        slowest axis dominates (this is what makes the photo cost
        sequence-dependent)."""
        return max(
            abs(target.pan - self.pan) / calibration.pan_speed,
            abs(target.tilt - self.tilt) / calibration.tilt_speed,
            abs(target.zoom - self.zoom) / calibration.zoom_speed,
        )

    def interpolate(self, target: "HeadPosition", fraction: float) -> "HeadPosition":
        """Head pose after ``fraction`` in [0, 1] of the move to target."""
        fraction = min(max(fraction, 0.0), 1.0)
        return HeadPosition(
            pan=self.pan + (target.pan - self.pan) * fraction,
            tilt=self.tilt + (target.tilt - self.tilt) * fraction,
            zoom=self.zoom + (target.zoom - self.zoom) * fraction,
        )


@dataclass
class Photo:
    """The product of one ``photo()`` action."""

    camera_id: str
    target: Point
    directory: str
    size: str
    taken_at: float
    #: Head pose at capture time.
    head: HeadPosition
    #: True when the head was still moving during exposure.
    blurred: bool = False
    #: Angular error (degrees) between intended and actual aim.
    aim_error_degrees: float = 0.0

    @property
    def ok(self) -> bool:
        """A photo is usable when sharp and aimed within one degree."""
        return not self.blurred and self.aim_error_degrees <= 1.0

    @property
    def pathname(self) -> str:
        """Simulated storage path of the image file."""
        stamp = f"{self.taken_at:.3f}".replace(".", "_")
        return f"{self.directory}/{self.camera_id}_{stamp}.jpg"


@dataclass
class _Motion:
    """Internal record of an in-flight head movement."""

    origin: HeadPosition
    target: HeadPosition
    started_at: float
    duration: float
    epoch: int

    def position_at(self, now: float) -> HeadPosition:
        if self.duration <= 0:
            return self.target
        fraction = (now - self.started_at) / self.duration
        return self.origin.interpolate(self.target, fraction)

    def moving_at(self, now: float) -> bool:
        return now < self.started_at + self.duration


class PanTiltZoomCamera(Device):
    """A remotely controllable PTZ network camera.

    The camera is mounted at ``location`` facing ``facing`` degrees with
    a pannable view sector; ``mount_height`` (metres) determines the
    tilt required to aim at floor-level targets.
    """

    device_type = "camera"

    def __init__(
        self,
        env: Runtime,
        device_id: str,
        location: Point,
        *,
        ip_address: str = "",
        facing: float = 0.0,
        view_half_angle: float = 170.0,
        view_range: float = 50.0,
        mount_height: float = 3.0,
        calibration: Optional[CameraCalibration] = None,
        blur_probability: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(env, device_id, location)
        self.ip_address = ip_address or f"10.0.0.{abs(hash(device_id)) % 250 + 1}"
        self.calibration = calibration or CameraCalibration()
        self.mount_height = mount_height
        self.view = ViewSector(
            origin=location, center=normalize_angle(facing),
            half_angle=view_half_angle, max_range=view_range,
        )
        self._motion = _Motion(
            origin=HeadPosition(), target=HeadPosition(),
            started_at=env.now, duration=0.0, epoch=0,
        )
        self._active_connections = 0
        if not 0.0 <= blur_probability < 1.0:
            raise DeviceError(
                f"blur_probability must be in [0, 1), got {blur_probability}"
            )
        #: Hardware unreliability: a real camera "may ... produce
        #: blurred photos occasionally" (Section 4) even unhindered.
        self.blur_probability = blur_probability
        self._rng = rng or random.Random(0)
        #: Every photo ever taken, newest last (the simulated photo store).
        self.photo_log: List[Photo] = []

    # ------------------------------------------------------------------
    # Geometry and aiming
    # ------------------------------------------------------------------
    def covers(self, target: Point) -> bool:
        """Whether ``target`` is inside this camera's view range
        (the ``coverage()`` built-in of the paper's Figure 1 query)."""
        return self.view.covers(target)

    def aim_for(self, target: Point) -> HeadPosition:
        """Head pose that points the lens at ``target``.

        Pan follows the bearing to the target; tilt looks down by the
        angle set by the mount height; zoom is auto-tuned from distance
        (the paper configured the real cameras the same way so photos of
        one location from either camera match in view size).
        """
        bearing = self.view.bearing_of(target)
        pan = self._clamp(bearing, self.calibration.pan_min, self.calibration.pan_max)
        distance = self.location.distance_to(target)
        tilt_down = -math.degrees(math.atan2(self.mount_height, max(distance, 0.1)))
        tilt = self._clamp(tilt_down, self.calibration.tilt_min,
                           self.calibration.tilt_max)
        zoom = self._clamp(1.0 + distance / 5.0, self.calibration.zoom_min,
                           self.calibration.zoom_max)
        return HeadPosition(pan=pan, tilt=tilt, zoom=zoom)

    @staticmethod
    def _clamp(value: float, low: float, high: float) -> float:
        return min(max(value, low), high)

    # ------------------------------------------------------------------
    # Physical status (cost-model input)
    # ------------------------------------------------------------------
    def head_position(self) -> HeadPosition:
        """Current head pose, interpolated while a move is in flight."""
        return self._motion.position_at(self.env.now)

    @property
    def head_moving(self) -> bool:
        """Whether a head movement is in progress right now."""
        return self._motion.moving_at(self.env.now)

    def physical_status(self) -> Dict[str, float]:
        head = self.head_position()
        return {"pan": head.pan, "tilt": head.tilt, "zoom": head.zoom}

    def static_attributes(self) -> Dict[str, Any]:
        row = super().static_attributes()
        row["ip"] = self.ip_address
        return row

    def read_sensory(self, name: str) -> Any:
        head = self.head_position()
        readings = {"pan": head.pan, "tilt": head.tilt, "zoom": head.zoom,
                    "moving": self.head_moving}
        if name in readings:
            return readings[name]
        return super().read_sensory(name)

    def estimated_move_seconds(self, target: Point) -> float:
        """Movement time from the *current* pose to aim at ``target``."""
        return self.head_position().movement_seconds(
            self.aim_for(target), self.calibration)

    # ------------------------------------------------------------------
    # Atomic operations
    # ------------------------------------------------------------------
    def operation_names(self) -> tuple[str, ...]:
        return ("connect", "move_head", "capture_small", "capture_medium",
                "capture_large", "store")

    def op_connect(self) -> Generator[Any, Any, None]:
        """Open a control connection; refused when overloaded.

        An overloaded real camera either delays heavily or drops the
        connection (Section 4); we refuse deterministically above the
        concurrency limit so the failure is observable and testable.
        """
        if self._active_connections >= self.calibration.max_concurrent_requests:
            raise ActionFailedError(
                f"camera {self.device_id}: connection refused "
                f"({self._active_connections} active)",
                reason="timeout",
            )
        self._active_connections += 1
        # Each concurrent client slows the control channel down.
        penalty = 1.0 + 0.5 * (self._active_connections - 1)
        yield self.env.timeout(self.service_seconds(
            self.calibration.connect_seconds * penalty))

    def release_connection(self) -> None:
        """Close one control connection opened by :meth:`op_connect`."""
        if self._active_connections <= 0:
            raise DeviceError(f"camera {self.device_id}: no connection to close")
        self._active_connections -= 1

    def op_move_head(self, target: HeadPosition) -> Generator[Any, Any, int]:
        """Slew the head to ``target``; returns the motion epoch.

        Starting a new move while one is in flight *redirects* the head
        from its interpolated position — exactly the unsynchronized
        interference of Section 6.2. The superseded move's epoch becomes
        stale, which its photo process detects at capture time.
        """
        now = self.env.now
        origin = self._motion.position_at(now)
        duration = self.service_seconds(
            origin.movement_seconds(target, self.calibration))
        self._motion = _Motion(
            origin=origin, target=target, started_at=now,
            duration=duration, epoch=self._motion.epoch + 1,
        )
        my_epoch = self._motion.epoch
        yield self.env.timeout(duration)
        return my_epoch

    def _capture(self, size: str) -> Generator[Any, Any, Photo]:
        if size not in PHOTO_SIZES:
            raise DeviceError(f"unknown photo size {size!r}")
        exposure = self.service_seconds(
            self.calibration.capture_seconds[size])
        moving_before = self.head_moving
        head_before = self.head_position()
        yield self.env.timeout(exposure)
        moving_after = self.head_moving
        # Exposure while the head moves smears the image; hardware also
        # smears a small fraction of otherwise-clean exposures.
        blurred = (moving_before or moving_after
                   or (self.blur_probability > 0
                       and self._rng.random() < self.blur_probability))
        return Photo(
            camera_id=self.device_id,
            target=Point(0.0, 0.0),  # caller fills in the intended target
            directory="",
            size=size,
            taken_at=self.env.now,
            head=head_before,
            blurred=blurred,
        )

    def op_capture_small(self) -> Generator[Any, Any, Photo]:
        return (yield from self._capture("small"))

    def op_capture_medium(self) -> Generator[Any, Any, Photo]:
        return (yield from self._capture("medium"))

    def op_capture_large(self) -> Generator[Any, Any, Photo]:
        return (yield from self._capture("large"))

    def op_store(self) -> Generator[Any, Any, None]:
        """Persist the last capture to storage."""
        yield self.env.timeout(self.service_seconds(
            self.calibration.store_seconds))

    # ------------------------------------------------------------------
    # The composite photo() behaviour (device side)
    # ------------------------------------------------------------------
    def take_photo(
        self, target: Point, directory: str, size: str = "medium"
    ) -> Generator[Any, Any, Photo]:
        """Full photo sequence: connect, aim, capture, store.

        This is the device-side behaviour the ``photo()`` action drives.
        Without engine-level locking, concurrent calls interleave and
        produce blurred / mis-aimed photos — run it through
        :mod:`repro.sync.locks` to get the paper's synchronized result.
        """
        if not self.online:
            # Transient: the camera may come back (outage end, repair).
            raise DeviceDownError(
                f"camera {self.device_id} is {self.state.value}"
            )
        if not self.covers(target):
            raise ActionFailedError(
                f"camera {self.device_id} does not cover {target}",
                reason="no_coverage",
            )
        started = self.env.now
        try:
            photo = yield from self._take_photo_connected(
                target, directory, size)
        finally:
            # The composite bypasses execute()'s bookkeeping; account
            # for it here so utilization reports stay truthful.
            self.operations_executed += 1
            self.busy_seconds += self.env.now - started
        return photo

    def _take_photo_connected(
        self, target: Point, directory: str, size: str
    ) -> Generator[Any, Any, Photo]:
        yield from self.op_connect()
        try:
            intended = self.aim_for(target)
            my_epoch = yield from self.op_move_head(intended)
            photo = yield from self._capture(size)
            actual = self.head_position()
            photo.target = target
            photo.directory = directory
            photo.aim_error_degrees = max(
                angle_difference(actual.pan, intended.pan),
                abs(actual.tilt - intended.tilt),
            )
            if self._motion.epoch != my_epoch:
                # Another request redirected the head under us.
                photo.blurred = True
            yield from self.op_store()
            self.photo_log.append(photo)
            return photo
        finally:
            self.release_connection()
