"""The device registry: the system's live view of the device network.

Devices "may join, move around, or leave the network dynamically"
(Section 4); the registry tracks current membership and lets the
communication layer enumerate devices per type for the virtual tables.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

from repro.errors import DeviceError, RegistrationError
from repro.devices.base import Device

#: Signature of membership-change listeners: (event, device).
MembershipListener = Callable[[str, Device], None]


class DeviceRegistry:
    """Registry of all devices known to the Aorta system."""

    def __init__(self) -> None:
        self._devices: Dict[str, Device] = {}
        self._listeners: List[MembershipListener] = []

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add(self, device: Device) -> None:
        """Register a device that joined the network."""
        if device.device_id in self._devices:
            raise RegistrationError(
                f"device {device.device_id!r} is already registered"
            )
        self._devices[device.device_id] = device
        self._notify("join", device)

    def remove(self, device_id: str) -> Device:
        """Unregister a device that left the network; returns it."""
        device = self.get(device_id)
        del self._devices[device_id]
        self._notify("leave", device)
        return device

    def get(self, device_id: str) -> Device:
        """Look up a device, raising on unknown IDs."""
        try:
            return self._devices[device_id]
        except KeyError:
            raise DeviceError(f"unknown device {device_id!r}") from None

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._devices

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(list(self._devices.values()))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_type(self, device_type: str) -> List[Device]:
        """All registered devices of one type, registration order."""
        return [d for d in self._devices.values()
                if d.device_type == device_type]

    def online_of_type(self, device_type: str) -> List[Device]:
        """Only the currently reachable devices of one type."""
        return [d for d in self.of_type(device_type) if d.online]

    def device_types(self) -> List[str]:
        """Sorted list of distinct registered device types."""
        return sorted({d.device_type for d in self._devices.values()})

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------
    def subscribe(self, listener: MembershipListener) -> None:
        """Register a callback for join/leave events."""
        self._listeners.append(listener)

    def _notify(self, event: str, device: Device) -> None:
        for listener in self._listeners:
            listener(event, device)
