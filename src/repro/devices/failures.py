"""Failure injection for devices.

Pervasive devices "are intrinsically unreliable" (Section 4). The
injector schedules failure episodes on the simulation clock so tests
and benchmarks can exercise the probing mechanism's exclusion of
malfunctioning devices deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import DeviceError
from repro.devices.base import Device
from repro.runtime import Runtime


@dataclass(frozen=True)
class OutageSpec:
    """One planned outage episode for a device."""

    device_id: str
    start: float
    duration: float
    #: ``offline`` = clean leave and rejoin; ``crash`` = hard fault + repair.
    kind: str = "offline"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise DeviceError("outage duration must be positive")
        if self.kind not in ("offline", "crash"):
            raise DeviceError(f"unknown outage kind {self.kind!r}")


class FailureInjector:
    """Schedules outage episodes onto simulated devices."""

    def __init__(self, env: Runtime) -> None:
        self.env = env
        self.scheduled: List[OutageSpec] = []

    def schedule_outage(self, device: Device, spec: OutageSpec) -> None:
        """Arrange for ``device`` to fail per ``spec``."""
        if spec.device_id != device.device_id:
            raise DeviceError(
                f"outage for {spec.device_id!r} scheduled on device "
                f"{device.device_id!r}"
            )
        if spec.start < self.env.now:
            raise DeviceError(
                f"outage for {spec.device_id!r} starts at {spec.start} "
                f"but the clock is already at {self.env.now}"
            )
        self.scheduled.append(spec)
        self.env.process(self._run_outage(device, spec))

    def _run_outage(self, device: Device, spec: OutageSpec):
        delay = spec.start - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        if spec.kind == "offline":
            device.go_offline()
        else:
            device.crash()
        yield self.env.timeout(spec.duration)
        if spec.kind == "offline":
            device.go_online()
        else:
            device.repair()

    def schedule_coverage_dropout(
        self, phone: "MobilePhone", start: float, duration: float
    ) -> None:
        """The phone's owner walks out of carrier coverage for a while.

        Distinct from an outage: the device is powered and healthy, but
        the network cannot reach it — the paper's "a phone may become
        unreachable when its owner moves into an area that is out of
        the coverage of the service provider" (Section 4).
        """
        from repro.devices.phone import MobilePhone
        if not isinstance(phone, MobilePhone):
            raise DeviceError(
                f"coverage dropouts only apply to phones, not "
                f"{phone.device_type!r}"
            )
        if duration <= 0:
            raise DeviceError("dropout duration must be positive")
        self.env.process(self._run_dropout(phone, start, duration))

    def _run_dropout(self, phone, start: float, duration: float):
        delay = start - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        phone.leave_coverage()
        yield self.env.timeout(duration)
        phone.enter_coverage()

    def random_outages(
        self,
        devices: List[Device],
        *,
        horizon: float,
        outage_rate_per_device: float,
        mean_duration: float,
        rng: Optional[random.Random] = None,
    ) -> int:
        """Poisson-like random outages across ``devices``.

        Returns the number of episodes scheduled. Deterministic given
        an explicit ``rng`` — and per-device deterministic: every
        device's episodes are drawn from its own substream derived from
        the device ID, so adding or removing a device (or one drawing
        zero episodes) never perturbs any other device's schedule.
        Episodes are clamped so ``start + duration`` never exceeds the
        horizon: every injected outage also recovers inside it.
        """
        if horizon <= 0:
            raise DeviceError("horizon must be positive")
        from repro.sim.rng import derive_seed
        rng = rng or random.Random(0)
        base_seed = rng.getrandbits(64)
        end_limit = self.env.now + horizon
        count = 0
        for device in devices:
            device_rng = random.Random(
                derive_seed(base_seed, device.device_id))
            expected = outage_rate_per_device * horizon
            episodes = int(expected) + (
                1 if device_rng.random() < expected % 1 else 0)
            if not episodes:
                continue
            for _ in range(episodes):
                start = self.env.now + device_rng.uniform(0, horizon)
                duration = max(
                    device_rng.expovariate(1.0 / mean_duration), 1e-3)
                if start >= end_limit:
                    continue
                duration = min(duration, end_limit - start)
                kind = "crash" if device_rng.random() < 0.2 else "offline"
                self.schedule_outage(device, OutageSpec(
                    device_id=device.device_id, start=start,
                    duration=duration, kind=kind,
                ))
                count += 1
        return count
