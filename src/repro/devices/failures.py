"""Failure injection for devices.

Pervasive devices "are intrinsically unreliable" (Section 4). The
injector schedules failure episodes on the simulation clock so tests
and benchmarks can exercise the probing mechanism's exclusion of
malfunctioning devices deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import DeviceError, QueueFullError
from repro.actions.request import ActionRequest
from repro.devices.base import Device
from repro.runtime import Runtime


@dataclass(frozen=True)
class OutageSpec:
    """One planned outage episode for a device."""

    device_id: str
    start: float
    duration: float
    #: ``offline`` = clean leave and rejoin; ``crash`` = hard fault + repair.
    kind: str = "offline"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise DeviceError("outage duration must be positive")
        if self.kind not in ("offline", "crash"):
            raise DeviceError(f"unknown outage kind {self.kind!r}")


@dataclass(frozen=True)
class StragglerSpec:
    """One planned straggler episode: a device runs slow for a while.

    "Slow" means every operation duration is multiplied by ``factor``
    (via :meth:`Device.service_seconds`) between ``start`` and
    ``start + duration`` — the device stays online and answers probes,
    which is exactly what makes stragglers harder on the scheduler
    than outages: cost estimates stay optimistic while actual service
    times balloon.
    """

    device_id: str
    start: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise DeviceError("straggler duration must be positive")
        if self.factor <= 1.0:
            raise DeviceError(
                f"straggler factor must exceed 1.0, got {self.factor}")


class FailureInjector:
    """Schedules outage, straggler and storm episodes onto the sim."""

    def __init__(self, env: Runtime) -> None:
        self.env = env
        self.scheduled: List[OutageSpec] = []
        self.scheduled_stragglers: List[StragglerSpec] = []
        #: Storm submissions refused by backpressure/admission, per
        #: storm in scheduling order.
        self.storm_rejected: List[int] = []

    def schedule_outage(self, device: Device, spec: OutageSpec) -> None:
        """Arrange for ``device`` to fail per ``spec``."""
        if spec.device_id != device.device_id:
            raise DeviceError(
                f"outage for {spec.device_id!r} scheduled on device "
                f"{device.device_id!r}"
            )
        if spec.start < self.env.now:
            raise DeviceError(
                f"outage for {spec.device_id!r} starts at {spec.start} "
                f"but the clock is already at {self.env.now}"
            )
        self.scheduled.append(spec)
        self.env.process(self._run_outage(device, spec))

    def _run_outage(self, device: Device, spec: OutageSpec):
        delay = spec.start - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        if spec.kind == "offline":
            device.go_offline()
        else:
            device.crash()
        yield self.env.timeout(spec.duration)
        if spec.kind == "offline":
            device.go_online()
        else:
            device.repair()

    def schedule_coverage_dropout(
        self, phone: "MobilePhone", start: float, duration: float
    ) -> None:
        """The phone's owner walks out of carrier coverage for a while.

        Distinct from an outage: the device is powered and healthy, but
        the network cannot reach it — the paper's "a phone may become
        unreachable when its owner moves into an area that is out of
        the coverage of the service provider" (Section 4).
        """
        from repro.devices.phone import MobilePhone
        if not isinstance(phone, MobilePhone):
            raise DeviceError(
                f"coverage dropouts only apply to phones, not "
                f"{phone.device_type!r}"
            )
        if duration <= 0:
            raise DeviceError("dropout duration must be positive")
        self.env.process(self._run_dropout(phone, start, duration))

    def _run_dropout(self, phone, start: float, duration: float):
        delay = start - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        phone.leave_coverage()
        yield self.env.timeout(duration)
        phone.enter_coverage()

    # ------------------------------------------------------------------
    # Stragglers: slow devices, not dead ones
    # ------------------------------------------------------------------
    def schedule_straggler(self, device: Device,
                           spec: StragglerSpec) -> None:
        """Arrange for ``device`` to run slow per ``spec``.

        The inflation composes multiplicatively with any slowdown
        already in force when the episode starts (overlapping episodes
        stack), and the episode end restores exactly the factor it
        found — never clobbering a concurrent episode's contribution.
        """
        if spec.device_id != device.device_id:
            raise DeviceError(
                f"straggler for {spec.device_id!r} scheduled on device "
                f"{device.device_id!r}"
            )
        if spec.start < self.env.now:
            raise DeviceError(
                f"straggler for {spec.device_id!r} starts at {spec.start} "
                f"but the clock is already at {self.env.now}"
            )
        self.scheduled_stragglers.append(spec)
        self.env.process(self._run_straggler(device, spec))

    def _run_straggler(self, device: Device, spec: StragglerSpec):
        delay = spec.start - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        device.slowdown_factor *= spec.factor
        yield self.env.timeout(spec.duration)
        device.slowdown_factor /= spec.factor

    def random_stragglers(
        self,
        devices: List[Device],
        *,
        horizon: float,
        straggler_rate_per_device: float,
        factor_range: Tuple[float, float] = (2.0, 8.0),
        mean_duration: float = 20.0,
        rng: Optional[random.Random] = None,
    ) -> int:
        """Random straggler episodes across ``devices``.

        Mirrors :meth:`random_outages`: deterministic given an explicit
        ``rng``, per-device substreams (labelled ``straggler:<id>`` so
        they never collide with the outage substreams of the same base
        seed), and horizon clamping so every episode also *ends* inside
        the horizon. Returns the number of episodes scheduled.
        """
        if horizon <= 0:
            raise DeviceError("horizon must be positive")
        low, high = factor_range
        if not 1.0 < low <= high:
            raise DeviceError(
                f"factor_range must satisfy 1 < low <= high, got "
                f"{factor_range}")
        from repro.sim.rng import derive_seed
        rng = rng or random.Random(0)
        base_seed = rng.getrandbits(64)
        end_limit = self.env.now + horizon
        count = 0
        for device in devices:
            device_rng = random.Random(
                derive_seed(base_seed, f"straggler:{device.device_id}"))
            expected = straggler_rate_per_device * horizon
            episodes = int(expected) + (
                1 if device_rng.random() < expected % 1 else 0)
            if not episodes:
                continue
            for _ in range(episodes):
                start = self.env.now + device_rng.uniform(0, horizon)
                duration = max(
                    device_rng.expovariate(1.0 / mean_duration), 1e-3)
                factor = device_rng.uniform(low, high)
                if start >= end_limit:
                    continue
                duration = min(duration, end_limit - start)
                self.schedule_straggler(device, StragglerSpec(
                    device_id=device.device_id, start=start,
                    duration=duration, factor=factor,
                ))
                count += 1
        return count

    # ------------------------------------------------------------------
    # Request storms: overload, not failure
    # ------------------------------------------------------------------
    def schedule_request_storm(
        self,
        submit: Callable[[ActionRequest], Any],
        make_request: Callable[[int, float], ActionRequest],
        *,
        start: float,
        duration: float,
        rate: float,
    ) -> int:
        """Inject a deterministic flood of action requests.

        ``rate`` requests per virtual second arrive uniformly spaced
        over ``[start, start + duration)``; request ``i`` is built by
        ``make_request(i, arrival_time)`` at its arrival instant and
        handed to ``submit`` (typically ``dispatcher.submit`` bound to
        an operator, or a bare ``operator.submit``). Refusals — a
        False return or :class:`~repro.errors.QueueFullError` — are
        tallied in :attr:`storm_rejected`; without overload control
        neither occurs and the storm just grows the pending queue.
        Returns the number of arrivals scheduled.
        """
        if duration <= 0:
            raise DeviceError("storm duration must be positive")
        if rate <= 0:
            raise DeviceError("storm rate must be positive")
        if start < self.env.now:
            raise DeviceError(
                f"storm starts at {start} but the clock is already at "
                f"{self.env.now}")
        count = int(rate * duration)
        storm_index = len(self.storm_rejected)
        self.storm_rejected.append(0)
        self.env.process(self._run_storm(submit, make_request, start,
                                         rate, count, storm_index))
        return count

    def _run_storm(self, submit, make_request, start: float, rate: float,
                   count: int, storm_index: int):
        delay = start - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        previous = self.env.now
        for index in range(count):
            arrival = start + index / rate
            if arrival > previous:
                yield self.env.timeout(arrival - previous)
                previous = arrival
            request = make_request(index, self.env.now)
            try:
                accepted = submit(request)
            except QueueFullError:
                accepted = False
            if accepted is False:
                self.storm_rejected[storm_index] += 1

    def random_outages(
        self,
        devices: List[Device],
        *,
        horizon: float,
        outage_rate_per_device: float,
        mean_duration: float,
        rng: Optional[random.Random] = None,
    ) -> int:
        """Poisson-like random outages across ``devices``.

        Returns the number of episodes scheduled. Deterministic given
        an explicit ``rng`` — and per-device deterministic: every
        device's episodes are drawn from its own substream derived from
        the device ID, so adding or removing a device (or one drawing
        zero episodes) never perturbs any other device's schedule.
        Episodes are clamped so ``start + duration`` never exceeds the
        horizon: every injected outage also recovers inside it.
        """
        if horizon <= 0:
            raise DeviceError("horizon must be positive")
        from repro.sim.rng import derive_seed
        rng = rng or random.Random(0)
        base_seed = rng.getrandbits(64)
        end_limit = self.env.now + horizon
        count = 0
        for device in devices:
            device_rng = random.Random(
                derive_seed(base_seed, device.device_id))
            expected = outage_rate_per_device * horizon
            episodes = int(expected) + (
                1 if device_rng.random() < expected % 1 else 0)
            if not episodes:
                continue
            for _ in range(episodes):
                start = self.env.now + device_rng.uniform(0, horizon)
                duration = max(
                    device_rng.expovariate(1.0 / mean_duration), 1e-3)
                if start >= end_limit:
                    continue
                duration = min(duration, end_limit - start)
                kind = "crash" if device_rng.random() < 0.2 else "offline"
                self.schedule_outage(device, OutageSpec(
                    device_id=device.device_id, start=start,
                    duration=duration, kind=kind,
                ))
                count += 1
        return count
