"""Simulated heterogeneous devices.

The paper's testbed drives AXIS 2130 PTZ network cameras, Berkeley MICA2
sensor motes and MMS-capable phones. This package provides simulated
counterparts running on the discrete-event kernel. The camera model is
calibrated so a ``photo()`` action costs 0.36–5.36 virtual seconds, the
interval the paper measured on the real cameras (Section 6.3).
"""

from repro.devices.base import Device, DeviceState, OperationOutcome
from repro.devices.health import (
    BreakerState,
    DeviceHealthTracker,
    HealthPolicy,
)
from repro.devices.camera import (
    CameraCalibration,
    HeadPosition,
    PanTiltZoomCamera,
    Photo,
)
from repro.devices.phone import MobilePhone, TextMessage
from repro.devices.registry import DeviceRegistry
from repro.devices.sensor import SensorMote, SensorStimulus

__all__ = [
    "BreakerState",
    "CameraCalibration",
    "Device",
    "DeviceHealthTracker",
    "DeviceRegistry",
    "DeviceState",
    "HeadPosition",
    "HealthPolicy",
    "MobilePhone",
    "OperationOutcome",
    "PanTiltZoomCamera",
    "Photo",
    "SensorMote",
    "SensorStimulus",
    "TextMessage",
]
