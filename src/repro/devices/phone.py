"""Simulated cell phone with SMS/MMS support.

Phones are the delivery endpoint of actions like the paper's
``sendphoto(phone_no, photo_pathname)`` example; they "may become
unreachable when [the] owner moves into an area that is out of the
coverage of the service provider" (Section 4), which the probing
mechanism must detect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List

from repro.errors import CommunicationError, DeviceError
from repro.geometry import Point
from repro.devices.base import Device
from repro.runtime import Runtime

#: Seconds to deliver a plain SMS.
SMS_SECONDS = 0.8
#: Fixed MMS setup cost plus per-kilobyte transfer time.
MMS_FIXED_SECONDS = 1.5
MMS_PER_KB_SECONDS = 0.01


@dataclass(frozen=True)
class TextMessage:
    """One message in a phone's inbox."""

    kind: str  # "sms" | "mms"
    sender: str
    body: str
    attachment: str = ""
    received_at: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("sms", "mms"):
            raise DeviceError(f"unknown message kind {self.kind!r}")
        if self.kind == "mms" and not self.attachment:
            raise DeviceError("an MMS needs an attachment path")


class MobilePhone(Device):
    """An MMS-capable phone owned by, e.g., the off-duty lab manager."""

    device_type = "phone"

    def __init__(
        self,
        env: Runtime,
        device_id: str,
        location: Point,
        *,
        number: str,
        mms_support: bool = True,
    ) -> None:
        super().__init__(env, device_id, location)
        if not number:
            raise DeviceError("phone number must be non-empty")
        self.number = number
        self.mms_support = mms_support
        self.in_coverage = True
        self.battery_percent = 100.0
        self.inbox: List[TextMessage] = []

    @property
    def reachable(self) -> bool:
        """A phone out of carrier coverage is online but unreachable."""
        return self.online and self.in_coverage

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------
    def leave_coverage(self) -> None:
        """The owner walked out of the provider's coverage area."""
        self.in_coverage = False

    def enter_coverage(self) -> None:
        """The owner is reachable again."""
        self.in_coverage = True

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------
    def static_attributes(self) -> Dict[str, Any]:
        row = super().static_attributes()
        row["number"] = self.number
        row["mms_support"] = self.mms_support
        return row

    def read_sensory(self, name: str) -> Any:
        readings = {"battery": self.battery_percent,
                    "in_coverage": self.in_coverage}
        if name in readings:
            return readings[name]
        return super().read_sensory(name)

    def physical_status(self) -> Dict[str, float]:
        return {"battery": self.battery_percent,
                "in_coverage": 1.0 if self.in_coverage else 0.0}

    # ------------------------------------------------------------------
    # Atomic operations
    # ------------------------------------------------------------------
    def operation_names(self) -> tuple[str, ...]:
        return ("connect", "receive_sms", "receive_mms")

    def _require_coverage(self) -> None:
        if not self.in_coverage:
            raise CommunicationError(
                f"phone {self.number} is out of coverage"
            )

    def op_connect(self) -> Generator[Any, Any, None]:
        """Page the phone through the carrier network."""
        self._require_coverage()
        yield self.env.timeout(self.service_seconds(0.3))
        self._require_coverage()

    def op_receive_sms(self, sender: str, body: str) -> Generator[Any, Any, TextMessage]:
        """Deliver a plain text message."""
        self._require_coverage()
        yield self.env.timeout(self.service_seconds(SMS_SECONDS))
        self._require_coverage()
        message = TextMessage(kind="sms", sender=sender, body=body,
                              received_at=self.env.now)
        self.inbox.append(message)
        self.battery_percent = max(self.battery_percent - 0.01, 0.0)
        return message

    def op_receive_mms(
        self, sender: str, body: str, attachment: str, size_kb: float = 100.0
    ) -> Generator[Any, Any, TextMessage]:
        """Deliver a multimedia message carrying ``attachment``."""
        if not self.mms_support:
            raise DeviceError(f"phone {self.number} has no MMS support")
        if size_kb <= 0:
            raise DeviceError(f"MMS size must be positive, got {size_kb}")
        self._require_coverage()
        yield self.env.timeout(self.service_seconds(
            MMS_FIXED_SECONDS + MMS_PER_KB_SECONDS * size_kb))
        self._require_coverage()
        message = TextMessage(kind="mms", sender=sender, body=body,
                              attachment=attachment, received_at=self.env.now)
        self.inbox.append(message)
        self.battery_percent = max(self.battery_percent - 0.05, 0.0)
        return message
