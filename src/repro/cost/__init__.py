"""The action cost model (paper Section 2.3).

"The cost of an action is ... estimated based on the action profile and
the estimated costs of the atomic operations on the type of devices."
Because "an action execution may change the current physical status of
the device", every estimate also returns the projected post-execution
status, which schedulers chain to model sequence-dependent costs.
"""

from repro.cost.calibration import Calibrator, Measurement, calibrate_camera
from repro.cost.model import CostEstimate, CostModel, QuantityResolver

__all__ = [
    "Calibrator",
    "CostEstimate",
    "CostModel",
    "Measurement",
    "QuantityResolver",
    "calibrate_camera",
]
