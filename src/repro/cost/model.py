"""Cost estimation for actions on candidate devices."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Protocol, Tuple

from repro.errors import ProfileError, RegistrationError
from repro.devices.base import Device
from repro.profiles.action_profile import (
    ActionProfile,
    CompositionNode,
    OperationRef,
    Parallel,
    Sequence,
)
from repro.profiles.cost_table import CostTable


def _numpy() -> Any:
    """Lazy numpy import: block estimation is an optional fast path."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - no-numpy CI leg
        raise ProfileError(
            "block cost estimation requires numpy; install the optional "
            "extra (pip install 'repro[fast]')"
        ) from None
    return numpy

#: A device physical-status snapshot, e.g. ``{"pan": 30.0, "tilt": -5.0}``.
Status = Mapping[str, float]


class BlockResolver(Protocol):
    """Vectorized counterpart of :class:`QuantityResolver`.

    Splits the resolver's work along the status dependency:

    * :meth:`prepare` runs once per device over a whole batch of action
      argument mappings and returns index-aligned arrays of everything
      *status-independent* (for ``photo()``: the aimed head pose per
      target). This is where scalar trig lives, so the vectorized path
      stays bit-equal to per-call estimation.
    * :meth:`resolve` turns prepared data plus ONE status into quantity
      arrays for the requested indexes — pure element-wise float64
      arithmetic only.
    * :meth:`post_status` recovers the scalar post-execution status of
      one prepared entry. Block resolvers only exist for actions whose
      post status does not depend on the starting status.
    """

    def prepare(self, device: Device, args_list: "list[Mapping[str, Any]]"
                ) -> Any:
        """Status-independent per-request data, index-aligned arrays."""
        ...

    def resolve(self, device: Device, prepared: Any, status: Status,
                indexes: Optional[Any] = None) -> Dict[str, Any]:
        """Quantity-name -> float64 array for ``indexes`` (None = all)."""
        ...

    def post_status(self, device: Device, prepared: Any,
                    index: int) -> Dict[str, float]:
        """Post-execution status of one prepared entry."""
        ...


class QuantityResolver(Protocol):
    """Turns (device, status, action args) into profile quantities.

    A resolver knows the geometry/semantics of one action: for
    ``photo()`` it computes how many degrees of pan and tilt separate
    the device's current head pose from the pose that aims at the
    action's target. It returns the resolved quantities *and* the
    projected post-execution status — the input to the next estimate in
    a sequence (the paper's sequence-dependent action execution time).
    """

    def __call__(
        self, device: Device, status: Status, args: Mapping[str, Any]
    ) -> Tuple[Dict[str, float], Dict[str, float]]:
        """Return ``(quantities, post_status)``."""
        ...


@dataclass(frozen=True)
class CostEstimate:
    """One estimate: seconds of service time plus the projected status."""

    seconds: float
    post_status: Dict[str, float] = field(default_factory=dict)
    quantities: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class BlockEstimate:
    """A batch of estimates from one status: index-aligned arrays.

    ``seconds[i]`` is bit-equal to the scalar
    :meth:`CostModel.estimate` of the i-th prepared request from the
    same status; ``quantities`` holds the resolved quantity arrays.
    """

    seconds: Any
    quantities: Dict[str, Any] = field(default_factory=dict)


class CostModel:
    """Estimates action costs from profiles, cost tables and status.

    Registration is two-part: cost tables per device type (from the
    communication layer's profiles) and (action profile, resolver) pairs
    per action/device-type combination.
    """

    def __init__(self) -> None:
        self._cost_tables: Dict[str, CostTable] = {}
        self._profiles: Dict[Tuple[str, str], ActionProfile] = {}
        self._resolvers: Dict[Tuple[str, str], QuantityResolver] = {}
        self._block_resolvers: Dict[Tuple[str, str], BlockResolver] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_cost_table(self, table: CostTable) -> None:
        """Register the atomic-operation costs of one device type."""
        if table.device_type in self._cost_tables:
            raise RegistrationError(
                f"cost table for {table.device_type!r} already registered"
            )
        self._cost_tables[table.device_type] = table

    def register_action(
        self, profile: ActionProfile, resolver: QuantityResolver,
        block_resolver: Optional[BlockResolver] = None,
    ) -> None:
        """Register an action's profile and its quantity resolver.

        The profile is validated against the device type's cost table
        immediately, so a typo'd operation name fails at registration
        rather than mid-query. ``block_resolver`` optionally enables the
        vectorized :meth:`estimate_block` entry point for the action.
        """
        key = (profile.action_name, profile.device_type)
        if key in self._profiles:
            raise RegistrationError(
                f"action {profile.action_name!r} on {profile.device_type!r} "
                f"already registered"
            )
        table = self._require_table(profile.device_type)
        profile.validate_against(table)
        self._profiles[key] = profile
        self._resolvers[key] = resolver
        if block_resolver is not None:
            self._block_resolvers[key] = block_resolver

    def has_action(self, action_name: str, device_type: str) -> bool:
        """Whether an estimate is possible for this combination."""
        return (action_name, device_type) in self._profiles

    def profile(self, action_name: str, device_type: str) -> ActionProfile:
        """The registered profile, raising on unknown combinations."""
        try:
            return self._profiles[(action_name, device_type)]
        except KeyError:
            raise ProfileError(
                f"no profile registered for action {action_name!r} on "
                f"device type {device_type!r}"
            ) from None

    def _require_table(self, device_type: str) -> CostTable:
        try:
            return self._cost_tables[device_type]
        except KeyError:
            raise ProfileError(
                f"no cost table registered for device type {device_type!r}"
            ) from None

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(
        self,
        action_name: str,
        device: Device,
        args: Mapping[str, Any],
        status: Optional[Status] = None,
    ) -> CostEstimate:
        """Estimate one action execution on one candidate device.

        ``status`` is the device's physical status to estimate *from* —
        pass a probe result for the current status, or a previous
        estimate's ``post_status`` to chain a sequence. ``None`` reads
        the device's live status (convenient in tests; the optimizer
        always passes probed status).
        """
        key = (action_name, device.device_type)
        profile = self.profile(action_name, device.device_type)
        table = self._require_table(device.device_type)
        resolver = self._resolvers[key]
        if status is None:
            status = device.physical_status()
        quantities, post_status = resolver(device, status, args)
        missing = profile.required_quantities() - set(quantities)
        if missing:
            raise ProfileError(
                f"resolver for {action_name!r} on {device.device_type!r} "
                f"did not produce quantities: {sorted(missing)}"
            )
        seconds = profile.estimate(table, quantities)
        return CostEstimate(
            seconds=seconds,
            post_status=dict(post_status),
            quantities=dict(quantities),
        )

    def estimate_sequence(
        self,
        action_name: str,
        device: Device,
        args_sequence: list[Mapping[str, Any]],
        status: Optional[Status] = None,
    ) -> list[CostEstimate]:
        """Estimate a sequence of executions, chaining post-status.

        This is the primitive the schedulers build on: the cost of the
        k-th action depends on where the (k-1)-th left the device.
        """
        if status is None:
            status = device.physical_status()
        estimates = []
        for args in args_sequence:
            estimate = self.estimate(action_name, device, args, status)
            estimates.append(estimate)
            status = estimate.post_status
        return estimates

    # ------------------------------------------------------------------
    # Block (vectorized) estimation
    # ------------------------------------------------------------------
    def supports_block(self, action_name: str, device_type: str) -> bool:
        """Whether a block resolver is registered for this combination."""
        return (action_name, device_type) in self._block_resolvers

    def _require_block(self, action_name: str,
                       device_type: str) -> BlockResolver:
        try:
            return self._block_resolvers[(action_name, device_type)]
        except KeyError:
            raise ProfileError(
                f"no block resolver registered for action {action_name!r} "
                f"on device type {device_type!r}"
            ) from None

    def prepare_block(
        self, action_name: str, device: Device,
        args_list: "list[Mapping[str, Any]]",
    ) -> Any:
        """Status-independent batch preparation for one device.

        The returned opaque object feeds any number of
        :meth:`estimate_block` / :meth:`block_post_status` calls for the
        same (action, device, args batch).
        """
        resolver = self._require_block(action_name, device.device_type)
        return resolver.prepare(device, args_list)

    def estimate_block(
        self,
        action_name: str,
        device: Device,
        prepared: Any,
        status: Status,
        indexes: Optional[Any] = None,
    ) -> BlockEstimate:
        """Vectorized :meth:`estimate` over a prepared batch.

        Evaluates the action profile's composition tree once over
        quantity *arrays* instead of once per request; element ``i`` of
        the result is bit-equal to the scalar estimate of prepared
        request ``indexes[i]`` from the same ``status``.
        """
        numpy = _numpy()
        profile = self.profile(action_name, device.device_type)
        table = self._require_table(device.device_type)
        resolver = self._require_block(action_name, device.device_type)
        quantities = resolver.resolve(device, prepared, status, indexes)
        missing = profile.required_quantities() - set(quantities)
        if missing:
            raise ProfileError(
                f"block resolver for {action_name!r} on "
                f"{device.device_type!r} did not produce quantities: "
                f"{sorted(missing)}"
            )
        count: Optional[int] = None
        for array in quantities.values():
            count = len(array)
            if len(array) and float(array.min()) < 0:
                raise ProfileError(
                    f"action {action_name!r} block-estimated with a "
                    f"negative quantity"
                )
        if count is None:
            if indexes is None:
                raise ProfileError(
                    f"action {action_name!r} has no quantities; block "
                    f"estimation needs explicit indexes to size the batch"
                )
            count = len(indexes)
        seconds = _block_seconds(profile.composition, table, quantities)
        if not isinstance(seconds, numpy.ndarray):
            seconds = numpy.full(count, seconds, dtype=numpy.float64)
        return BlockEstimate(seconds=seconds, quantities=dict(quantities))

    def block_post_status(
        self, action_name: str, device: Device, prepared: Any, index: int
    ) -> Dict[str, float]:
        """Post-execution status of one prepared request."""
        resolver = self._require_block(action_name, device.device_type)
        return resolver.post_status(device, prepared, index)


def _block_seconds(node: CompositionNode, table: CostTable,
                   quantities: Mapping[str, Any]) -> Any:
    """Element-wise composition-tree evaluation over quantity arrays.

    Mirrors the scalar walk operation for operation and in the same
    fold order, so each element of the result is bit-equal to
    ``node.estimate`` of the corresponding scalar quantities: sequences
    left-fold ``+``, parallels left-fold ``maximum``, and each leaf is
    the cost table's ``fixed + per_unit * quantity`` linear form.
    Fixed-cost subtrees evaluate to Python floats and broadcast.
    """
    numpy = _numpy()
    if isinstance(node, OperationRef):
        operation = table.operation(node.operation)
        if node.quantity:
            if node.quantity not in quantities:
                raise ProfileError(
                    f"quantity {node.quantity!r} for operation "
                    f"{node.operation!r} was not resolved"
                )
            return (operation.fixed_seconds
                    + operation.per_unit_seconds * quantities[node.quantity])
        return operation.estimate()
    if isinstance(node, Sequence):
        total: Any = 0
        for child in node.children:
            total = total + _block_seconds(child, table, quantities)
        return total
    if isinstance(node, Parallel):
        slowest: Any = None
        for child in node.children:
            value = _block_seconds(child, table, quantities)
            slowest = value if slowest is None else numpy.maximum(slowest,
                                                                  value)
        return slowest
    raise ProfileError(  # pragma: no cover - defensive
        f"unknown composition node type {type(node).__name__!r}")
