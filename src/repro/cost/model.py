"""Cost estimation for actions on candidate devices."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Protocol, Tuple

from repro.errors import ProfileError, RegistrationError
from repro.devices.base import Device
from repro.profiles.action_profile import ActionProfile
from repro.profiles.cost_table import CostTable

#: A device physical-status snapshot, e.g. ``{"pan": 30.0, "tilt": -5.0}``.
Status = Mapping[str, float]


class QuantityResolver(Protocol):
    """Turns (device, status, action args) into profile quantities.

    A resolver knows the geometry/semantics of one action: for
    ``photo()`` it computes how many degrees of pan and tilt separate
    the device's current head pose from the pose that aims at the
    action's target. It returns the resolved quantities *and* the
    projected post-execution status — the input to the next estimate in
    a sequence (the paper's sequence-dependent action execution time).
    """

    def __call__(
        self, device: Device, status: Status, args: Mapping[str, Any]
    ) -> Tuple[Dict[str, float], Dict[str, float]]:
        """Return ``(quantities, post_status)``."""
        ...


@dataclass(frozen=True)
class CostEstimate:
    """One estimate: seconds of service time plus the projected status."""

    seconds: float
    post_status: Dict[str, float] = field(default_factory=dict)
    quantities: Dict[str, float] = field(default_factory=dict)


class CostModel:
    """Estimates action costs from profiles, cost tables and status.

    Registration is two-part: cost tables per device type (from the
    communication layer's profiles) and (action profile, resolver) pairs
    per action/device-type combination.
    """

    def __init__(self) -> None:
        self._cost_tables: Dict[str, CostTable] = {}
        self._profiles: Dict[Tuple[str, str], ActionProfile] = {}
        self._resolvers: Dict[Tuple[str, str], QuantityResolver] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_cost_table(self, table: CostTable) -> None:
        """Register the atomic-operation costs of one device type."""
        if table.device_type in self._cost_tables:
            raise RegistrationError(
                f"cost table for {table.device_type!r} already registered"
            )
        self._cost_tables[table.device_type] = table

    def register_action(
        self, profile: ActionProfile, resolver: QuantityResolver
    ) -> None:
        """Register an action's profile and its quantity resolver.

        The profile is validated against the device type's cost table
        immediately, so a typo'd operation name fails at registration
        rather than mid-query.
        """
        key = (profile.action_name, profile.device_type)
        if key in self._profiles:
            raise RegistrationError(
                f"action {profile.action_name!r} on {profile.device_type!r} "
                f"already registered"
            )
        table = self._require_table(profile.device_type)
        profile.validate_against(table)
        self._profiles[key] = profile
        self._resolvers[key] = resolver

    def has_action(self, action_name: str, device_type: str) -> bool:
        """Whether an estimate is possible for this combination."""
        return (action_name, device_type) in self._profiles

    def profile(self, action_name: str, device_type: str) -> ActionProfile:
        """The registered profile, raising on unknown combinations."""
        try:
            return self._profiles[(action_name, device_type)]
        except KeyError:
            raise ProfileError(
                f"no profile registered for action {action_name!r} on "
                f"device type {device_type!r}"
            ) from None

    def _require_table(self, device_type: str) -> CostTable:
        try:
            return self._cost_tables[device_type]
        except KeyError:
            raise ProfileError(
                f"no cost table registered for device type {device_type!r}"
            ) from None

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(
        self,
        action_name: str,
        device: Device,
        args: Mapping[str, Any],
        status: Optional[Status] = None,
    ) -> CostEstimate:
        """Estimate one action execution on one candidate device.

        ``status`` is the device's physical status to estimate *from* —
        pass a probe result for the current status, or a previous
        estimate's ``post_status`` to chain a sequence. ``None`` reads
        the device's live status (convenient in tests; the optimizer
        always passes probed status).
        """
        key = (action_name, device.device_type)
        profile = self.profile(action_name, device.device_type)
        table = self._require_table(device.device_type)
        resolver = self._resolvers[key]
        if status is None:
            status = device.physical_status()
        quantities, post_status = resolver(device, status, args)
        missing = profile.required_quantities() - set(quantities)
        if missing:
            raise ProfileError(
                f"resolver for {action_name!r} on {device.device_type!r} "
                f"did not produce quantities: {sorted(missing)}"
            )
        seconds = profile.estimate(table, quantities)
        return CostEstimate(
            seconds=seconds,
            post_status=dict(post_status),
            quantities=dict(quantities),
        )

    def estimate_sequence(
        self,
        action_name: str,
        device: Device,
        args_sequence: list[Mapping[str, Any]],
        status: Optional[Status] = None,
    ) -> list[CostEstimate]:
        """Estimate a sequence of executions, chaining post-status.

        This is the primitive the schedulers build on: the cost of the
        k-th action depends on where the (k-1)-th left the device.
        """
        if status is None:
            status = device.physical_status()
        estimates = []
        for args in args_sequence:
            estimate = self.estimate(action_name, device, args, status)
            estimates.append(estimate)
            status = estimate.post_status
        return estimates
