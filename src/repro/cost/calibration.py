"""Empirical calibration of atomic-operation costs.

"The estimated cost of an atomic operation is measured by our
homegrown programs using some cost metric; the cost metric we currently
use is the time required to finish the operation." (Section 3.1)

The calibrator is that homegrown program: it runs atomic operations on
a live (simulated) device, times them on the virtual clock, and fits
:class:`~repro.profiles.AtomicOperationCost` entries — a constant for
fixed-cost operations, and an ordinary-least-squares line
``fixed + per_unit * quantity`` for quantity-scaled ones. Calibrating a
camera this way recovers the shipped default cost table, which is the
reproduction's analogue of the paper validating its tables against real
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Sequence, Tuple

from repro.errors import ProfileError
from repro.devices.camera import HeadPosition, PanTiltZoomCamera
from repro.profiles.cost_table import AtomicOperationCost, CostTable
from repro.runtime import Runtime

#: A measurement routine: runs one trial at ``quantity`` and returns
#: nothing; the calibrator times it.
TrialRunner = Callable[[float], Generator[Any, Any, None]]


@dataclass(frozen=True)
class Measurement:
    """One timed trial of an atomic operation."""

    operation: str
    quantity: float
    seconds: float


def _fit_line(points: Sequence[Tuple[float, float]]) -> Tuple[float, float]:
    """Ordinary least squares ``y = intercept + slope * x``."""
    n = len(points)
    if n < 2:
        raise ProfileError("need at least two points to fit a line")
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    ss_xx = sum((x - mean_x) ** 2 for x, _ in points)
    if ss_xx == 0:
        raise ProfileError("cannot fit a slope to constant quantities")
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in points)
    slope = ss_xy / ss_xx
    intercept = mean_y - slope * mean_x
    return intercept, slope


class Calibrator:
    """Times atomic operations on a device and fits cost entries."""

    def __init__(self, env: Runtime) -> None:
        self.env = env
        self.measurements: List[Measurement] = []

    # ------------------------------------------------------------------
    # Raw measurement
    # ------------------------------------------------------------------
    def time_trial(
        self, operation: str, quantity: float, runner: TrialRunner
    ) -> Measurement:
        """Run one trial to completion and record its duration."""
        start_box: List[float] = []
        result: List[Measurement] = []

        def proc(env: Runtime) -> Generator[Any, Any, None]:
            start_box.append(env.now)
            yield from runner(quantity)
            result.append(Measurement(
                operation=operation, quantity=quantity,
                seconds=env.now - start_box[0]))

        self.env.process(proc(self.env))
        self.env.run()
        measurement = result[0]
        self.measurements.append(measurement)
        return measurement

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit_fixed(self, operation: str, runner: TrialRunner,
                  trials: int = 5, description: str = "",
                  ) -> AtomicOperationCost:
        """Calibrate a fixed-cost operation (mean of repeated trials)."""
        samples = [self.time_trial(operation, 0.0, runner).seconds
                   for _ in range(trials)]
        return AtomicOperationCost(
            name=operation,
            fixed_seconds=sum(samples) / len(samples),
            description=description or "calibrated (fixed)",
        )

    def fit_linear(self, operation: str, unit: str,
                   quantities: Sequence[float], runner: TrialRunner,
                   description: str = "") -> AtomicOperationCost:
        """Calibrate a quantity-scaled operation by linear regression."""
        points = [(q, self.time_trial(operation, q, runner).seconds)
                  for q in quantities]
        intercept, slope = _fit_line(points)
        if slope < 0:
            raise ProfileError(
                f"operation {operation!r} timed *faster* at larger "
                f"quantities; the trial runner is probably wrong"
            )
        return AtomicOperationCost(
            name=operation,
            fixed_seconds=max(intercept, 0.0),
            per_unit_seconds=slope,
            unit=unit,
            description=description or "calibrated (linear fit)",
        )


def calibrate_camera(
    env: Runtime, camera: PanTiltZoomCamera
) -> CostTable:
    """Measure a camera's atomic-operation costs from scratch.

    Produces a cost table equivalent to
    :func:`repro.profiles.defaults.camera_cost_table` without looking
    at the calibration constants — only at timed behaviour.
    """
    calibrator = Calibrator(env)

    def reset_head() -> None:
        camera._motion.origin = HeadPosition()
        camera._motion.target = HeadPosition()
        camera._motion.duration = 0.0

    def connect_trial(_quantity: float) -> Generator[Any, Any, None]:
        yield from camera.op_connect()
        camera.release_connection()

    def pan_trial(quantity: float) -> Generator[Any, Any, None]:
        reset_head()
        yield from camera.op_move_head(HeadPosition(pan=quantity))

    def tilt_trial(quantity: float) -> Generator[Any, Any, None]:
        reset_head()
        yield from camera.op_move_head(HeadPosition(tilt=quantity))

    def zoom_trial(quantity: float) -> Generator[Any, Any, None]:
        reset_head()
        yield from camera.op_move_head(HeadPosition(zoom=1.0 + quantity))

    def capture_trial(size: str) -> TrialRunner:
        def runner(_quantity: float) -> Generator[Any, Any, None]:
            reset_head()
            yield from camera._capture(size)
        return runner

    def store_trial(_quantity: float) -> Generator[Any, Any, None]:
        yield from camera.op_store()

    table = CostTable(camera.device_type)
    table.add(calibrator.fit_fixed("connect", connect_trial))
    table.add(calibrator.fit_linear("pan", "degrees",
                                    [10, 40, 80, 120, 160], pan_trial))
    table.add(calibrator.fit_linear("tilt", "degrees",
                                    [5, 15, 30, 60, 85], tilt_trial))
    table.add(calibrator.fit_linear("zoom", "factor",
                                    [0.5, 2, 4, 6, 8], zoom_trial))
    for size in ("small", "medium", "large"):
        table.add(calibrator.fit_fixed(f"capture_{size}",
                                       capture_trial(size)))
    table.add(calibrator.fit_fixed("store", store_trial))
    return table
