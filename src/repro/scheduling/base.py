"""Scheduler interface and schedule representation."""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Union

from repro.errors import SchedulingError
from repro.scheduling.cost_cache import CachingCostModel
from repro.scheduling.problem import Problem

#: The paper's SAP/CAP taxonomy (Section 5.2): Sequential vs Concurrent
#: Assignment and Processing.
CATEGORY_SAP = "SAP"
CATEGORY_CAP = "CAP"


@dataclass
class Schedule:
    """A scheduler's output: ordered per-device request queues.

    ``assignments[device_id]`` is the sequence in which that device
    services its requests. ``scheduling_seconds`` is the measured
    wall-clock computation time of the algorithm — it is part of the
    paper's makespan ("the makespan values ... included both the
    computational cost of the scheduling algorithm ... and the time
    spent on servicing the requests", Section 6.3).
    """

    algorithm: str
    assignments: Dict[str, List[str]]
    scheduling_seconds: float = 0.0
    #: Lazily built request -> device reverse index.
    _device_index: Optional[Dict[str, str]] = field(
        default=None, init=False, repr=False, compare=False)

    def device_of(self, request_id: str) -> str:
        """The device a request was assigned to.

        O(1) via a reverse index built on first use; mutating
        ``assignments`` after the first lookup is unsupported.
        """
        index = self._device_index
        if index is None:
            index = {request_id: device_id
                     for device_id, queue in self.assignments.items()
                     for request_id in queue}
            self._device_index = index
        try:
            return index[request_id]
        except KeyError:
            raise SchedulingError(
                f"request {request_id!r} is not scheduled") from None

    @property
    def scheduled_request_ids(self) -> List[str]:
        """All scheduled request ids, device by device."""
        return [request_id for queue in self.assignments.values()
                for request_id in queue]

    def validate(self, problem: Problem) -> None:
        """Check the schedule is a feasible solution of ``problem``.

        Every request appears exactly once, on one of its candidate
        devices; no foreign requests or devices appear.
        """
        unknown_devices = set(self.assignments) - set(problem.device_ids)
        if unknown_devices:
            raise SchedulingError(
                f"schedule uses unknown devices: {sorted(unknown_devices)}"
            )
        seen: set[str] = set()
        for device_id, queue in self.assignments.items():
            for request_id in queue:
                if request_id in seen:
                    raise SchedulingError(
                        f"request {request_id!r} is scheduled twice"
                    )
                seen.add(request_id)
                request = problem.request(request_id)
                if device_id not in request.candidates:
                    raise SchedulingError(
                        f"request {request_id!r} assigned to non-candidate "
                        f"device {device_id!r}"
                    )
        missing = {r.request_id for r in problem.requests} - seen
        if missing:
            raise SchedulingError(
                f"requests left unscheduled: {sorted(missing)}"
            )


class Scheduler:
    """Base class of all scheduling algorithms.

    Subclasses implement :meth:`_solve`; :meth:`schedule` wraps it with
    wall-clock timing and feasibility validation. Schedulers that use
    randomness draw from ``self.rng`` so runs are reproducible.

    ``cost_cache`` controls the memoizing cost oracle every algorithm
    estimates through:

    * ``"auto"`` (default) — a fresh :class:`CachingCostModel` per
      ``schedule`` call, but only for cost models that declare
      ``cache_by_default`` (the expensive engine oracle); cheap analytic
      models run bare, so the paper's scheduling-time figures are not
      perturbed by cache bookkeeping;
    * ``True`` — force a fresh per-schedule cache regardless of the
      model's hint;
    * a :class:`CachingCostModel` instance — shared/persistent cache,
      for recurring batches of the same problem (steady-state dispatch);
    * ``False``/``None`` — no caching (the ablation baseline).

    Caching is skipped automatically for non-deterministic cost models
    (it would freeze their noise draws) and is observationally
    transparent otherwise: schedules are identical with it on and off.
    ``last_cache_stats`` exposes the oracle's hit/miss counters of the
    most recent run.

    ``vectorize`` opts into the numpy column-kernel fast path (see
    :mod:`repro.scheduling.vector_cost`) for algorithms that support it;
    it requires numpy (the ``repro[fast]`` extra) and is byte-identical
    to the scalar path. Cost models without a column kernel fall back
    to the scalar walk even when it is on.
    """

    #: Short display name, as used in the paper's figures.
    name: str = "scheduler"
    #: SAP or CAP (Section 5.2 taxonomy).
    category: str = CATEGORY_SAP

    def __init__(self, seed: int = 0,
                 cost_cache: Union[bool, str, CachingCostModel] = "auto",
                 *, vectorize: bool = False,
                 ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.cost_cache = cost_cache
        self.vectorize = vectorize
        if vectorize:
            from repro.scheduling.vector_cost import require_numpy
            require_numpy()
        self.last_cache_stats: Optional[Dict[str, float]] = None

    def _solve(self, problem: Problem) -> Dict[str, List[str]]:
        """Produce per-device ordered request queues."""
        raise NotImplementedError

    def _cached_problem(self, problem: Problem) -> Problem:
        """Route the problem's cost oracle through the memo cache.

        Returns ``problem`` unchanged when caching is off, the model is
        non-deterministic, the caller already wrapped it, or the policy
        is ``"auto"`` and the model does not opt in.
        """
        cost_model = problem.cost_model
        if not self.cost_cache:
            return problem
        if isinstance(cost_model, CachingCostModel):
            return problem
        if not getattr(cost_model, "deterministic", True):
            return problem
        if isinstance(self.cost_cache, CachingCostModel):
            if self.cost_cache.inner is not cost_model:
                raise SchedulingError(
                    "shared cost cache wraps a different cost model than "
                    "the problem's; build the cache from problem.cost_model"
                )
            cache = self.cost_cache
        elif self.cost_cache == "auto":
            if not getattr(cost_model, "cache_by_default", False):
                return problem
            cache = CachingCostModel(cost_model)
        else:
            cache = CachingCostModel(cost_model)
        return replace(problem, cost_model=cache)

    def schedule(self, problem: Problem) -> Schedule:
        """Solve ``problem``, returning a validated, timed schedule."""
        problem = self._cached_problem(problem)
        started = time.perf_counter()
        assignments = self._solve(problem)
        elapsed = time.perf_counter() - started
        cost_model = problem.cost_model
        self.last_cache_stats = (cost_model.stats()
                                 if isinstance(cost_model, CachingCostModel)
                                 else None)
        # Normalize: every device has a (possibly empty) queue.
        for device_id in problem.device_ids:
            assignments.setdefault(device_id, [])
        result = Schedule(
            algorithm=self.name,
            assignments=assignments,
            scheduling_seconds=elapsed,
        )
        result.validate(problem)
        return result
