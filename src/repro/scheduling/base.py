"""Scheduler interface and schedule representation."""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import SchedulingError
from repro.scheduling.problem import Problem

#: The paper's SAP/CAP taxonomy (Section 5.2): Sequential vs Concurrent
#: Assignment and Processing.
CATEGORY_SAP = "SAP"
CATEGORY_CAP = "CAP"


@dataclass
class Schedule:
    """A scheduler's output: ordered per-device request queues.

    ``assignments[device_id]`` is the sequence in which that device
    services its requests. ``scheduling_seconds`` is the measured
    wall-clock computation time of the algorithm — it is part of the
    paper's makespan ("the makespan values ... included both the
    computational cost of the scheduling algorithm ... and the time
    spent on servicing the requests", Section 6.3).
    """

    algorithm: str
    assignments: Dict[str, List[str]]
    scheduling_seconds: float = 0.0

    def device_of(self, request_id: str) -> str:
        """The device a request was assigned to."""
        for device_id, queue in self.assignments.items():
            if request_id in queue:
                return device_id
        raise SchedulingError(f"request {request_id!r} is not scheduled")

    @property
    def scheduled_request_ids(self) -> List[str]:
        """All scheduled request ids, device by device."""
        return [request_id for queue in self.assignments.values()
                for request_id in queue]

    def validate(self, problem: Problem) -> None:
        """Check the schedule is a feasible solution of ``problem``.

        Every request appears exactly once, on one of its candidate
        devices; no foreign requests or devices appear.
        """
        unknown_devices = set(self.assignments) - set(problem.device_ids)
        if unknown_devices:
            raise SchedulingError(
                f"schedule uses unknown devices: {sorted(unknown_devices)}"
            )
        seen: set[str] = set()
        for device_id, queue in self.assignments.items():
            for request_id in queue:
                if request_id in seen:
                    raise SchedulingError(
                        f"request {request_id!r} is scheduled twice"
                    )
                seen.add(request_id)
                request = problem.request(request_id)
                if device_id not in request.candidates:
                    raise SchedulingError(
                        f"request {request_id!r} assigned to non-candidate "
                        f"device {device_id!r}"
                    )
        missing = {r.request_id for r in problem.requests} - seen
        if missing:
            raise SchedulingError(
                f"requests left unscheduled: {sorted(missing)}"
            )


class Scheduler:
    """Base class of all scheduling algorithms.

    Subclasses implement :meth:`_solve`; :meth:`schedule` wraps it with
    wall-clock timing and feasibility validation. Schedulers that use
    randomness draw from ``self.rng`` so runs are reproducible.
    """

    #: Short display name, as used in the paper's figures.
    name: str = "scheduler"
    #: SAP or CAP (Section 5.2 taxonomy).
    category: str = CATEGORY_SAP

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def _solve(self, problem: Problem) -> Dict[str, List[str]]:
        """Produce per-device ordered request queues."""
        raise NotImplementedError

    def schedule(self, problem: Problem) -> Schedule:
        """Solve ``problem``, returning a validated, timed schedule."""
        started = time.perf_counter()
        assignments = self._solve(problem)
        elapsed = time.perf_counter() - started
        # Normalize: every device has a (possibly empty) queue.
        for device_id in problem.device_ids:
            assignments.setdefault(device_id, [])
        result = Schedule(
            algorithm=self.name,
            assignments=assignments,
            scheduling_seconds=elapsed,
        )
        result.validate(problem)
        return result
