"""RANDOM: the baseline that assigns requests to candidates at random.

"The RANDOM algorithm was included as the baseline for comparison. It
randomly assigns action requests to available devices for execution."
(Section 6.3) Requests queue FIFO on their randomly chosen device.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scheduling.base import CATEGORY_CAP, Scheduler
from repro.scheduling.problem import Problem


class RandomScheduler(Scheduler):
    """Uniform-random candidate choice, FIFO execution."""

    name = "RANDOM"
    category = CATEGORY_CAP

    def _solve(self, problem: Problem) -> Dict[str, List[str]]:
        assignments: Dict[str, List[str]] = {
            device_id: [] for device_id in problem.device_ids}
        for request in problem.requests:
            device_id = self.rng.choice(request.candidates)
            assignments[device_id].append(request.request_id)
        return assignments
