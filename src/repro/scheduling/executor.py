"""Kernel-based execution of schedules, for cross-validation.

:mod:`repro.scheduling.metrics` replays a schedule arithmetically. This
executor runs the same schedule as concurrent device processes on the
discrete-event kernel, with per-device locks — the execution style the
engine's dispatcher uses. Both paths must agree on the makespan, which
is asserted by property tests (and is a strong check on both the kernel
and the replay logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from repro.errors import SchedulingError
from repro.runtime import Runtime, create_runtime
from repro.scheduling.base import Schedule
from repro.scheduling.cost_cache import CachingCostModel
from repro.scheduling.problem import Problem
from repro.sync.locks import DeviceLockManager, LockToken

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.spans import Observability


@dataclass
class ExecutionResult:
    """Timing record of one simulated schedule execution."""

    makespan: float
    completion_times: Dict[str, float] = field(default_factory=dict)
    device_busy: Dict[str, float] = field(default_factory=dict)


def execute_schedule(problem: Problem, schedule: Schedule,
                     *, use_actual: bool = True,
                     obs: Optional["Observability"] = None,
                     runtime: Optional[Runtime] = None,
                     cost_cache: Optional["CachingCostModel"] = None,
                     ) -> ExecutionResult:
    """Run a schedule on a fresh runtime; returns measured timings.

    ``obs`` receives metrics only (no spans): this executor runs on its
    own local runtime whose clock is unrelated to an engine's, so span
    timestamps would be meaningless there while counts and virtual-time
    durations remain well-defined. ``runtime`` injects a backend (it
    must be idle and at t=0); the default is a fresh virtual one.
    ``cost_cache`` routes cost lookups through a shared memoizing
    oracle (it must wrap this problem's cost model) so recurring
    batches re-execute from warm state — the incremental dispatch path.
    """
    schedule.validate(problem)
    env = runtime if runtime is not None else create_runtime("virtual")
    locks = DeviceLockManager(env)
    cost_model = problem.cost_model
    if cost_cache is not None and not isinstance(cost_model,
                                                 CachingCostModel):
        if cost_cache.inner is not cost_model:
            raise SchedulingError(
                "shared cost cache wraps a different cost model than the "
                "problem's; build the cache from problem.cost_model"
            )
        if getattr(cost_model, "deterministic", True):
            cost_model = cost_cache
    cost = (cost_model.actual if use_actual else cost_model.estimate)
    result = ExecutionResult(makespan=0.0)

    def device_process(device_id: str,
                       queue: List[str]) -> Generator:
        status = problem.cost_model.initial_status(device_id)
        busy = 0.0
        for request_id in queue:
            token = LockToken(request_id)
            yield from locks.acquire(device_id, token)
            try:
                seconds, status = cost(problem.request(request_id),
                                       device_id, status)
                yield env.timeout(seconds)
                busy += seconds
                result.completion_times[request_id] = env.now
            finally:
                locks.release(device_id, token)
        result.device_busy[device_id] = busy

    for device_id, queue in schedule.assignments.items():
        env.process(device_process(device_id, list(queue)))
    env.run()
    scheduled = set(schedule.scheduled_request_ids)
    missing = scheduled - set(result.completion_times)
    if missing:  # pragma: no cover - defensive
        raise SchedulingError(f"execution lost requests: {sorted(missing)}")
    result.makespan = max(result.completion_times.values(), default=0.0)
    if obs is not None:
        obs.inc("scheduling.executions", algorithm=schedule.algorithm)
        obs.inc("scheduling.executed_requests",
                len(result.completion_times),
                algorithm=schedule.algorithm)
        obs.observe("scheduling.executed_makespan_seconds",
                    result.makespan, algorithm=schedule.algorithm)
        for seconds in result.device_busy.values():
            obs.observe("scheduling.device_busy_seconds", seconds,
                        algorithm=schedule.algorithm)
    return result
