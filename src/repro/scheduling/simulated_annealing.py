"""SA: simulated annealing for unrelated parallel machines (SAP baseline).

Modelled on the algorithm of Anagnostopoulos & Rabadi (the paper's [2]),
which handles all three restrictions of the problem: unrelated machines,
sequence-dependent setup (here: execution) times, and machine
eligibility. A solution is a full assignment-plus-sequencing; neighbour
moves relocate one request or swap two; acceptance follows the
Metropolis criterion with geometric cooling.

As in the paper's Figure 5, SA's makespans can be competitive but its
*scheduling time* is orders of magnitude above the greedy heuristics —
that is the point of including it. The implementation evaluates moves
*incrementally*: per-device prefix-completion arrays mean a
relocate/swap re-estimates only the changed suffix of the touched
queues instead of re-walking whole queues (and, before this change,
every queue on infeasible proposals). Incremental evaluation is
bit-identical to full re-evaluation — completions accumulate
left-to-right either way — so schedules are unchanged; only the
wall-clock cost per move shrinks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.errors import SchedulingError
from repro.scheduling.base import CATEGORY_SAP, Scheduler
from repro.scheduling.problem import Problem, SchedRequest


@dataclass(frozen=True)
class SAParameters:
    """Annealing schedule knobs.

    The defaults are tuned so an n=20, m=10 instance costs on the order
    of a second of scheduling time — far above the greedy algorithms,
    reproducing the paper's time-breakdown shape.
    """

    #: Initial temperature as a fraction of the initial makespan.
    initial_temp_factor: float = 0.5
    #: Geometric cooling multiplier per temperature step.
    cooling: float = 0.95
    #: Candidate moves evaluated at each temperature, per request.
    moves_per_temperature_per_request: int = 60
    #: Stop when temperature falls below this fraction of the initial.
    min_temp_fraction: float = 1e-3
    #: Hard cap on total move evaluations (safety valve).
    max_evaluations: int = 2_000_000

    def __post_init__(self) -> None:
        if not 0 < self.cooling < 1:
            raise SchedulingError(f"cooling must be in (0,1), got {self.cooling}")
        if self.initial_temp_factor <= 0:
            raise SchedulingError("initial_temp_factor must be positive")


class IncrementalMakespan:
    """Per-device prefix-completion arrays over one mutable solution.

    For every device queue the evaluator stores, per position, the
    cumulative completion time and the device's physical status after
    servicing that position. A move that first changes position ``i``
    of a queue only needs the suffix from ``i`` re-estimated — the
    stored prefix is, by construction, exactly what a full left-to-right
    walk would have produced, so incremental and full evaluation agree
    bit-for-bit (asserted by the property tests).

    Usage: mutate the solution's queues in place, then call
    :meth:`preview` with the first changed index per touched device;
    :meth:`commit` applies a previewed result, otherwise undo the
    mutation and the stored state remains valid.
    """

    def __init__(self, problem: Problem,
                 solution: Dict[str, List[SchedRequest]]) -> None:
        self._problem = problem
        self._solution = solution
        self._prefix: Dict[str, List[Tuple[float, Any]]] = {
            device_id: self._walk(device_id,
                                  problem.cost_model.initial_workload(
                                      device_id),
                                  problem.cost_model.initial_status(device_id),
                                  solution[device_id])
            for device_id in problem.device_ids}
        self.completions: Dict[str, float] = {
            device_id: (prefix[-1][0] if prefix
                        else problem.cost_model.initial_workload(device_id))
            for device_id, prefix in self._prefix.items()}
        self.makespan = max(self.completions.values())
        self._argmax = max(self.completions, key=self.completions.get)

    def _walk(self, device_id: str, elapsed: float, status: Any,
              queue: List[SchedRequest]) -> List[Tuple[float, Any]]:
        estimate = self._problem.cost_model.estimate
        tail: List[Tuple[float, Any]] = []
        for request in queue:
            seconds, status = estimate(request, device_id, status)
            elapsed += seconds
            tail.append((elapsed, status))
        return tail

    def preview(
        self, touched: Dict[str, int]
    ) -> Tuple[float, Dict[str, Tuple[int, List[Tuple[float, Any]]]]]:
        """Evaluate the mutated queues without committing.

        ``touched`` maps each modified device to the first queue index
        whose occupant changed. Returns the new makespan and the
        recomputed suffixes (for :meth:`commit`).
        """
        tails: Dict[str, Tuple[int, List[Tuple[float, Any]]]] = {}
        new_completions: Dict[str, float] = {}
        for device_id, first_changed in touched.items():
            prefix = self._prefix[device_id]
            first_changed = min(first_changed, len(prefix))
            if first_changed == 0:
                elapsed = self._problem.cost_model.initial_workload(device_id)
                status = self._problem.cost_model.initial_status(device_id)
            else:
                elapsed, status = prefix[first_changed - 1]
            tail = self._walk(device_id, elapsed, status,
                              self._solution[device_id][first_changed:])
            tails[device_id] = (first_changed, tail)
            if tail:
                new_completions[device_id] = tail[-1][0]
            else:
                new_completions[device_id] = elapsed
        if self._argmax in touched:
            # The current maximum may have shrunk: recompute over all
            # devices (rare — only when a move touches the critical
            # device).
            new_makespan = max(
                new_completions.get(device_id, completion)
                for device_id, completion in self.completions.items())
        else:
            new_makespan = max(self.makespan, *new_completions.values())
        return new_makespan, tails

    def commit(self, new_makespan: float,
               tails: Dict[str, Tuple[int, List[Tuple[float, Any]]]]) -> None:
        """Apply a previewed evaluation to the stored prefix arrays."""
        for device_id, (first_changed, tail) in tails.items():
            prefix = self._prefix[device_id]
            prefix[first_changed:] = tail
            self.completions[device_id] = (
                prefix[-1][0] if prefix
                else self._problem.cost_model.initial_workload(device_id))
        self.makespan = new_makespan
        if (self._argmax in tails
                or self.completions[self._argmax] != new_makespan):
            self._argmax = max(self.completions, key=self.completions.get)


class SimulatedAnnealingScheduler(Scheduler):
    """Simulated annealing over assignments and per-device sequences."""

    name = "SA"
    category = CATEGORY_SAP

    def __init__(self, seed: int = 0,
                 parameters: SAParameters | None = None,
                 cost_cache="auto", *, vectorize: bool = False) -> None:
        super().__init__(seed, cost_cache=cost_cache, vectorize=vectorize)
        self.parameters = parameters or SAParameters()
        #: Move-evaluation count of the last run, for reporting.
        self.evaluations = 0

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def _device_completion(self, problem: Problem, device_id: str,
                           queue: List[SchedRequest]) -> float:
        """Full-walk completion time; the incremental evaluator's
        reference implementation (kept for tests and ablations)."""
        status = problem.cost_model.initial_status(device_id)
        elapsed = problem.cost_model.initial_workload(device_id)
        for request in queue:
            seconds, status = problem.cost_model.estimate(
                request, device_id, status)
            elapsed += seconds
        return elapsed

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _initial_solution(
        self, problem: Problem
    ) -> Dict[str, List[SchedRequest]]:
        solution: Dict[str, List[SchedRequest]] = {
            device_id: [] for device_id in problem.device_ids}
        for request in problem.requests:
            solution[self.rng.choice(request.candidates)].append(request)
        for queue in solution.values():
            self.rng.shuffle(queue)
        return solution

    def _solve(self, problem: Problem) -> Dict[str, List[str]]:
        params = self.parameters
        solution = self._initial_solution(problem)
        evaluator = IncrementalMakespan(problem, solution)
        self._evaluator = evaluator
        makespan = evaluator.makespan
        best_solution = {d: list(q) for d, q in solution.items()}
        best_makespan = makespan

        temperature = max(makespan * params.initial_temp_factor, 1e-9)
        floor = temperature * params.min_temp_fraction
        moves_per_temp = max(
            params.moves_per_temperature_per_request * problem.n_requests, 1)
        self.evaluations = 0

        # The annealing budget counts *feasible* candidate moves per
        # temperature; infeasible proposals are penalty-evaluated and
        # redrawn (capped), so heavily restricted instances burn far
        # more wall time per temperature — the paper's Figure 6 effect.
        draw_cap_per_temp = 20 * moves_per_temp
        while temperature > floor and self.evaluations < params.max_evaluations:
            feasible_moves = 0
            draws = 0
            while (feasible_moves < moves_per_temp
                   and draws < draw_cap_per_temp):
                draws += 1
                self.evaluations += 1
                touched = self._propose_move(problem, solution)
                if not touched:
                    continue
                feasible_moves += 1
                new_makespan, tails = evaluator.preview(touched)
                delta = new_makespan - makespan
                if delta <= 0 or (self.rng.random()
                                  < math.exp(-delta / temperature)):
                    evaluator.commit(new_makespan, tails)
                    makespan = new_makespan
                    if makespan < best_makespan:
                        best_makespan = makespan
                        best_solution = {d: list(q)
                                         for d, q in solution.items()}
                else:
                    self._undo_move(solution)
                if self.evaluations >= params.max_evaluations:
                    break
            temperature *= params.cooling

        return {device_id: [r.request_id for r in queue]
                for device_id, queue in best_solution.items()}

    # ------------------------------------------------------------------
    # Moves (with single-level undo)
    # ------------------------------------------------------------------
    def _propose_move(
        self, problem: Problem, solution: Dict[str, List[SchedRequest]]
    ) -> Dict[str, int]:
        """Mutate ``solution`` in place; returns the touched devices,
        each mapped to the first queue index that changed.

        Records enough state for :meth:`_undo_move`. Returns an empty
        mapping when the sampled move is infeasible.
        """
        if self.rng.random() < 0.5:
            return self._move_relocate(problem, solution)
        return self._move_swap(problem, solution)

    def _penalty_evaluation(
        self, problem: Problem, solution: Dict[str, List[SchedRequest]],
        device_ids: List[str],
    ) -> float:
        """Evaluate an eligibility-violating proposal, then reject it.

        Anagnostopoulos & Rabadi's SA searches the unrestricted move
        space and handles machine eligibility by penalizing violating
        solutions in the objective. The queues themselves are unchanged
        by a rejected proposal, so the global objective is the stored
        makespan plus the (infinite, here) penalty term — an O(m) read
        of the prefix-completion arrays rather than a re-walk of every
        queue. Under skewed candidate sets a large fraction of
        proposals is infeasible and burns draw budget, which is what
        keeps SA's scheduling time dominant in the paper's Figure 6.
        """
        return max(self._evaluator.completions.values())

    def _move_relocate(
        self, problem: Problem, solution: Dict[str, List[SchedRequest]]
    ) -> Dict[str, int]:
        request = self.rng.choice(problem.requests)
        source = next(d for d, q in solution.items() if request in q)
        # Unrestricted proposal; eligibility enforced via the penalty.
        target = self.rng.choice(problem.device_ids)
        if target not in request.candidates:
            self._penalty_evaluation(problem, solution, [source, target])
            return {}
        source_queue = solution[source]
        source_index = source_queue.index(request)
        source_queue.pop(source_index)
        target_index = self.rng.randint(0, len(solution[target]))
        solution[target].insert(target_index, request)
        self._undo = ("relocate", request, source, source_index, target)
        if source == target:
            return {source: min(source_index, target_index)}
        return {source: source_index, target: target_index}

    def _move_swap(
        self, problem: Problem, solution: Dict[str, List[SchedRequest]]
    ) -> Dict[str, int]:
        if problem.n_requests < 2:
            return {}
        first, second = self.rng.sample(list(problem.requests), 2)
        device_first = next(d for d, q in solution.items() if first in q)
        device_second = next(d for d, q in solution.items() if second in q)
        # Eligibility: each must be allowed on the other's device;
        # violating swaps are penalty-evaluated and rejected.
        if (device_second not in first.candidates
                or device_first not in second.candidates):
            self._penalty_evaluation(problem, solution,
                                     [device_first, device_second])
            return {}
        queue_first, queue_second = solution[device_first], solution[device_second]
        i, j = queue_first.index(first), queue_second.index(second)
        queue_first[i], queue_second[j] = second, first
        self._undo = ("swap", first, second, device_first, i,
                      device_second, j)
        if device_first == device_second:
            return {device_first: min(i, j)}
        return {device_first: i, device_second: j}

    def _undo_move(self, solution: Dict[str, List[SchedRequest]]) -> None:
        undo = self._undo
        if undo[0] == "relocate":
            _, request, source, source_index, target = undo
            solution[target].remove(request)
            solution[source].insert(source_index, request)
        else:
            _, first, second, device_first, i, device_second, j = undo
            solution[device_first][i] = first
            solution[device_second][j] = second
