"""SA: simulated annealing for unrelated parallel machines (SAP baseline).

Modelled on the algorithm of Anagnostopoulos & Rabadi (the paper's [2]),
which handles all three restrictions of the problem: unrelated machines,
sequence-dependent setup (here: execution) times, and machine
eligibility. A solution is a full assignment-plus-sequencing; neighbour
moves relocate one request or swap two; acceptance follows the
Metropolis criterion with geometric cooling.

As in the paper's Figure 5, SA's makespans can be competitive but its
*scheduling time* is orders of magnitude above the greedy heuristics —
that is the point of including it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import SchedulingError
from repro.scheduling.base import CATEGORY_SAP, Scheduler
from repro.scheduling.problem import Problem, SchedRequest


@dataclass(frozen=True)
class SAParameters:
    """Annealing schedule knobs.

    The defaults are tuned so an n=20, m=10 instance costs on the order
    of a second of scheduling time — far above the greedy algorithms,
    reproducing the paper's time-breakdown shape.
    """

    #: Initial temperature as a fraction of the initial makespan.
    initial_temp_factor: float = 0.5
    #: Geometric cooling multiplier per temperature step.
    cooling: float = 0.95
    #: Candidate moves evaluated at each temperature, per request.
    moves_per_temperature_per_request: int = 60
    #: Stop when temperature falls below this fraction of the initial.
    min_temp_fraction: float = 1e-3
    #: Hard cap on total move evaluations (safety valve).
    max_evaluations: int = 2_000_000

    def __post_init__(self) -> None:
        if not 0 < self.cooling < 1:
            raise SchedulingError(f"cooling must be in (0,1), got {self.cooling}")
        if self.initial_temp_factor <= 0:
            raise SchedulingError("initial_temp_factor must be positive")


class SimulatedAnnealingScheduler(Scheduler):
    """Simulated annealing over assignments and per-device sequences."""

    name = "SA"
    category = CATEGORY_SAP

    def __init__(self, seed: int = 0,
                 parameters: SAParameters | None = None) -> None:
        super().__init__(seed)
        self.parameters = parameters or SAParameters()
        #: Move-evaluation count of the last run, for reporting.
        self.evaluations = 0

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def _device_completion(self, problem: Problem, device_id: str,
                           queue: List[SchedRequest]) -> float:
        status = problem.cost_model.initial_status(device_id)
        elapsed = 0.0
        for request in queue:
            seconds, status = problem.cost_model.estimate(
                request, device_id, status)
            elapsed += seconds
        return elapsed

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _initial_solution(
        self, problem: Problem
    ) -> Dict[str, List[SchedRequest]]:
        solution: Dict[str, List[SchedRequest]] = {
            device_id: [] for device_id in problem.device_ids}
        for request in problem.requests:
            solution[self.rng.choice(request.candidates)].append(request)
        for queue in solution.values():
            self.rng.shuffle(queue)
        return solution

    def _solve(self, problem: Problem) -> Dict[str, List[str]]:
        params = self.parameters
        solution = self._initial_solution(problem)
        completions = {
            device_id: self._device_completion(problem, device_id, queue)
            for device_id, queue in solution.items()}
        makespan = max(completions.values())
        best_solution = {d: list(q) for d, q in solution.items()}
        best_makespan = makespan

        temperature = max(makespan * params.initial_temp_factor, 1e-9)
        floor = temperature * params.min_temp_fraction
        moves_per_temp = max(
            params.moves_per_temperature_per_request * problem.n_requests, 1)
        self.evaluations = 0

        # The annealing budget counts *feasible* candidate moves per
        # temperature; infeasible proposals are penalty-evaluated and
        # redrawn (capped), so heavily restricted instances burn far
        # more wall time per temperature — the paper's Figure 6 effect.
        draw_cap_per_temp = 20 * moves_per_temp
        while temperature > floor and self.evaluations < params.max_evaluations:
            feasible_moves = 0
            draws = 0
            while (feasible_moves < moves_per_temp
                   and draws < draw_cap_per_temp):
                draws += 1
                self.evaluations += 1
                touched = self._propose_move(problem, solution)
                if not touched:
                    continue
                feasible_moves += 1
                new_completions = dict(completions)
                for device_id in touched:
                    new_completions[device_id] = self._device_completion(
                        problem, device_id, solution[device_id])
                new_makespan = max(new_completions.values())
                delta = new_makespan - makespan
                if delta <= 0 or (self.rng.random()
                                  < math.exp(-delta / temperature)):
                    completions = new_completions
                    makespan = new_makespan
                    if makespan < best_makespan:
                        best_makespan = makespan
                        best_solution = {d: list(q)
                                         for d, q in solution.items()}
                else:
                    self._undo_move(solution)
                if self.evaluations >= params.max_evaluations:
                    break
            temperature *= params.cooling

        return {device_id: [r.request_id for r in queue]
                for device_id, queue in best_solution.items()}

    # ------------------------------------------------------------------
    # Moves (with single-level undo)
    # ------------------------------------------------------------------
    def _propose_move(
        self, problem: Problem, solution: Dict[str, List[SchedRequest]]
    ) -> List[str]:
        """Mutate ``solution`` in place; returns the touched devices.

        Records enough state for :meth:`_undo_move`. Returns an empty
        list when the sampled move is a no-op.
        """
        if self.rng.random() < 0.5:
            return self._move_relocate(problem, solution)
        return self._move_swap(problem, solution)

    def _penalty_evaluation(
        self, problem: Problem, solution: Dict[str, List[SchedRequest]],
        device_ids: List[str],
    ) -> None:
        """Evaluate an eligibility-violating proposal, then reject it.

        Anagnostopoulos & Rabadi's SA searches the unrestricted move
        space and handles machine eligibility by penalizing violating
        solutions in the objective — so every infeasible proposal still
        costs a *full* objective evaluation (the penalty term is global,
        so no incremental shortcut applies). Under skewed candidate sets
        a large fraction of proposals is infeasible, which is what blows
        up SA's scheduling time in the paper's Figure 6.
        """
        for device_id in problem.device_ids:
            self._device_completion(problem, device_id, solution[device_id])

    def _move_relocate(
        self, problem: Problem, solution: Dict[str, List[SchedRequest]]
    ) -> List[str]:
        request = self.rng.choice(problem.requests)
        source = next(d for d, q in solution.items() if request in q)
        # Unrestricted proposal; eligibility enforced via the penalty.
        target = self.rng.choice(problem.device_ids)
        if target not in request.candidates:
            self._penalty_evaluation(problem, solution, [source, target])
            return []
        source_queue = solution[source]
        source_index = source_queue.index(request)
        source_queue.pop(source_index)
        target_index = self.rng.randint(0, len(solution[target]))
        solution[target].insert(target_index, request)
        self._undo = ("relocate", request, source, source_index, target)
        return [source, target] if source != target else [source]

    def _move_swap(
        self, problem: Problem, solution: Dict[str, List[SchedRequest]]
    ) -> List[str]:
        if problem.n_requests < 2:
            return []
        first, second = self.rng.sample(list(problem.requests), 2)
        device_first = next(d for d, q in solution.items() if first in q)
        device_second = next(d for d, q in solution.items() if second in q)
        # Eligibility: each must be allowed on the other's device;
        # violating swaps are penalty-evaluated and rejected.
        if (device_second not in first.candidates
                or device_first not in second.candidates):
            self._penalty_evaluation(problem, solution,
                                     [device_first, device_second])
            return []
        queue_first, queue_second = solution[device_first], solution[device_second]
        i, j = queue_first.index(first), queue_second.index(second)
        queue_first[i], queue_second[j] = second, first
        self._undo = ("swap", first, second, device_first, i,
                      device_second, j)
        return ([device_first] if device_first == device_second
                else [device_first, device_second])

    def _undo_move(self, solution: Dict[str, List[SchedRequest]]) -> None:
        undo = self._undo
        if undo[0] == "relocate":
            _, request, source, source_index, target = undo
            solution[target].remove(request)
            solution[source].insert(source_index, request)
        else:
            _, first, second, device_first, i, device_second, j = undo
            solution[device_first][i] = first
            solution[device_second][j] = second
