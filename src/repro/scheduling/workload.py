"""Synthetic action workloads for the scheduling study (Section 6.3).

The paper drove its scheduling experiments through the calibrated
camera simulator: requests are ``photo()`` executions whose cost is the
camera's fixed photo time plus the head movement from the camera's
current pose — "randomly selected from the interval [0.36, 5.36], which
is the range of the execution time (in seconds) of a photo() action on
an AXIS 2130 camera".

Two workload families:

* **uniform** — every request may run on every camera (Figure 4);
* **skewed** — half of the requests run anywhere, the other half only
  on a random subset of size ``skewness * m`` (Figure 6): "We define
  skewness to be the size of the subset divided by the total number of
  cameras."
"""

from __future__ import annotations

import random
from typing import Any, Mapping, Optional, Tuple

from repro.errors import SchedulingError
from repro.devices.camera import CameraCalibration, HeadPosition
from repro.scheduling.problem import (
    Problem,
    SchedRequest,
    SchedulingCostModel,
    StaticCostModel,
)


class _CameraColumnKernel:
    """Vectorized camera-cost columns (see ``scheduling/vector_cost``).

    Packs every request's target pose into float64 arrays once; a column
    is then ``fixed + max(|Δpan|/v_pan, |Δtilt|/v_tilt, |Δzoom|/v_zoom)``
    evaluated element-wise in the same fold order as the scalar
    :meth:`HeadPosition.movement_seconds`, so each element is bit-equal
    to the scalar estimate.
    """

    def __init__(self, model: "CameraStatusCostModel",
                 problem: Problem) -> None:
        import numpy
        self._requests = problem.requests
        self._fixed = model.calibration.fixed_photo_seconds()
        self._pan_speed = model.calibration.pan_speed
        self._tilt_speed = model.calibration.tilt_speed
        self._zoom_speed = model.calibration.zoom_speed
        self._pan = numpy.array([r.payload.pan for r in problem.requests],
                                dtype=numpy.float64)
        self._tilt = numpy.array([r.payload.tilt for r in problem.requests],
                                 dtype=numpy.float64)
        self._zoom = numpy.array([r.payload.zoom for r in problem.requests],
                                 dtype=numpy.float64)

    def column(self, device_id: str, status: HeadPosition,
               indexes: Optional[Any] = None) -> Any:
        import numpy
        pan, tilt, zoom = self._pan, self._tilt, self._zoom
        if indexes is not None:
            pan, tilt, zoom = pan[indexes], tilt[indexes], zoom[indexes]
        movement = numpy.maximum(
            numpy.maximum(numpy.abs(pan - status.pan) / self._pan_speed,
                          numpy.abs(tilt - status.tilt) / self._tilt_speed),
            numpy.abs(zoom - status.zoom) / self._zoom_speed)
        return self._fixed + movement

    def post_status(self, index: int, device_id: str) -> HeadPosition:
        return self._requests[index].payload


class CameraStatusCostModel(SchedulingCostModel):
    """Sequence-dependent photo costs on a fleet of simulated cameras.

    Status is a :class:`HeadPosition`; a request's payload is the target
    head position. Cost = fixed photo time + slowest-axis movement time;
    post-status = the target pose (servicing a photo leaves the head
    aimed at its target — the paper's status-change effect).
    """

    def __init__(
        self,
        initial_heads: Mapping[str, HeadPosition],
        calibration: Optional[CameraCalibration] = None,
        *,
        estimate_noise: float = 0.0,
        noise_seed: int = 0,
    ) -> None:
        self._initial_heads = dict(initial_heads)
        self.calibration = calibration or CameraCalibration()
        if estimate_noise < 0:
            raise SchedulingError("estimate_noise must be non-negative")
        #: Relative noise applied to *estimates* only; actual costs stay
        #: exact. Used by the cost-model-accuracy ablation.
        self.estimate_noise = estimate_noise
        self._noise_rng = random.Random(noise_seed)

    @property
    def deterministic(self) -> bool:
        """Noisy estimators must not be memoized (each call re-draws)."""
        return self.estimate_noise == 0

    def initial_status(self, device_id: str) -> HeadPosition:
        try:
            return self._initial_heads[device_id]
        except KeyError:
            raise SchedulingError(
                f"no initial head pose for device {device_id!r}"
            ) from None

    def _true_cost(
        self, request: SchedRequest, status: HeadPosition
    ) -> Tuple[float, HeadPosition]:
        target: HeadPosition = request.payload
        movement = status.movement_seconds(target, self.calibration)
        return self.calibration.fixed_photo_seconds() + movement, target

    def estimate(
        self, request: SchedRequest, device_id: str, status: HeadPosition
    ) -> Tuple[float, HeadPosition]:
        seconds, post = self._true_cost(request, status)
        if self.estimate_noise:
            seconds *= 1.0 + self._noise_rng.uniform(
                -self.estimate_noise, self.estimate_noise)
        return seconds, post

    def actual(
        self, request: SchedRequest, device_id: str, status: HeadPosition
    ) -> Tuple[float, HeadPosition]:
        return self._true_cost(request, status)

    def make_column_kernel(self, problem: Problem
                           ) -> Optional[_CameraColumnKernel]:
        """Vectorized column oracle; ``None`` keeps the scalar path.

        Declined for noisy estimators (each scalar call re-draws noise,
        which a batch evaluation cannot reproduce).
        """
        if self.estimate_noise:
            return None
        from repro.scheduling.vector_cost import HAVE_NUMPY
        if not HAVE_NUMPY:
            return None
        return _CameraColumnKernel(self, problem)


def _random_head(rng: random.Random,
                 calibration: CameraCalibration) -> HeadPosition:
    return HeadPosition(
        pan=rng.uniform(calibration.pan_min, calibration.pan_max),
        tilt=rng.uniform(calibration.tilt_min, calibration.tilt_max),
        zoom=rng.uniform(calibration.zoom_min, calibration.zoom_max),
    )


def _camera_ids(n_devices: int) -> Tuple[str, ...]:
    return tuple(f"cam{i + 1}" for i in range(n_devices))


def uniform_camera_workload(
    n_requests: int,
    n_devices: int,
    seed: int = 0,
    *,
    calibration: Optional[CameraCalibration] = None,
    estimate_noise: float = 0.0,
) -> Problem:
    """A Figure-4-style uniform workload: all cameras candidates."""
    if n_requests < 1 or n_devices < 1:
        raise SchedulingError("need at least one request and one device")
    calibration = calibration or CameraCalibration()
    rng = random.Random(seed)
    device_ids = _camera_ids(n_devices)
    initial_heads = {device_id: _random_head(rng, calibration)
                     for device_id in device_ids}
    requests = tuple(
        SchedRequest(
            request_id=f"req{i + 1}",
            candidates=device_ids,
            payload=_random_head(rng, calibration),
        )
        for i in range(n_requests)
    )
    return Problem(
        requests=requests,
        device_ids=device_ids,
        cost_model=CameraStatusCostModel(
            initial_heads, calibration,
            estimate_noise=estimate_noise, noise_seed=seed),
        label=f"uniform n={n_requests} m={n_devices} seed={seed}",
    )


def skewed_camera_workload(
    n_requests: int,
    n_devices: int,
    skewness: float,
    seed: int = 0,
    *,
    calibration: Optional[CameraCalibration] = None,
) -> Problem:
    """A Figure-6-style skewed workload.

    Half of the requests keep all devices as candidates; each request of
    the other half is restricted to a random subset of size
    ``round(skewness * n_devices)`` (at least 1).
    """
    if not 0 < skewness <= 1:
        raise SchedulingError(f"skewness must be in (0, 1], got {skewness}")
    calibration = calibration or CameraCalibration()
    rng = random.Random(seed)
    device_ids = _camera_ids(n_devices)
    initial_heads = {device_id: _random_head(rng, calibration)
                     for device_id in device_ids}
    subset_size = max(1, round(skewness * n_devices))
    requests = []
    for i in range(n_requests):
        if i < n_requests // 2:
            candidates = device_ids
        else:
            candidates = tuple(rng.sample(device_ids, subset_size))
        requests.append(SchedRequest(
            request_id=f"req{i + 1}",
            candidates=candidates,
            payload=_random_head(rng, calibration),
        ))
    return Problem(
        requests=tuple(requests),
        device_ids=device_ids,
        cost_model=CameraStatusCostModel(initial_heads, calibration),
        label=(f"skewed n={n_requests} m={n_devices} "
               f"skew={skewness} seed={seed}"),
    )


def matrix_workload(
    costs: Mapping[Tuple[str, str], float],
    candidates: Mapping[str, Tuple[str, ...]],
    device_ids: Tuple[str, ...],
    label: str = "matrix",
) -> Problem:
    """A sequence-independent instance from an explicit cost matrix.

    For unit tests and textbook scheduling-theory comparisons.
    """
    requests = tuple(
        SchedRequest(request_id=request_id, candidates=request_candidates)
        for request_id, request_candidates in candidates.items()
    )
    return Problem(
        requests=requests,
        device_ids=device_ids,
        cost_model=StaticCostModel(costs),
        label=label,
    )
