"""Action workload scheduling (paper Section 5).

The Action Workload Scheduling Problem (Figure 2): given n action
requests, m devices and per-request candidate device sets, assign every
request to a candidate so that the makespan is minimized — with
*sequence-dependent action execution time* (a device's physical status
changes after every action) and machine eligibility restrictions.

Five algorithms, as evaluated in Section 6.3:

* :class:`LerfaSrfeScheduler` — Algorithm 1 (SAP), proposed by the paper
* :class:`SrfaeScheduler` — Algorithm 2 (CAP), proposed by the paper
* :class:`ListScheduler` — classic List Scheduling greedy (CAP baseline)
* :class:`SimulatedAnnealingScheduler` — SA baseline (SAP)
* :class:`RandomScheduler` — the RANDOM baseline

plus :func:`optimal_schedule`, an exact solver for small instances (the
stand-in for the paper's optimal MIP discussion).
"""

from repro.scheduling.base import Schedule, Scheduler
from repro.scheduling.cost_cache import CachingCostModel, freeze_status
from repro.scheduling.incremental import (
    IncrementalScheduler,
    IncrementalStats,
    default_fingerprint,
)
from repro.scheduling.lerfa_srfe import LerfaSrfeScheduler
from repro.scheduling.list_scheduling import ListScheduler
from repro.scheduling.executor import ExecutionResult, execute_schedule
from repro.scheduling.metrics import (
    MakespanBreakdown,
    breakdown,
    device_completion_times,
    device_utilization,
    request_completion_times,
    service_makespan,
    total_makespan,
    workload_balance,
)
from repro.scheduling.optimal import optimal_schedule
from repro.scheduling.problem import (
    Problem,
    SchedRequest,
    SchedulingCostModel,
    StaticCostModel,
)
from repro.scheduling.random_sched import RandomScheduler
from repro.scheduling.simulated_annealing import (
    SAParameters,
    SimulatedAnnealingScheduler,
)
from repro.scheduling.srfae import SrfaeScheduler
from repro.scheduling.vector_cost import (
    HAVE_NUMPY,
    BlockModelKernel,
    ColumnKernel,
    build_kernel,
    require_numpy,
)
from repro.scheduling.workload import (
    CameraStatusCostModel,
    matrix_workload,
    skewed_camera_workload,
    uniform_camera_workload,
)

__all__ = [
    "BlockModelKernel",
    "CachingCostModel",
    "CameraStatusCostModel",
    "ColumnKernel",
    "ExecutionResult",
    "HAVE_NUMPY",
    "IncrementalScheduler",
    "IncrementalStats",
    "LerfaSrfeScheduler",
    "ListScheduler",
    "MakespanBreakdown",
    "Problem",
    "RandomScheduler",
    "SAParameters",
    "SchedRequest",
    "Schedule",
    "Scheduler",
    "SchedulingCostModel",
    "SimulatedAnnealingScheduler",
    "SrfaeScheduler",
    "StaticCostModel",
    "breakdown",
    "build_kernel",
    "default_fingerprint",
    "device_completion_times",
    "device_utilization",
    "execute_schedule",
    "freeze_status",
    "require_numpy",
    "matrix_workload",
    "optimal_schedule",
    "request_completion_times",
    "service_makespan",
    "skewed_camera_workload",
    "total_makespan",
    "uniform_camera_workload",
    "workload_balance",
]
