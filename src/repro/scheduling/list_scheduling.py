"""LS: the classic List Scheduling greedy (CAP baseline).

"Whenever a machine becomes idle, the LS algorithm schedules any
eligible job that has not yet been scheduled on the machine."
(Section 5.2, after Pinedo.) We simulate machine idle times directly:
devices pull the first still-unscheduled eligible request (list order)
the moment they free up; the earliest-free device is served first.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from repro.scheduling.base import CATEGORY_CAP, Scheduler
from repro.scheduling.problem import Problem


class ListScheduler(Scheduler):
    """List Scheduling: idle machine takes any eligible unscheduled job."""

    name = "LS"
    category = CATEGORY_CAP

    def _solve(self, problem: Problem) -> Dict[str, List[str]]:
        statuses = problem.initial_statuses()
        assignments: Dict[str, List[str]] = {
            device_id: [] for device_id in problem.device_ids}
        remaining = list(problem.requests)
        # (free_time, tiebreak index, device): devices idle from their
        # initial workload (0 on a cold start).
        initial_workload = problem.cost_model.initial_workload
        idle_heap = [(initial_workload(device_id), index, device_id)
                     for index, device_id in enumerate(problem.device_ids)]
        heapq.heapify(idle_heap)

        while remaining and idle_heap:
            free_time, index, device_id = heapq.heappop(idle_heap)
            eligible_index = next(
                (i for i, request in enumerate(remaining)
                 if device_id in request.candidates), None)
            if eligible_index is None:
                # Nothing this device may ever service remains: retire
                # it. (Requests only shrink, so this is final.)
                continue
            request = remaining.pop(eligible_index)
            seconds, post_status = problem.cost_model.actual(
                request, device_id, statuses[device_id])
            statuses[device_id] = post_status
            assignments[device_id].append(request.request_id)
            heapq.heappush(idle_heap,
                           (free_time + seconds, index, device_id))
        return assignments
