"""AVL tree: the balanced binary search tree of Algorithm 2 (SRFAE).

Algorithm 2 inserts every (request, device) pair "as a node in a
balanced binary search tree T, the key of the node is the weight of
this request-device pair", then repeatedly extracts the minimum, deletes
nodes and updates keys. This AVL implementation provides exactly those
operations with O(log n) rebalancing.

Keys must be unique and totally ordered; callers append a serial number
to float weights, e.g. ``(cost, serial)``.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import SchedulingError


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.height = 1


def _height(node: Optional[_Node]) -> int:
    return node.height if node is not None else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _Node) -> _Node:
    _update(node)
    balance = _balance_factor(node)
    if balance > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLTree:
    """A self-balancing BST with insert, remove-by-key and pop-min."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert a node; duplicate keys are rejected."""
        self._root = self._insert(self._root, key, value)
        self._size += 1

    def _insert(self, node: Optional[_Node], key: Any, value: Any) -> _Node:
        if node is None:
            return _Node(key, value)
        if key < node.key:
            node.left = self._insert(node.left, key, value)
        elif key > node.key:
            node.right = self._insert(node.right, key, value)
        else:
            raise SchedulingError(f"duplicate AVL key {key!r}")
        return _rebalance(node)

    def remove(self, key: Any) -> Any:
        """Remove the node with ``key``, returning its value."""
        removed: List[Any] = []
        self._root = self._remove(self._root, key, removed)
        if not removed:
            raise SchedulingError(f"AVL key {key!r} not found")
        self._size -= 1
        return removed[0]

    def _remove(self, node: Optional[_Node], key: Any,
                removed: List[Any]) -> Optional[_Node]:
        if node is None:
            return None
        if key < node.key:
            node.left = self._remove(node.left, key, removed)
        elif key > node.key:
            node.right = self._remove(node.right, key, removed)
        else:
            removed.append(node.value)
            if node.left is None:
                return node.right
            if node.right is None:
                return node.left
            # Replace with in-order successor, then delete it below.
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key, node.value = successor.key, successor.value
            node.right = self._remove(node.right, successor.key, [])
        return _rebalance(node)

    def pop_min(self) -> Tuple[Any, Any]:
        """Extract the node with the least key: ``(key, value)``."""
        if self._root is None:
            raise SchedulingError("pop_min from an empty AVL tree")
        node = self._root
        while node.left is not None:
            node = node.left
        key, value = node.key, node.value
        self.remove(key)
        return key, value

    def update_key(self, old_key: Any, new_key: Any) -> None:
        """Re-key one node (Algorithm 2's key-update step)."""
        if old_key == new_key:
            return
        value = self.remove(old_key)
        self.insert(new_key, value)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def min_key(self) -> Any:
        """The least key without removing it."""
        if self._root is None:
            raise SchedulingError("min of an empty AVL tree")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key

    def __contains__(self, key: Any) -> bool:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif key > node.key:
                node = node.right
            else:
                return True
        return False

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """In-order (sorted by key) traversal."""
        yield from self._items(self._root)

    def _items(self, node: Optional[_Node]) -> Iterator[Tuple[Any, Any]]:
        if node is None:
            return
        yield from self._items(node.left)
        yield (node.key, node.value)
        yield from self._items(node.right)

    # ------------------------------------------------------------------
    # Invariant checks (for tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert BST ordering, height bookkeeping and AVL balance."""
        keys = [key for key, _ in self.items()]
        if keys != sorted(keys):
            raise SchedulingError("AVL in-order traversal is not sorted")
        if len(keys) != self._size:
            raise SchedulingError("AVL size bookkeeping is wrong")
        self._check_node(self._root)

    def _check_node(self, node: Optional[_Node]) -> int:
        if node is None:
            return 0
        left = self._check_node(node.left)
        right = self._check_node(node.right)
        if node.height != 1 + max(left, right):
            raise SchedulingError("AVL height bookkeeping is wrong")
        if abs(left - right) > 1:
            raise SchedulingError("AVL balance violated")
        return node.height
