"""Makespan accounting: service time, scheduling time, completion times.

"The completion time is defined as the interval between the time when
these requests appear in the shared action operator and the time when
all of them have been serviced." (Section 5.1) Service times are
replayed through the cost model with status chaining, so sequence-
dependent costs are honoured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.scheduling.base import Schedule
from repro.scheduling.problem import Problem


def device_completion_times(
    problem: Problem, schedule: Schedule, *, use_actual: bool = True
) -> Dict[str, float]:
    """Seconds each device spends servicing its queue, status-chained."""
    cost = (problem.cost_model.actual if use_actual
            else problem.cost_model.estimate)
    completions: Dict[str, float] = {}
    for device_id in problem.device_ids:
        status = problem.cost_model.initial_status(device_id)
        elapsed = 0.0
        for request_id in schedule.assignments.get(device_id, []):
            seconds, status = cost(problem.request(request_id),
                                   device_id, status)
            elapsed += seconds
        completions[device_id] = elapsed
    return completions


def request_completion_times(
    problem: Problem, schedule: Schedule, *, use_actual: bool = True
) -> Dict[str, float]:
    """Per-request completion times (from batch start, service only)."""
    cost = (problem.cost_model.actual if use_actual
            else problem.cost_model.estimate)
    completions: Dict[str, float] = {}
    for device_id in problem.device_ids:
        status = problem.cost_model.initial_status(device_id)
        elapsed = 0.0
        for request_id in schedule.assignments.get(device_id, []):
            seconds, status = cost(problem.request(request_id),
                                   device_id, status)
            elapsed += seconds
            completions[request_id] = elapsed
    return completions


def service_makespan(
    problem: Problem, schedule: Schedule, *, use_actual: bool = True
) -> float:
    """The service-time component of the makespan."""
    completions = device_completion_times(problem, schedule,
                                          use_actual=use_actual)
    return max(completions.values(), default=0.0)


def total_makespan(
    problem: Problem, schedule: Schedule, *, use_actual: bool = True
) -> float:
    """Scheduling computation plus service time — the paper's makespan."""
    return schedule.scheduling_seconds + service_makespan(
        problem, schedule, use_actual=use_actual)


@dataclass(frozen=True)
class MakespanBreakdown:
    """The Figure 5 decomposition of one schedule's makespan."""

    algorithm: str
    scheduling_seconds: float
    service_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.scheduling_seconds + self.service_seconds


def breakdown(problem: Problem, schedule: Schedule) -> MakespanBreakdown:
    """Makespan broken into scheduling vs service time (Figure 5)."""
    return MakespanBreakdown(
        algorithm=schedule.algorithm,
        scheduling_seconds=schedule.scheduling_seconds,
        service_seconds=service_makespan(problem, schedule),
    )


def workload_balance(problem: Problem, schedule: Schedule) -> float:
    """Coefficient of variation of per-device completion times.

    The paper's scheduling objective exists "to balance the action
    workload on all available devices and improve device utilization"
    (Section 5.1); this measures how balanced a schedule actually is —
    0 is perfectly even, larger is lumpier.
    """
    completions = list(device_completion_times(problem, schedule).values())
    if not completions:
        return 0.0
    mean = sum(completions) / len(completions)
    if mean == 0:
        return 0.0
    variance = sum((c - mean) ** 2 for c in completions) / len(completions)
    return (variance ** 0.5) / mean


def device_utilization(problem: Problem, schedule: Schedule) -> Dict[str, float]:
    """Fraction of the service makespan each device spends busy."""
    completions = device_completion_times(problem, schedule)
    horizon = max(completions.values(), default=0.0)
    if horizon == 0:
        return {device_id: 0.0 for device_id in completions}
    return {device_id: busy / horizon
            for device_id, busy in completions.items()}
