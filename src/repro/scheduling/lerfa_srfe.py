"""Algorithm 1: LERFA + SRFE (SAP, proposed by the paper).

Two greedy sub-components (Figure 3, Algorithm 1):

* **LERFA** (Least Eligible Request First Assignment) assigns requests
  in increasing order of candidate-set size; each request goes to the
  candidate device whose projected total workload ``W_k + C_rk`` is
  least. Ties in eligibility are broken in random order, per the paper.
* **SRFE** (Shortest Request First Execution) orders each device's
  assigned requests by repeatedly servicing the request with the least
  estimated cost *given the device's current physical status*, updating
  the status after each servicing.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import SchedulingError
from repro.scheduling.base import CATEGORY_SAP, Scheduler
from repro.scheduling.problem import Problem, SchedRequest
from repro.scheduling.vector_cost import ColumnKernel, build_kernel


class LerfaSrfeScheduler(Scheduler):
    """The paper's Algorithm 1."""

    name = "LERFA+SRFE"
    category = CATEGORY_SAP

    def _solve(self, problem: Problem) -> Dict[str, List[str]]:
        if self.vectorize:
            kernel = build_kernel(problem)
            if kernel is not None:
                assigned = self._lerfa_assign_vectorized(problem, kernel)
                return {
                    device_id: self._srfe_order_vectorized(
                        problem, kernel, device_id, requests)
                    for device_id, requests in assigned.items()
                }
        assigned = self._lerfa_assign(problem)
        return {
            device_id: self._srfe_order(problem, device_id, requests)
            for device_id, requests in assigned.items()
        }

    # ------------------------------------------------------------------
    # Algorithm 1.1: Least Eligible Request First Assignment
    # ------------------------------------------------------------------
    def _lerfa_assign(
        self, problem: Problem
    ) -> Dict[str, List[SchedRequest]]:
        workloads = {device_id: problem.cost_model.initial_workload(device_id)
                     for device_id in problem.device_ids}
        statuses = problem.initial_statuses()
        assigned: Dict[str, List[SchedRequest]] = {
            device_id: [] for device_id in problem.device_ids}

        by_eligibility: Dict[int, List[SchedRequest]] = {}
        for request in problem.requests:
            by_eligibility.setdefault(len(request.candidates), []).append(
                request)

        for eligibility in sorted(by_eligibility):
            batch = by_eligibility[eligibility]
            # "If two requests have the same number of candidate
            # devices, LERFA assigns them in a random order."
            self.rng.shuffle(batch)
            for request in batch:
                best_device = None
                best_projected = float("inf")
                best_cost = 0.0
                for device_id in request.candidates:
                    cost, _ = problem.cost_model.estimate(
                        request, device_id, statuses[device_id])
                    projected = workloads[device_id] + cost
                    if projected < best_projected:
                        best_projected = projected
                        best_device = device_id
                        best_cost = cost
                if best_device is None:  # pragma: no cover - guarded upstream
                    raise SchedulingError(
                        f"request {request.request_id!r} has no candidates"
                    )
                workloads[best_device] += best_cost
                assigned[best_device].append(request)
        return assigned

    def _lerfa_assign_vectorized(
        self, problem: Problem, kernel: ColumnKernel
    ) -> Dict[str, List[SchedRequest]]:
        """LERFA over a precomputed (devices x requests) cost matrix.

        LERFA estimates every candidate from the device's *initial*
        status (assignment never advances statuses — that is SRFE's
        job), so the whole cost matrix can be evaluated up front; each
        request then scores its candidates with one gather + argmin.
        Batch ordering, the rng shuffle sequence, first-strict-minimum
        selection (numpy's first-occurrence argmin) and float64 workload
        accumulation all match the scalar walk bit for bit.
        """
        import numpy

        device_ids = problem.device_ids
        device_index = {device_id: k
                        for k, device_id in enumerate(device_ids)}
        request_index = {request.request_id: i
                         for i, request in enumerate(problem.requests)}
        statuses = problem.initial_statuses()
        initial_workload = problem.cost_model.initial_workload
        matrix = numpy.stack([
            kernel.column(device_id, statuses[device_id])
            for device_id in device_ids])
        workloads = numpy.array(
            [initial_workload(device_id) for device_id in device_ids],
            dtype=numpy.float64)
        assigned: Dict[str, List[SchedRequest]] = {
            device_id: [] for device_id in device_ids}
        #: Candidate tuples are widely shared between requests (the
        #: uniform workload has a single one); index arrays are memoized
        #: by tuple identity, with the tuples pinned so no id is
        #: recycled while the memo lives.
        candidate_rows: Dict[int, Any] = {}
        pinned_tuples: List[Any] = []

        by_eligibility: Dict[int, List[SchedRequest]] = {}
        for request in problem.requests:
            by_eligibility.setdefault(len(request.candidates), []).append(
                request)

        for eligibility in sorted(by_eligibility):
            batch = by_eligibility[eligibility]
            self.rng.shuffle(batch)
            for request in batch:
                rows = candidate_rows.get(id(request.candidates))
                if rows is None:
                    rows = numpy.array(
                        [device_index[d] for d in request.candidates],
                        dtype=numpy.intp)
                    candidate_rows[id(request.candidates)] = rows
                    pinned_tuples.append(request.candidates)
                i = request_index[request.request_id]
                costs = matrix[rows, i]
                projected = workloads[rows] + costs
                best = int(projected.argmin())
                best_row = int(rows[best])
                workloads[best_row] += costs[best]
                assigned[device_ids[best_row]].append(request)
        return assigned

    # ------------------------------------------------------------------
    # Algorithm 1.2: Shortest Request First Execution (per device)
    # ------------------------------------------------------------------
    def _srfe_order(
        self, problem: Problem, device_id: str,
        requests: List[SchedRequest],
    ) -> List[str]:
        status = problem.cost_model.initial_status(device_id)
        remaining = list(requests)
        order: List[str] = []
        while remaining:
            # "update the current physical status of d" happens via the
            # chained `status`; re-estimate every remaining request from
            # it and service the shortest.
            best_index = 0
            best_cost = float("inf")
            best_post = status
            for index, request in enumerate(remaining):
                cost, post = problem.cost_model.estimate(
                    request, device_id, status)
                if cost < best_cost:
                    best_cost = cost
                    best_index = index
                    best_post = post
            request = remaining.pop(best_index)
            status = best_post
            order.append(request.request_id)
        return order

    def _srfe_order_vectorized(
        self, problem: Problem, kernel: ColumnKernel, device_id: str,
        requests: List[SchedRequest],
    ) -> List[str]:
        """SRFE with each round's re-estimates as one column call.

        The scalar loop's first-strict-minimum scan in list order is
        numpy's first-occurrence argmin over the same order; the chained
        post-status comes from the kernel, which equals the scalar
        estimate's.
        """
        import numpy

        request_index = {request.request_id: i
                         for i, request in enumerate(problem.requests)}
        status = problem.cost_model.initial_status(device_id)
        remaining = numpy.array(
            [request_index[request.request_id] for request in requests],
            dtype=numpy.intp)
        order: List[str] = []
        while len(remaining):
            costs = kernel.column(device_id, status, remaining)
            best = int(costs.argmin())
            i = int(remaining[best])
            status = kernel.post_status(i, device_id)
            order.append(problem.requests[i].request_id)
            remaining = numpy.delete(remaining, best)
        return order
