"""Algorithm 1: LERFA + SRFE (SAP, proposed by the paper).

Two greedy sub-components (Figure 3, Algorithm 1):

* **LERFA** (Least Eligible Request First Assignment) assigns requests
  in increasing order of candidate-set size; each request goes to the
  candidate device whose projected total workload ``W_k + C_rk`` is
  least. Ties in eligibility are broken in random order, per the paper.
* **SRFE** (Shortest Request First Execution) orders each device's
  assigned requests by repeatedly servicing the request with the least
  estimated cost *given the device's current physical status*, updating
  the status after each servicing.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SchedulingError
from repro.scheduling.base import CATEGORY_SAP, Scheduler
from repro.scheduling.problem import Problem, SchedRequest


class LerfaSrfeScheduler(Scheduler):
    """The paper's Algorithm 1."""

    name = "LERFA+SRFE"
    category = CATEGORY_SAP

    def _solve(self, problem: Problem) -> Dict[str, List[str]]:
        assigned = self._lerfa_assign(problem)
        return {
            device_id: self._srfe_order(problem, device_id, requests)
            for device_id, requests in assigned.items()
        }

    # ------------------------------------------------------------------
    # Algorithm 1.1: Least Eligible Request First Assignment
    # ------------------------------------------------------------------
    def _lerfa_assign(
        self, problem: Problem
    ) -> Dict[str, List[SchedRequest]]:
        workloads = {device_id: 0.0 for device_id in problem.device_ids}
        statuses = problem.initial_statuses()
        assigned: Dict[str, List[SchedRequest]] = {
            device_id: [] for device_id in problem.device_ids}

        by_eligibility: Dict[int, List[SchedRequest]] = {}
        for request in problem.requests:
            by_eligibility.setdefault(len(request.candidates), []).append(
                request)

        for eligibility in sorted(by_eligibility):
            batch = by_eligibility[eligibility]
            # "If two requests have the same number of candidate
            # devices, LERFA assigns them in a random order."
            self.rng.shuffle(batch)
            for request in batch:
                best_device = None
                best_projected = float("inf")
                best_cost = 0.0
                for device_id in request.candidates:
                    cost, _ = problem.cost_model.estimate(
                        request, device_id, statuses[device_id])
                    projected = workloads[device_id] + cost
                    if projected < best_projected:
                        best_projected = projected
                        best_device = device_id
                        best_cost = cost
                if best_device is None:  # pragma: no cover - guarded upstream
                    raise SchedulingError(
                        f"request {request.request_id!r} has no candidates"
                    )
                workloads[best_device] += best_cost
                assigned[best_device].append(request)
        return assigned

    # ------------------------------------------------------------------
    # Algorithm 1.2: Shortest Request First Execution (per device)
    # ------------------------------------------------------------------
    def _srfe_order(
        self, problem: Problem, device_id: str,
        requests: List[SchedRequest],
    ) -> List[str]:
        status = problem.cost_model.initial_status(device_id)
        remaining = list(requests)
        order: List[str] = []
        while remaining:
            # "update the current physical status of d" happens via the
            # chained `status`; re-estimate every remaining request from
            # it and service the shortest.
            best_index = 0
            best_cost = float("inf")
            best_post = status
            for index, request in enumerate(remaining):
                cost, post = problem.cost_model.estimate(
                    request, device_id, status)
                if cost < best_cost:
                    best_cost = cost
                    best_index = index
                    best_post = post
            request = remaining.pop(best_index)
            status = best_post
            order.append(request.request_id)
        return order
