"""Problem instances for action workload scheduling (Figure 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.errors import InfeasibleScheduleError, SchedulingError


@dataclass(frozen=True)
class SchedRequest:
    """One action request r_i with its candidate device set D_i."""

    request_id: str
    candidates: Tuple[str, ...]
    #: Opaque action payload the cost model understands (for the camera
    #: workloads this is the target head position).
    payload: Any = None

    def __post_init__(self) -> None:
        if not self.request_id:
            raise SchedulingError("request_id must be non-empty")
        if not self.candidates:
            raise InfeasibleScheduleError(
                f"request {self.request_id!r} has no candidate devices"
            )
        if len(set(self.candidates)) != len(self.candidates):
            raise SchedulingError(
                f"request {self.request_id!r} lists a candidate twice"
            )


class SchedulingCostModel:
    """Cost oracle of a problem instance.

    ``estimate`` returns ``(seconds, post_status)`` — the sequence-
    dependent cost of servicing a request from a given device status,
    and the status the device is left in. ``actual`` is what execution
    really costs; by default it equals the estimate (the paper found its
    cost model "reasonably accurate"), and subclasses may add estimation
    error for robustness studies.

    ``deterministic`` declares that repeated ``estimate``/``actual``
    calls with identical inputs return identical results; only
    deterministic models are eligible for memoization through
    :class:`~repro.scheduling.cost_cache.CachingCostModel`. Models that
    draw noise must override it to ``False``.

    ``cache_by_default`` opts the model into the schedulers' default
    (``"auto"``) caching policy. Leave it ``False`` for cheap analytic
    models — a memo lookup costs about as much as their estimate — and
    set it ``True`` when an estimate is expensive enough to dwarf a
    dict probe (the engine's resolver + profile pipeline).
    """

    deterministic: bool = True
    cache_by_default: bool = False

    def initial_status(self, device_id: str) -> Any:
        """The device's physical status before any request is serviced."""
        raise NotImplementedError

    def initial_workload(self, device_id: str) -> float:
        """Seconds of work already committed to a device at batch start.

        The schedulers add this offset to every device's completion
        time, which is what lets a warm-start re-run place only the
        *changed* requests behind the spliced-in remainder of a prior
        schedule. The default of ``0.0`` is the classic cold-start
        problem and leaves every algorithm's output untouched.
        """
        return 0.0

    def estimate(
        self, request: SchedRequest, device_id: str, status: Any
    ) -> Tuple[float, Any]:
        """Estimated ``(seconds, post_status)`` for one servicing."""
        raise NotImplementedError

    def estimate_column(
        self, requests: List[SchedRequest], device_id: str, status: Any
    ) -> List[Tuple[float, Any]]:
        """Batch :meth:`estimate` of many requests on one device.

        All estimates are taken from the *same* starting status (one
        column of the request x device cost matrix). The base
        implementation is a scalar loop; memoizing or vectorizing
        subclasses override it.
        """
        return [self.estimate(request, device_id, status)
                for request in requests]

    def actual(
        self, request: SchedRequest, device_id: str, status: Any
    ) -> Tuple[float, Any]:
        """True ``(seconds, post_status)``; defaults to the estimate."""
        return self.estimate(request, device_id, status)


class StaticCostModel(SchedulingCostModel):
    """Sequence-independent costs from an explicit (request, device) map.

    Useful for unit tests and for comparing against scheduling-theory
    results where job processing times are fixed per machine.
    """

    def __init__(self, costs: Mapping[Tuple[str, str], float]) -> None:
        for (request_id, device_id), seconds in costs.items():
            if seconds < 0:
                raise SchedulingError(
                    f"negative cost for ({request_id!r}, {device_id!r})"
                )
        self._costs = dict(costs)

    def initial_status(self, device_id: str) -> None:
        return None

    def estimate(
        self, request: SchedRequest, device_id: str, status: Any
    ) -> Tuple[float, Any]:
        try:
            return self._costs[(request.request_id, device_id)], None
        except KeyError:
            raise SchedulingError(
                f"no cost defined for ({request.request_id!r}, "
                f"{device_id!r})"
            ) from None


@dataclass
class Problem:
    """One Action Workload Scheduling Problem instance.

    Input: a set R of n action requests, a set D of m devices, candidate
    sets D_i ⊆ D, and pair weights given by the cost model. Output (from
    a scheduler): an assignment of every request to a candidate device,
    minimizing makespan.
    """

    requests: Tuple[SchedRequest, ...]
    device_ids: Tuple[str, ...]
    cost_model: SchedulingCostModel
    #: Free-form description for benchmark reporting.
    label: str = ""

    def __post_init__(self) -> None:
        if not self.device_ids:
            raise SchedulingError("a problem needs at least one device")
        if len(set(self.device_ids)) != len(self.device_ids):
            raise SchedulingError("duplicate device ids")
        by_id: Dict[str, SchedRequest] = {}
        devices = set(self.device_ids)
        for request in self.requests:
            if request.request_id in by_id:
                raise SchedulingError(
                    f"duplicate request id {request.request_id!r}"
                )
            by_id[request.request_id] = request
            unknown = set(request.candidates) - devices
            if unknown:
                raise SchedulingError(
                    f"request {request.request_id!r} names unknown "
                    f"devices: {sorted(unknown)}"
                )
        #: Request lookup index; keeps `request()` (and everything built
        #: on it: Schedule.validate, the metrics, the dispatcher's
        #: assignment loop) O(1) per lookup instead of O(n).
        self._requests_by_id = by_id

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def n_devices(self) -> int:
        return len(self.device_ids)

    def request(self, request_id: str) -> SchedRequest:
        """Look up a request by id."""
        try:
            return self._requests_by_id[request_id]
        except KeyError:
            raise SchedulingError(
                f"unknown request {request_id!r}") from None

    def eligible_requests(self, device_id: str) -> List[SchedRequest]:
        """Requests that may be serviced on ``device_id``."""
        return [r for r in self.requests if device_id in r.candidates]

    def initial_statuses(self) -> Dict[str, Any]:
        """Fresh pre-execution status of every device."""
        return {device_id: self.cost_model.initial_status(device_id)
                for device_id in self.device_ids}
