"""A shared memoizing cost oracle for the scheduling stack.

Every scheduler estimates the same ``(request, device, status)`` triple
many times: LERFA probes each candidate from the same initial status,
SRFAE re-keys pairs after every assignment, SA's annealing loop
re-walks queue suffixes millions of times, and the dispatcher
re-schedules recurring batches every poll cycle. The inner cost model
(profile interpolation + quantity resolution through
:class:`repro.cost.model.CostModel`) is an order of magnitude more
expensive than a dict lookup, so memoizing the oracle is the difference
between a toy optimizer and one that holds up at the E10 scale
(400 requests x 100 devices) — the same reuse trick embedded-query
optimizers lean on (see PAPERS.md).

Fidelity contract: for a *deterministic* inner model the cache is
observationally transparent — every scheduler produces byte-identical
schedules with the cache on and off (enforced by the property tests in
``tests/scheduling/test_cost_cache.py``). Non-deterministic models
(``estimate_noise > 0``) are refused: memoizing a stochastic oracle
would freeze its first draw and silently change the experiment.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Optional, Set, Tuple

from repro.errors import SchedulingError
from repro.scheduling.problem import SchedRequest, SchedulingCostModel


def freeze_status(status: Any) -> Hashable:
    """A hashable, value-based key for a device status.

    Statuses arrive either as hashable objects (e.g. the camera
    simulator's frozen ``HeadPosition``) or as plain dicts (the
    dispatcher's probed ``{"pan": ..., "tilt": ...}`` snapshots); dicts,
    lists and sets are recursively frozen. Statuses must be treated as
    immutable once handed to the oracle — the key captures their value
    at call time.
    """
    if isinstance(status, Mapping):
        try:
            # Fast path: flat dicts of hashable scalars (the probed
            # physical-status shape) freeze without recursion.
            frozen = tuple(sorted(status.items()))
            hash(frozen)
            return frozen
        except TypeError:
            return tuple(sorted((key, freeze_status(value))
                                for key, value in status.items()))
    if isinstance(status, (list, tuple)):
        return tuple(freeze_status(value) for value in status)
    if isinstance(status, (set, frozenset)):
        return frozenset(freeze_status(value) for value in status)
    try:
        hash(status)
    except TypeError:
        raise SchedulingError(
            f"cannot build a cache key from status of type "
            f"{type(status).__name__}"
        ) from None
    return status


class CachingCostModel(SchedulingCostModel):
    """Memoizing wrapper around another :class:`SchedulingCostModel`.

    Cache keys are ``(request_id, device_id, frozen_status)``; cached
    entries additionally pin the request's ``payload`` by identity, so
    reusing one cache across problems whose request ids map to
    different payload objects degrades to misses instead of returning
    wrong costs. ``estimate`` and ``actual`` are cached in separate
    namespaces (list scheduling consumes ``actual``).

    The wrapper is intended to be short-lived by default (one
    ``Scheduler.schedule`` call builds a fresh one) but may be shared
    across repeated schedules of a recurring batch — the steady-state
    dispatch scenario ``benchmarks/bench_perf_regression.py`` measures.
    """

    deterministic = True

    def __init__(self, inner: SchedulingCostModel, *,
                 track_devices: bool = False) -> None:
        if isinstance(inner, CachingCostModel):
            raise SchedulingError("refusing to cache a cache")
        if not getattr(inner, "deterministic", True):
            raise SchedulingError(
                "refusing to memoize a non-deterministic cost model: "
                "caching would freeze its first draw"
            )
        self._inner = inner
        #: device_id -> cache keys, for selective invalidation. Only
        #: maintained when ``track_devices`` is on (the incremental
        #: dispatcher path), so the default hot path pays nothing.
        self._by_device: Optional[Dict[str, Set[Tuple[str, str, Hashable]]]]
        self._by_device = {} if track_devices else None
        self._estimates: Dict[Tuple[str, str, Hashable],
                              Tuple[Any, float, Any]] = {}
        self._actuals: Dict[Tuple[str, str, Hashable],
                            Tuple[Any, float, Any]] = {}
        #: id(status) -> (status, frozen key). Statuses handed to the
        #: oracle are immutable by contract, and in steady state they
        #: *are* the post-status objects the oracle returned earlier —
        #: an identity hit skips re-freezing entirely. Keeping the
        #: status reference pins its id against reuse.
        self._frozen_by_id: Dict[int, Tuple[Any, Hashable]] = {}
        self.hits = 0
        self.misses = 0

    @property
    def inner(self) -> SchedulingCostModel:
        """The wrapped cost model."""
        return self._inner

    def initial_status(self, device_id: str) -> Any:
        return self._inner.initial_status(device_id)

    def initial_workload(self, device_id: str) -> float:
        return self._inner.initial_workload(device_id)

    def _freeze(self, status: Any) -> Hashable:
        if type(status) is dict:
            memo = self._frozen_by_id.get(id(status))
            if memo is not None and memo[0] is status:
                return memo[1]
            frozen = freeze_status(status)
            self._frozen_by_id[id(status)] = (status, frozen)
            return frozen
        return freeze_status(status)

    def _lookup(
        self,
        table: Dict[Tuple[str, str, Hashable], Tuple[Any, float, Any]],
        compute,
        request: SchedRequest,
        device_id: str,
        status: Any,
    ) -> Tuple[float, Any]:
        key = (request.request_id, device_id, self._freeze(status))
        entry = table.get(key)
        if entry is not None and entry[0] is request.payload:
            self.hits += 1
            return entry[1], entry[2]
        self.misses += 1
        seconds, post_status = compute(request, device_id, status)
        table[key] = (request.payload, seconds, post_status)
        if self._by_device is not None:
            self._by_device.setdefault(device_id, set()).add(key)
        return seconds, post_status

    def estimate(
        self, request: SchedRequest, device_id: str, status: Any
    ) -> Tuple[float, Any]:
        # _lookup inlined: this is the schedulers' innermost call (SA
        # evaluates it millions of times), so it must not pay two extra
        # Python frames per probe.
        if type(status) is dict:
            memo = self._frozen_by_id.get(id(status))
            if memo is not None and memo[0] is status:
                frozen = memo[1]
            else:
                frozen = freeze_status(status)
                self._frozen_by_id[id(status)] = (status, frozen)
        else:
            frozen = freeze_status(status)
        key = (request.request_id, device_id, frozen)
        entry = self._estimates.get(key)
        if entry is not None and entry[0] is request.payload:
            self.hits += 1
            return entry[1], entry[2]
        self.misses += 1
        seconds, post_status = self._inner.estimate(request, device_id,
                                                    status)
        self._estimates[key] = (request.payload, seconds, post_status)
        if self._by_device is not None:
            self._by_device.setdefault(device_id, set()).add(key)
        return seconds, post_status

    def estimate_column(
        self, requests: List[SchedRequest], device_id: str, status: Any
    ) -> List[Tuple[float, Any]]:
        """Cache-aware batch estimate: each element hits or fills the memo."""
        return [self.estimate(request, device_id, status)
                for request in requests]

    def actual(
        self, request: SchedRequest, device_id: str, status: Any
    ) -> Tuple[float, Any]:
        return self._lookup(self._actuals, self._inner.actual,
                            request, device_id, status)

    def invalidate_device(self, device_id: str) -> None:
        """Drop every cached entry computed for one device.

        The incremental dispatcher calls this on dirty-set signals
        (health transitions, status-cache invalidations, executions), so
        a persistent cross-batch cache never serves estimates computed
        from a stale device status. Requires ``track_devices=True``.
        """
        if self._by_device is None:
            raise SchedulingError(
                "invalidate_device needs CachingCostModel("
                "track_devices=True)"
            )
        for key in self._by_device.pop(device_id, ()):
            self._estimates.pop(key, None)
            self._actuals.pop(key, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def entries(self) -> int:
        return len(self._estimates) + len(self._actuals)

    def stats(self) -> Dict[str, float]:
        """Hit/miss/entry counters plus the derived hit rate."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def clear(self) -> None:
        """Drop all cached entries and reset the counters."""
        self._estimates.clear()
        self._actuals.clear()
        self._frozen_by_id.clear()
        if self._by_device is not None:
            self._by_device.clear()
        self.hits = 0
        self.misses = 0
