"""Vectorized column cost kernels for the scheduling stack.

The schedulers' inner loop is per-(request, device) cost estimation:
SRFAE keys every eligible pair and re-keys a device's pairs after each
assignment; LERFA scores every candidate of every request; SRFE
re-scores a device's remaining queue per servicing step. Each of those
walks asks one question — "cost of *these requests* on *this device*
from *this status*" — which is a **column** of the (requests x devices)
cost matrix. A :class:`ColumnKernel` answers it with one numpy
expression instead of thousands of Python calls.

Fidelity contract (property-tested): a kernel's column is **bit-equal**
to the scalar ``estimate`` walk, element by element. Two design rules
make that possible:

* All *status-independent* work (trig aim resolution for the camera
  models) is done once per (request, device) in a scalar ``prepare``
  phase — on this platform ``numpy``'s SIMD ``arctan2``/``hypot``
  differ from CPython's ``math`` equivalents in the last ulp, so the
  transcendental part must stay scalar to preserve byte-identical
  schedules.
* The *status-dependent* arithmetic (absolute axis deltas, the cost
  table's ``fixed + per_unit * quantity`` linear forms, sequence sums
  and parallel maxes) is pure float64 add/sub/mul/div/abs/max, for
  which numpy's element-wise semantics match scalar evaluation exactly
  when applied in the same order.

``numpy`` is an optional dependency (the ``repro[fast]`` extra): every
import is guarded and every vectorized code path falls back to the
scalar walk when it is absent or when a cost model provides no kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Sequence

from repro.errors import SchedulingError
from repro.scheduling.problem import Problem, SchedulingCostModel

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.devices.base import Device
    from repro.cost.model import CostModel

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the no-numpy CI leg
    numpy = None  # type: ignore[assignment]
    HAVE_NUMPY = False


def require_numpy(feature: str = "vectorize=True") -> None:
    """Raise a clear error when a vectorized feature lacks numpy."""
    if not HAVE_NUMPY:
        raise SchedulingError(
            f"{feature} requires numpy, which is not installed; "
            f"install the optional extra (pip install 'repro[fast]') "
            f"or leave the vectorized path off"
        )


class ColumnKernel:
    """One problem's vectorized cost oracle, one device column at a time.

    Contract:

    * :meth:`column` returns a float64 array of estimated seconds for
      the given request indexes (``None`` = all requests, in problem
      order) on one device from one status — bit-equal to calling the
      scalar ``estimate`` per element.
    * :meth:`post_status` returns the post-servicing status of one
      (request, device) pair, equal to the scalar estimate's post
      status. Kernels exist only for models whose post status is
      *status-independent* (it depends on the request target and device
      geometry, not on where the head currently is) — which is what
      lets a column be evaluated without materializing n post objects.
    """

    def column(self, device_id: str, status: Any,
               indexes: Optional[Any] = None) -> Any:
        raise NotImplementedError

    def post_status(self, index: int, device_id: str) -> Any:
        raise NotImplementedError


class BlockModelKernel(ColumnKernel):
    """Kernel over the engine :class:`CostModel`'s block entry points.

    ``prepare_block`` runs once per device (scalar aim resolution over
    every request's arguments); ``estimate_block`` then evaluates the
    profile's linear forms for any request subset from any status.
    """

    def __init__(
        self,
        cost_model: "CostModel",
        action_name: str,
        devices: Any,
        args_list: Sequence[Any],
    ) -> None:
        self._cost_model = cost_model
        self._action_name = action_name
        self._devices = devices
        self._args_list = list(args_list)
        self._prepared: dict = {}

    def _prepared_for(self, device_id: str) -> Any:
        prepared = self._prepared.get(device_id)
        if prepared is None:
            prepared = self._cost_model.prepare_block(
                self._action_name, self._devices[device_id],
                self._args_list)
            self._prepared[device_id] = prepared
        return prepared

    def column(self, device_id: str, status: Any,
               indexes: Optional[Any] = None) -> Any:
        block = self._cost_model.estimate_block(
            self._action_name, self._devices[device_id],
            self._prepared_for(device_id), status, indexes=indexes)
        return block.seconds

    def post_status(self, index: int, device_id: str) -> Any:
        return self._cost_model.block_post_status(
            self._action_name, self._devices[device_id],
            self._prepared_for(device_id), index)


def build_kernel(problem: Problem) -> Optional[ColumnKernel]:
    """The problem's column kernel, or ``None`` for the scalar path.

    Unwraps a memoizing :class:`CachingCostModel` (kernels bypass the
    scalar memo — a column is cheaper than n cache probes) and asks the
    underlying model for a kernel via its optional
    ``make_column_kernel(problem)`` hook. Any model without the hook —
    or that declines (no numpy, noisy estimates, unsupported action) —
    keeps the byte-identical scalar walk.
    """
    if not HAVE_NUMPY:
        return None
    from repro.scheduling.cost_cache import CachingCostModel
    model: SchedulingCostModel = problem.cost_model
    while isinstance(model, CachingCostModel):
        model = model.inner
    maker = getattr(model, "make_column_kernel", None)
    if maker is None:
        return None
    return maker(problem)


def masked_argmin(costs: Any, mask: Any) -> Optional[int]:
    """Index of the smallest unmasked cost; ``None`` if all masked.

    First occurrence wins on ties — the same rule as a scalar
    first-strict-min scan in array order.
    """
    masked = numpy.where(mask, numpy.inf, costs)
    pos = int(masked.argmin())
    if masked[pos] == numpy.inf:
        return None
    return pos


__all__ = [
    "HAVE_NUMPY",
    "BlockModelKernel",
    "ColumnKernel",
    "build_kernel",
    "masked_argmin",
    "require_numpy",
]
