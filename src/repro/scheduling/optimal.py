"""Exact optimal schedules for small instances.

The paper notes the problem "can be formulated into a 0/1 Mixed Integer
Program and be solved optimally", but that the optimal MIP "is too
computationally expensive to be feasible in our scenario even if the
given input size is small" (Section 5.2 — citing an n=4, m=8 instance
that took ~1.5 hours). This module provides the exact reference solver
for our benchmarks: exhaustive assignment enumeration with per-device
optimal sequencing and memoization, plus a branch-and-bound prune.

Complexity is exponential by nature; :data:`MAX_EXACT_REQUESTS` guards
against accidental huge instances.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.errors import SchedulingError
from repro.scheduling.base import Schedule
from repro.scheduling.problem import Problem, SchedRequest

#: Largest request count the exact solver accepts.
MAX_EXACT_REQUESTS = 10


@dataclass(frozen=True)
class OptimalResult:
    """An exact solution with its (exponential) solve statistics."""

    schedule: Schedule
    makespan: float
    assignments_explored: int
    solve_seconds: float


def _best_device_sequence(
    problem: Problem, device_id: str, request_ids: FrozenSet[str],
    cache: Dict[Tuple[str, FrozenSet[str]], Tuple[float, Tuple[str, ...]]],
) -> Tuple[float, Tuple[str, ...]]:
    """Minimum completion time over all orderings of a device's set.

    Brute-force over permutations with status chaining — correct for any
    cost model (no Markov assumption on post-status), viable because the
    exact solver only runs on small instances.
    """
    key = (device_id, request_ids)
    if key in cache:
        return cache[key]
    requests = [problem.request(request_id) for request_id in request_ids]
    best_time = float("inf")
    best_order: Tuple[str, ...] = ()
    for order in itertools.permutations(requests):
        status = problem.cost_model.initial_status(device_id)
        elapsed = 0.0
        for request in order:
            seconds, status = problem.cost_model.estimate(
                request, device_id, status)
            elapsed += seconds
            if elapsed >= best_time:
                break
        if elapsed < best_time:
            best_time = elapsed
            best_order = tuple(r.request_id for r in order)
    cache[key] = (best_time, best_order)
    return cache[key]


def optimal_schedule(problem: Problem) -> OptimalResult:
    """Solve a small instance exactly.

    Enumerates device assignments request by request (branch and bound
    on a lower bound of the makespan), then sequences each device's set
    optimally. Device-set sequencing results are memoized across
    assignments, which collapses most of the enumeration cost.
    """
    if problem.n_requests > MAX_EXACT_REQUESTS:
        raise SchedulingError(
            f"exact solver accepts at most {MAX_EXACT_REQUESTS} requests, "
            f"got {problem.n_requests} (this is the paper's point: the "
            f"optimal solver does not scale)"
        )
    started = time.perf_counter()
    sequence_cache: Dict[
        Tuple[str, FrozenSet[str]], Tuple[float, Tuple[str, ...]]] = {}
    # Assign scarce requests first: fewer branches near the root.
    order: List[SchedRequest] = sorted(
        problem.requests, key=lambda r: len(r.candidates))

    best = {
        "makespan": float("inf"),
        "assignment": None,  # type: ignore[dict-item]
        "explored": 0,
    }

    def lower_bound(device_sets: Dict[str, FrozenSet[str]]) -> float:
        bound = 0.0
        for device_id, request_ids in device_sets.items():
            if not request_ids:
                continue
            completion, _ = _best_device_sequence(
                problem, device_id, request_ids, sequence_cache)
            bound = max(bound, completion)
        return bound

    def recurse(index: int, device_sets: Dict[str, FrozenSet[str]]) -> None:
        if lower_bound(device_sets) >= best["makespan"]:
            return
        if index == len(order):
            best["explored"] += 1
            makespan = lower_bound(device_sets)
            if makespan < best["makespan"]:
                best["makespan"] = makespan
                best["assignment"] = dict(device_sets)
            return
        request = order[index]
        for device_id in request.candidates:
            device_sets[device_id] = device_sets[device_id] | {
                request.request_id}
            recurse(index + 1, device_sets)
            device_sets[device_id] = device_sets[device_id] - {
                request.request_id}

    recurse(0, {device_id: frozenset() for device_id in problem.device_ids})

    if best["assignment"] is None:
        raise SchedulingError("exact solver found no feasible assignment")

    assignments: Dict[str, List[str]] = {}
    for device_id, request_ids in best["assignment"].items():
        if request_ids:
            _, sequence = _best_device_sequence(
                problem, device_id, request_ids, sequence_cache)
            assignments[device_id] = list(sequence)
        else:
            assignments[device_id] = []
    schedule = Schedule(algorithm="OPTIMAL", assignments=assignments,
                        scheduling_seconds=time.perf_counter() - started)
    schedule.validate(problem)
    return OptimalResult(
        schedule=schedule,
        makespan=best["makespan"],
        assignments_explored=best["explored"],
        solve_seconds=schedule.scheduling_seconds,
    )
