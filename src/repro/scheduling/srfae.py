"""Algorithm 2: SRFAE (CAP, proposed by the paper).

Shortest Request First Assignment and Execution (Figure 3, Algorithm 2):
every (request, device) pair goes into a priority structure keyed by its
weight; the algorithm repeatedly extracts the least node, assigns and
services that request on that device, then re-keys the device's
remaining pairs to "the estimated cost for servicing r_l on d_j after
servicing r_i" **plus** the extracted key ``w`` — so keys always equal
projected completion times on that device, honouring both the workload
increase and the physical-status change.

Three interchangeable pair structures (identical schedules, different
constants — the DESIGN.md data-structure ablation):

* ``"heap"`` (default) — a binary heap with lazy invalidation: key
  updates push a fresh entry and abandon the stale one; ``pop_min``
  discards entries whose key is no longer current. All hot operations
  are C-level ``heapq`` calls, which at the E10 scale (400 requests x
  100 devices) is roughly an order of magnitude faster than the
  pure-Python AVL.
* ``"avl"`` — the balanced BST with explicit delete/update, literal to
  the paper's Algorithm 2 description.
* ``"scan"`` — a flat dict with O(n) extract-min (the naive baseline).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.scheduling.avl import AVLTree
from repro.scheduling.base import CATEGORY_CAP, Scheduler
from repro.scheduling.problem import Problem
from repro.scheduling.vector_cost import (
    ColumnKernel,
    build_kernel,
    masked_argmin,
)

#: A pair key: (projected completion seconds, insertion serial).
_Key = Tuple[float, int]
#: A pair value: (request_id, device_id).
_Pair = Tuple[str, str]


class _LinearScanTree:
    """Drop-in replacement with O(n) extract-min, for the ablation."""

    def __init__(self) -> None:
        self._entries: Dict[_Key, _Pair] = {}

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, key: _Key, value: _Pair) -> None:
        if key in self._entries:
            raise SchedulingError(f"duplicate key {key!r}")
        self._entries[key] = value

    def remove(self, key: _Key) -> _Pair:
        try:
            return self._entries.pop(key)
        except KeyError:
            raise SchedulingError(f"key {key!r} not found") from None

    def pop_min(self) -> Tuple[_Key, _Pair]:
        if not self._entries:
            raise SchedulingError("pop_min from an empty structure")
        key = min(self._entries)  # the O(n) scan the others avoid
        return key, self._entries.pop(key)

    def update_key(self, old_key: _Key, new_key: _Key) -> None:
        if old_key == new_key:
            return
        self.insert(new_key, self.remove(old_key))


class _LazyHeap:
    """Binary heap with lazy deletion, same interface as the AVL.

    ``remove``/``update_key`` never touch the heap array: they retire
    the old key in the live-key map and (for updates) push a fresh
    entry. ``pop_min`` skips entries whose key has been retired. Keys
    are unique (callers append a serial), so a heap entry is live
    exactly when its key is still present in the live map. Entries are
    stored as flat ``(cost, serial, request_id, device_id)`` tuples, so
    every sift comparison resolves on the leading float/serial without
    allocating nested pairs.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, str, str]] = []
        #: serial -> full entry. Serials are the unique half of every
        #: key, so liveness checks hash an int instead of a (float, int)
        #: tuple; keeping the whole entry lets compaction rebuild the
        #: heap from this dict alone.
        self._live: Dict[int, Tuple[float, int, str, str]] = {}

    def __bool__(self) -> bool:
        return bool(self._live)

    def __len__(self) -> int:
        return len(self._live)

    def _push(self, entry: Tuple[float, int, str, str]) -> None:
        heap = self._heap
        if len(heap) > 64 + 2 * len(self._live):
            # Mostly stale: rebuild from the live set. Amortized O(1)
            # per push, and it keeps pop_min's sift depth bounded by
            # the live population instead of the push history.
            heap[:] = self._live.values()
            heapq.heapify(heap)
        heapq.heappush(heap, entry)

    def insert(self, key: _Key, value: _Pair) -> None:
        if key[1] in self._live:
            raise SchedulingError(f"duplicate key {key!r}")
        entry = key + value
        self._live[key[1]] = entry
        self._push(entry)

    def bulk_load(self, items: List[Tuple[_Key, _Pair]]) -> None:
        """Heapify many entries at once (the Lines 1-3 initial fill)."""
        live = self._live
        heap = self._heap
        for key, value in items:
            if key[1] in live:
                raise SchedulingError(f"duplicate key {key!r}")
            entry = key + value
            live[key[1]] = entry
            heap.append(entry)
        heapq.heapify(heap)

    def remove(self, key: _Key) -> _Pair:
        try:
            return self._live.pop(key[1])[2:]
        except KeyError:
            raise SchedulingError(f"key {key!r} not found") from None

    def pop_min(self) -> Tuple[_Key, _Pair]:
        heap = self._heap
        live = self._live
        heappop = heapq.heappop
        while heap:
            entry = heappop(heap)
            if entry[1] in live:  # else stale: retired by remove/update
                del live[entry[1]]
                return entry[:2], entry[2:]
        raise SchedulingError("pop_min from an empty structure")

    def update_key(self, old_key: _Key, new_key: _Key) -> None:
        if old_key == new_key:
            return
        live = self._live
        try:
            old_entry = live.pop(old_key[1])
        except KeyError:
            raise SchedulingError(f"key {old_key!r} not found") from None
        if new_key[1] in live:
            raise SchedulingError(f"duplicate key {new_key!r}")
        entry = new_key + old_entry[2:]
        live[new_key[1]] = entry
        self._push(entry)


_STRUCTURES = {
    "heap": _LazyHeap,
    "avl": AVLTree,
    "scan": _LinearScanTree,
}


class SrfaeScheduler(Scheduler):
    """The paper's Algorithm 2 over a pluggable pair structure.

    ``structure`` selects the priority structure (``"heap"``, ``"avl"``
    or ``"scan"``; see the module docstring). The legacy ``use_avl``
    flag maps ``True`` -> ``"avl"`` and ``False`` -> ``"scan"``.
    """

    name = "SRFAE"
    category = CATEGORY_CAP

    def __init__(self, seed: int = 0, *, structure: str = "heap",
                 use_avl: Optional[bool] = None, cost_cache="auto",
                 vectorize: bool = False) -> None:
        super().__init__(seed, cost_cache=cost_cache, vectorize=vectorize)
        if use_avl is not None:
            structure = "avl" if use_avl else "scan"
        if structure not in _STRUCTURES:
            raise SchedulingError(
                f"unknown SRFAE structure {structure!r}; "
                f"pick one of {sorted(_STRUCTURES)}"
            )
        self.structure = structure

    def _solve(self, problem: Problem) -> Dict[str, List[str]]:
        if self.vectorize:
            kernel = build_kernel(problem)
            if kernel is not None:
                return self._solve_vectorized(problem, kernel)
        serial = itertools.count().__next__
        estimate = problem.cost_model.estimate
        offsets = {device_id: problem.cost_model.initial_workload(device_id)
                   for device_id in problem.device_ids}
        tree = _STRUCTURES[self.structure]()
        #: device_id -> request_id -> (current tree key, post-servicing
        #: status, request). Storing the post-status alongside the key
        #: means the extracted pair's estimate — produced when the pair
        #: was last keyed — is never recomputed at extraction time.
        #: Keying by device first lets the re-key step walk exactly the
        #: device's live pairs instead of probing every unserviced
        #: request.
        entries: Dict[str, Dict[str, Tuple[_Key, Any, Any]]] = {
            device_id: {} for device_id in problem.device_ids}
        statuses = problem.initial_statuses()
        assignments: Dict[str, List[str]] = {
            device_id: [] for device_id in problem.device_ids}

        # Lines 1-3: insert every eligible pair keyed by its weight.
        initial: List[Tuple[_Key, _Pair]] = []
        for request in problem.requests:
            for device_id in request.candidates:
                cost, post_status = estimate(
                    request, device_id, statuses[device_id])
                key = (cost + offsets[device_id], serial())
                initial.append((key, (request.request_id, device_id)))
                entries[device_id][request.request_id] = (
                    key, post_status, request)
        if hasattr(tree, "bulk_load"):
            tree.bulk_load(initial)
        else:
            for key, pair in initial:
                tree.insert(key, pair)

        # Lines 7-20: repeatedly extract the least pair.
        update_key = tree.update_key
        while tree:
            key, (request_id, device_id) = tree.pop_min()
            _, post_status, request = entries[device_id].pop(request_id)
            assignments[device_id].append(request_id)
            completion = key[0]  # w: projected completion on this device

            # Line 15: mark serviced — drop the request's other pairs.
            for other_device in request.candidates:
                stale = entries[other_device].pop(request_id, None)
                if stale is not None:
                    tree.remove(stale[0])

            # The device's physical status advances past this request —
            # to the post-status stored when the pair was keyed.
            status = statuses[device_id] = post_status

            # Lines 16-20: re-key the device's remaining eligible pairs
            # from the *new* status, plus the accumulated workload w.
            device_entries = entries[device_id]
            for other_id, entry in device_entries.items():
                cost, other_post = estimate(entry[2], device_id, status)
                new_key = (cost + completion, serial())
                update_key(entry[0], new_key)
                device_entries[other_id] = (new_key, other_post, entry[2])

        return assignments

    def _solve_vectorized(self, problem: Problem,
                          kernel: ColumnKernel) -> Dict[str, List[str]]:
        """Algorithm 2 over per-device numpy cost columns.

        Instead of one priority-structure entry per (request, device)
        pair, each device keeps a float64 column of its eligible pairs'
        current keys and contributes exactly one entry — its column
        minimum — to a global lazy heap. Extraction order is identical
        to the scalar structures: heap entries order by
        ``(key, epoch, request index, candidate position)``, which
        reproduces the scalar ``(key, insertion serial)`` order because
        (a) initial serials are issued request-major over each request's
        candidate tuple, i.e. ascending ``(request, position)``; (b) a
        re-key refreshes *all* of one device's serials at once, so a
        device's live pairs always share one epoch, epochs of distinct
        devices past init are distinct, and every serial of a later
        epoch exceeds every earlier one; (c) within one device and
        epoch, serials ascend with request index, matching first-
        occurrence ``argmin``. Entries are lazily revalidated on pop:
        a device whose column changed (``gen`` mismatch) or whose
        minimum was assigned elsewhere (``taken``) is recomputed and
        re-pushed — its true key can only have grown, so the heap
        invariant holds.
        """
        import numpy

        requests = problem.requests
        device_ids = problem.device_ids
        n = len(requests)
        device_index = {device_id: k
                        for k, device_id in enumerate(device_ids)}
        statuses = problem.initial_statuses()
        assignments: Dict[str, List[str]] = {
            device_id: [] for device_id in device_ids}
        if not n:
            return assignments

        # Per-device eligibility: global request indexes (ascending) and
        # each request's candidate-tuple position of this device (the
        # scalar serial tie-break within epoch 0).
        eligible_lists: List[List[int]] = [[] for _ in device_ids]
        position_lists: List[List[int]] = [[] for _ in device_ids]
        for i, request in enumerate(requests):
            for position, device_id in enumerate(request.candidates):
                k = device_index[device_id]
                eligible_lists[k].append(i)
                position_lists[k].append(position)
        eligible = [numpy.array(idxs, dtype=numpy.intp)
                    for idxs in eligible_lists]
        positions = [numpy.array(idxs, dtype=numpy.intp)
                     for idxs in position_lists]

        # Current keys: cost column from the device's status, plus the
        # device's accumulated completion time (initial workload at
        # start) — the same ``cost + w`` the scalar re-key computes.
        initial_workload = problem.cost_model.initial_workload
        columns: List[Any] = [None] * len(device_ids)
        taken = numpy.zeros(n, dtype=bool)
        generations = [0] * len(device_ids)
        heap: List[Tuple[float, int, int, int, int, int]] = []
        for k, device_id in enumerate(device_ids):
            if not len(eligible[k]):
                continue
            columns[k] = (kernel.column(device_id, statuses[device_id],
                                        eligible[k])
                          + initial_workload(device_id))
            best = int(columns[k].argmin())
            heap.append((float(columns[k][best]), 0,
                         int(eligible[k][best]), int(positions[k][best]),
                         k, 0))
        heapq.heapify(heap)

        assigned = 0
        while assigned < n:
            if not heap:  # pragma: no cover - defensive
                raise SchedulingError("vectorized SRFAE ran out of pairs")
            key, epoch, i, _, k, generation = heapq.heappop(heap)
            if generation != generations[k]:
                continue  # superseded by a newer push for this device
            if taken[i]:
                # The column is current but its minimum was assigned on
                # another device; re-minimize over the untaken rest.
                best = masked_argmin(columns[k], taken[eligible[k]])
                generations[k] += 1
                if best is not None:
                    heapq.heappush(heap, (
                        float(columns[k][best]), epoch,
                        int(eligible[k][best]), int(positions[k][best]),
                        k, generations[k]))
                continue

            # Assign: the key is the projected completion time w.
            device_id = device_ids[k]
            assignments[device_id].append(requests[i].request_id)
            taken[i] = True
            assigned += 1
            status = statuses[device_id] = kernel.post_status(i, device_id)
            columns[k] = kernel.column(device_id, status, eligible[k]) + key
            generations[k] += 1
            best = masked_argmin(columns[k], taken[eligible[k]])
            if best is not None:
                heapq.heappush(heap, (
                    float(columns[k][best]), assigned,
                    int(eligible[k][best]), int(positions[k][best]),
                    k, generations[k]))

        return assignments
