"""Algorithm 2: SRFAE (CAP, proposed by the paper).

Shortest Request First Assignment and Execution (Figure 3, Algorithm 2):
every (request, device) pair goes into a balanced BST keyed by its
weight; the algorithm repeatedly extracts the least node, assigns and
services that request on that device, then re-keys the device's
remaining pairs to "the estimated cost for servicing r_l on d_j after
servicing r_i" **plus** the extracted key ``w`` — so keys always equal
projected completion times on that device, honouring both the workload
increase and the physical-status change.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from repro.errors import SchedulingError
from repro.scheduling.avl import AVLTree
from repro.scheduling.base import CATEGORY_CAP, Scheduler
from repro.scheduling.problem import Problem


class _LinearScanTree:
    """Drop-in AVL replacement with O(n) extract-min, for the ablation."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[float, int], Tuple[str, str]] = {}

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, key: Tuple[float, int], value: Tuple[str, str]) -> None:
        if key in self._entries:
            raise SchedulingError(f"duplicate key {key!r}")
        self._entries[key] = value

    def remove(self, key: Tuple[float, int]) -> Tuple[str, str]:
        try:
            return self._entries.pop(key)
        except KeyError:
            raise SchedulingError(f"key {key!r} not found") from None

    def pop_min(self) -> Tuple[Tuple[float, int], Tuple[str, str]]:
        if not self._entries:
            raise SchedulingError("pop_min from an empty structure")
        key = min(self._entries)  # the O(n) scan the AVL avoids
        return key, self._entries.pop(key)

    def update_key(self, old_key: Tuple[float, int],
                   new_key: Tuple[float, int]) -> None:
        if old_key == new_key:
            return
        self.insert(new_key, self.remove(old_key))


class SrfaeScheduler(Scheduler):
    """The paper's Algorithm 2, built on an AVL tree.

    ``use_avl=False`` replaces the balanced BST with a naive
    linear-scan-for-minimum structure — same schedules, asymptotically
    worse scheduling time (the DESIGN.md data-structure ablation).
    """

    name = "SRFAE"
    category = CATEGORY_CAP

    def __init__(self, seed: int = 0, *, use_avl: bool = True) -> None:
        super().__init__(seed)
        self.use_avl = use_avl

    def _solve(self, problem: Problem) -> Dict[str, List[str]]:
        serial = itertools.count()
        tree = AVLTree() if self.use_avl else _LinearScanTree()
        #: (request_id, device_id) -> current tree key.
        keys: Dict[Tuple[str, str], Tuple[float, int]] = {}
        statuses = problem.initial_statuses()
        workloads = {device_id: 0.0 for device_id in problem.device_ids}
        assignments: Dict[str, List[str]] = {
            device_id: [] for device_id in problem.device_ids}
        unserviced = {r.request_id for r in problem.requests}
        requests_by_id = {r.request_id: r for r in problem.requests}

        # Lines 1-3: insert every eligible pair keyed by its weight.
        for request in problem.requests:
            for device_id in request.candidates:
                cost, _ = problem.cost_model.estimate(
                    request, device_id, statuses[device_id])
                key = (cost, next(serial))
                tree.insert(key, (request.request_id, device_id))
                keys[(request.request_id, device_id)] = key

        # Lines 7-20: repeatedly extract the least pair.
        while tree:
            key, (request_id, device_id) = tree.pop_min()
            del keys[(request_id, device_id)]
            request = requests_by_id[request_id]
            assignments[device_id].append(request_id)
            completion = key[0]  # w: projected completion on this device

            # Line 15: mark serviced — drop the request's other pairs.
            unserviced.discard(request_id)
            for other_device in request.candidates:
                stale = keys.pop((request_id, other_device), None)
                if stale is not None:
                    tree.remove(stale)

            # The device's physical status advances past this request.
            _, post_status = problem.cost_model.estimate(
                request, device_id, statuses[device_id])
            statuses[device_id] = post_status
            workloads[device_id] = completion

            # Lines 16-20: re-key the device's remaining eligible pairs
            # from the *new* status, plus the accumulated workload w.
            for other_id in unserviced:
                pair = (other_id, device_id)
                if pair not in keys:
                    continue
                cost, _ = problem.cost_model.estimate(
                    requests_by_id[other_id], device_id,
                    statuses[device_id])
                new_key = (cost + completion, next(serial))
                tree.update_key(keys[pair], new_key)
                keys[pair] = new_key

        return assignments
