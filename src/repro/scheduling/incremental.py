"""Incremental warm-start scheduling across recurring batches.

The dispatcher re-solves an action's scheduling problem on every poll
cycle, but between consecutive batches most of the world is unchanged:
the same requests are pending, and most devices' head statuses are
exactly where the previous schedule left them. Re-running the full
algorithm re-derives the same placement from scratch.

:class:`IncrementalScheduler` wraps any :class:`Scheduler` and persists
the previous batch's placement plus the cost-oracle state. On the next
batch it computes a **dirty set** — the devices whose initial status
actually changed, seeded by the signals the engine already emits
(health transitions, status-cache invalidations, executions; see
``core/dispatcher.py``) and verified by value against the previous
statuses, so a spurious signal can never degrade the schedule. Only the
requests that must move are re-placed:

* requests whose fingerprint is new or changed (new work, changed
  candidate sets or payloads), and
* requests previously placed on a dirty device (their placement was
  justified by a status that no longer holds);

everything else is **spliced** verbatim from the previous schedule, and
the re-placement runs the inner algorithm on a *warm* sub-problem whose
per-device initial workloads and statuses are the splice's end state —
so re-placed requests queue up behind the kept ones exactly as the
algorithms' completion-time bookkeeping expects.

Identity guarantees (property-tested):

* the first batch, a batch whose device set changed, and a batch where
  *every* device is dirty are solved by a plain full run of the inner
  algorithm (with its rng reseeded), so they equal a fresh scheduler's
  output exactly;
* an unchanged problem — under ANY dirty signals — re-places nothing
  and returns the previous schedule, which equals a full re-run
  bit-for-bit (deterministic cost model + reseeded rng);
* under partial status changes the spliced schedule is always feasible
  and keeps every clean request on its previous device in its previous
  order; the re-placed remainder is optimized against the splice. This
  is the event-driven-recomputation trade: placements justified by
  unchanged state are provably unchanged, placements justified by
  changed state are recomputed, and cross-effects between the two are
  deliberately not chased (that would be the full run).

Requests are matched across batches by a **fingerprint**, not identity:
the engine allocates a fresh ``request_id`` for every emission, so
recurring batches of the same logical work carry disjoint ids. The
default fingerprint is ``(request_id, candidates, frozen payload)``
(standalone problems have stable ids); the dispatcher supplies a
content-based fingerprint instead.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import SchedulingError
from repro.scheduling.base import Schedule, Scheduler
from repro.scheduling.cost_cache import CachingCostModel, freeze_status
from repro.scheduling.problem import (
    Problem,
    SchedRequest,
    SchedulingCostModel,
)

Fingerprint = Callable[[SchedRequest], Hashable]


def default_fingerprint(request: SchedRequest) -> Hashable:
    """Identity of a request across batches: id, candidates, payload."""
    if request.payload is None:
        payload_key: Hashable = None
    else:
        try:
            payload_key = freeze_status(request.payload)
        except SchedulingError:
            payload_key = id(request.payload)
    return (request.request_id, request.candidates, payload_key)


@dataclass
class IncrementalStats:
    """Cumulative counters over an incremental scheduler's lifetime."""

    batches: int = 0
    full_runs: int = 0
    reused_requests: int = 0
    replaced_requests: int = 0
    dirty_devices: int = 0
    signaled_devices: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "batches": self.batches,
            "full_runs": self.full_runs,
            "reused_requests": self.reused_requests,
            "replaced_requests": self.replaced_requests,
            "dirty_devices": self.dirty_devices,
            "signaled_devices": self.signaled_devices,
        }


class _WarmStartModel(SchedulingCostModel):
    """The inner model as seen *after* the spliced prefix executed.

    ``initial_status``/``initial_workload`` report each device's status
    and completion time at the end of its kept queue; estimates pass
    through unchanged. ``cache_by_default`` is off — the wrapped model
    is already the (possibly shared) memoizing oracle.
    """

    cache_by_default = False

    def __init__(self, inner: SchedulingCostModel,
                 statuses: Dict[str, Any],
                 workloads: Dict[str, float]) -> None:
        self._inner = inner
        self._statuses = statuses
        self._workloads = workloads

    @property
    def deterministic(self) -> bool:
        return getattr(self._inner, "deterministic", True)

    def initial_status(self, device_id: str) -> Any:
        return self._statuses[device_id]

    def initial_workload(self, device_id: str) -> float:
        return self._workloads[device_id]

    def estimate(self, request: SchedRequest, device_id: str,
                 status: Any) -> Tuple[float, Any]:
        return self._inner.estimate(request, device_id, status)

    def actual(self, request: SchedRequest, device_id: str,
               status: Any) -> Tuple[float, Any]:
        return self._inner.actual(request, device_id, status)


@dataclass
class _BatchState:
    """What the next batch needs to know about the previous one."""

    device_ids: Tuple[str, ...]
    #: device_id -> frozen initial status the schedule was computed from.
    frozen_statuses: Dict[str, Hashable]
    #: device_id -> ordered fingerprints of its queue.
    queues: Dict[str, List[Hashable]]
    #: fingerprint -> device it was placed on.
    placement: Dict[Hashable, str] = field(default_factory=dict)


class IncrementalScheduler(Scheduler):
    """Warm-start wrapper around any scheduling algorithm.

    ``cost_cache`` optionally supplies a persistent
    :class:`CachingCostModel` shared across batches (and with the
    executor); it must wrap the same cost-model instance the problems
    carry. ``fingerprint`` overrides cross-batch request matching.
    Dirty devices are announced via :meth:`mark_dirty`; announcements
    are verified against the devices' actual status change, so they can
    be generous. Statistics accumulate in :attr:`stats`.
    """

    category = ""

    def __init__(self, inner: Scheduler, *,
                 cost_cache: Optional[CachingCostModel] = None,
                 fingerprint: Optional[Fingerprint] = None) -> None:
        super().__init__(seed=inner.seed, cost_cache=False)
        self.inner = inner
        self.name = f"{inner.name}+warm"
        self.category = inner.category
        self.shared_cache = cost_cache
        self.fingerprint: Fingerprint = fingerprint or default_fingerprint
        self.stats = IncrementalStats()
        self._signaled: Set[str] = set()
        self._previous: Optional[_BatchState] = None

    # ------------------------------------------------------------------
    # Dirty signals
    # ------------------------------------------------------------------
    def mark_dirty(self, device_id: str) -> None:
        """Announce that a device's status may have changed."""
        self._signaled.add(device_id)

    def reset(self) -> None:
        """Forget the previous batch; the next run is a full run."""
        self._previous = None
        self._signaled.clear()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, problem: Problem) -> Schedule:
        started = time.perf_counter()
        signaled = self._signaled
        self._signaled = set()
        self.stats.batches += 1
        self.stats.signaled_devices += len(signaled)

        problem = self._with_shared_cache(problem)
        model = problem.cost_model
        try:
            frozen = {device_id: freeze_status(model.initial_status(device_id))
                      for device_id in problem.device_ids}
        except SchedulingError:
            frozen = None  # unfreezable statuses: no cross-batch reuse

        fingerprints = [self.fingerprint(request)
                        for request in problem.requests]
        stable = len(set(fingerprints)) == len(fingerprints)

        previous = self._previous
        if (previous is None or frozen is None or not stable
                or previous.device_ids != problem.device_ids):
            schedule = self._full_run(problem)
        else:
            dirty = {device_id for device_id in problem.device_ids
                     if frozen[device_id]
                     != previous.frozen_statuses[device_id]}
            self.stats.dirty_devices += len(dirty)
            schedule = self._warm_run(problem, previous, dirty,
                                      fingerprints)
        schedule.scheduling_seconds = time.perf_counter() - started

        if frozen is not None and stable:
            id_to_fingerprint = {
                request.request_id: fingerprint
                for request, fingerprint in zip(problem.requests,
                                                fingerprints)}
            queues: Dict[str, List[Hashable]] = {
                device_id: [] for device_id in problem.device_ids}
            placement: Dict[Hashable, str] = {}
            for device_id, queue in schedule.assignments.items():
                for request_id in queue:
                    fingerprint = id_to_fingerprint[request_id]
                    queues[device_id].append(fingerprint)
                    placement[fingerprint] = device_id
            self._previous = _BatchState(
                device_ids=problem.device_ids,
                frozen_statuses=frozen,
                queues=queues,
                placement=placement,
            )
        else:
            self._previous = None
        if self.shared_cache is not None:
            self.last_cache_stats = self.shared_cache.stats()
        else:
            self.last_cache_stats = self.inner.last_cache_stats
        return schedule

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _with_shared_cache(self, problem: Problem) -> Problem:
        cache = self.shared_cache
        if cache is None:
            return problem
        if isinstance(problem.cost_model, CachingCostModel):
            return problem
        if cache.inner is not problem.cost_model:
            raise SchedulingError(
                "shared cost cache wraps a different cost model than the "
                "problem's; build the cache from problem.cost_model"
            )
        if not getattr(problem.cost_model, "deterministic", True):
            return problem
        return replace(problem, cost_model=cache)

    def _run_inner(self, problem: Problem) -> Schedule:
        # Reseed so every batch's placement is a pure function of the
        # problem (plus seed), never of how many batches ran before —
        # that is what makes "warm equals full" checkable at all.
        self.inner.rng = random.Random(self.inner.seed)
        return self.inner.schedule(problem)

    def _full_run(self, problem: Problem) -> Schedule:
        self.stats.full_runs += 1
        self.stats.replaced_requests += len(problem.requests)
        schedule = self._run_inner(problem)
        return Schedule(algorithm=self.name,
                        assignments=schedule.assignments)

    def _warm_run(self, problem: Problem, previous: _BatchState,
                  dirty: Set[str],
                  fingerprints: List[Hashable]) -> Schedule:
        by_fingerprint = dict(zip(fingerprints, problem.requests))
        replaced_keys = set()
        for fingerprint in fingerprints:
            placed_on = previous.placement.get(fingerprint)
            if placed_on is None or placed_on in dirty:
                replaced_keys.add(fingerprint)

        # Splice: previous queue order on clean devices, dropping
        # requests that disappeared from the batch.
        kept: Dict[str, List[SchedRequest]] = {
            device_id: [] for device_id in problem.device_ids}
        for device_id, queue in previous.queues.items():
            if device_id in dirty:
                continue
            for fingerprint in queue:
                request = by_fingerprint.get(fingerprint)
                if request is not None:
                    kept[device_id].append(request)
        self.stats.reused_requests += sum(len(q) for q in kept.values())
        self.stats.replaced_requests += len(replaced_keys)

        assignments: Dict[str, List[str]] = {
            device_id: [request.request_id for request in queue]
            for device_id, queue in kept.items()}
        if replaced_keys:
            model = problem.cost_model
            statuses: Dict[str, Any] = {}
            workloads: Dict[str, float] = {}
            for device_id in problem.device_ids:
                status = model.initial_status(device_id)
                elapsed = model.initial_workload(device_id)
                for request in kept[device_id]:
                    seconds, status = model.estimate(request, device_id,
                                                     status)
                    elapsed += seconds
                statuses[device_id] = status
                workloads[device_id] = elapsed
            sub_problem = Problem(
                requests=tuple(
                    request for fingerprint, request
                    in zip(fingerprints, problem.requests)
                    if fingerprint in replaced_keys),
                device_ids=problem.device_ids,
                cost_model=_WarmStartModel(model, statuses, workloads),
                label=f"{problem.label}+warm" if problem.label else "warm",
            )
            sub_schedule = self._run_inner(sub_problem)
            for device_id, queue in sub_schedule.assignments.items():
                assignments[device_id].extend(queue)

        schedule = Schedule(algorithm=self.name, assignments=assignments)
        schedule.validate(problem)
        return schedule
