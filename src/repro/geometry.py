"""2-D geometry for the pervasive lab: locations, angles, view cones.

The paper's ``coverage(camera_id, location)`` built-in returns TRUE when
the camera's view range covers a location. We model the lab floor as a
2-D plane; a camera has a mount point, a pannable field of view (an
angular sector) and a maximum view distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A location on the lab floor, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def bearing_to(self, other: "Point") -> float:
        """Bearing from this point to ``other`` in degrees, in [-180, 180).

        0 degrees points along +x; angles grow counter-clockwise.
        """
        angle = math.degrees(math.atan2(other.y - self.y, other.x - self.x))
        return normalize_angle(angle)

    def __iter__(self):
        yield self.x
        yield self.y


def normalize_angle(degrees: float) -> float:
    """Fold an angle into the canonical interval [-180, 180)."""
    folded = math.fmod(degrees + 180.0, 360.0)
    if folded < 0:
        folded += 360.0
    return folded - 180.0


def angle_difference(a: float, b: float) -> float:
    """Smallest absolute difference between two angles, in [0, 180]."""
    return abs(normalize_angle(a - b))


@dataclass(frozen=True)
class ViewSector:
    """An angular sector with bounded range: a camera's reachable view.

    ``center`` is the sector's central bearing in degrees; ``half_angle``
    is half the angular width (so a full-circle camera uses 180); and
    ``max_range`` bounds the usable viewing distance in metres.
    """

    origin: Point
    center: float
    half_angle: float
    max_range: float

    def __post_init__(self) -> None:
        if not 0 < self.half_angle <= 180:
            raise ValueError(f"half_angle must be in (0, 180], got {self.half_angle}")
        if self.max_range <= 0:
            raise ValueError(f"max_range must be positive, got {self.max_range}")

    def covers(self, target: Point) -> bool:
        """Whether ``target`` lies inside the sector (range and angle)."""
        distance = self.origin.distance_to(target)
        if distance > self.max_range:
            return False
        if distance == 0.0:
            return True
        bearing = self.origin.bearing_to(target)
        return angle_difference(bearing, self.center) <= self.half_angle

    def bearing_of(self, target: Point) -> float:
        """Bearing from the sector origin to ``target`` in degrees."""
        return self.origin.bearing_to(target)
