"""Exception hierarchy for the Aorta framework.

Every error raised by :mod:`repro` derives from :class:`AortaError`, so
applications can catch framework failures with a single ``except`` clause
while still being able to discriminate the subsystem that failed.

Errors are additionally classified as *transient* or *permanent* for the
fault-tolerance layer: a transient failure (timeout, coverage dropout,
lock contention, a device mid-outage) may heal on its own, so retrying —
on the same device or a surviving candidate — is worthwhile; a permanent
failure (bad request, unknown action, missing capability) will fail
identically on every attempt and must not be retried. Use
:func:`is_transient` to classify a caught exception.
"""

from __future__ import annotations

#: ActionFailedError reasons that indicate a healable condition. An
#: out-of-set reason means retrying the identical request on the
#: identical device is not expected to fix it: ``blurred`` and
#: ``wrong_position`` mean the action ran but produced a bad result,
#: and a camera's ``no_coverage`` is geometric — a fixed camera never
#: grows a field of view. (A *phone's* carrier-coverage dropout is the
#: transient kind, and surfaces as a :class:`CommunicationError`.)
TRANSIENT_ACTION_REASONS = frozenset({
    "timeout",
    "device_crash",
    "device_offline",
    "lock_contention",
})


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` describes a failure that may heal on retry.

    Reason-carrying :class:`ActionFailedError` instances are classified
    by reason; every other framework error carries a class-level
    ``transient`` flag. Non-Aorta exceptions are never transient.
    """
    if isinstance(error, ActionFailedError):
        return error.reason in TRANSIENT_ACTION_REASONS
    return isinstance(error, AortaError) and error.transient


class AortaError(Exception):
    """Base class for all Aorta framework errors."""

    #: Whether failures of this class are expected to heal on their own
    #: (see :func:`is_transient`). Permanent unless a subclass says so.
    transient: bool = False


class SimulationError(AortaError):
    """The discrete-event kernel was used incorrectly."""


class DeviceError(AortaError):
    """A device-level failure (unknown device, bad operation, crash)."""


class DeviceUnavailableError(DeviceError):
    """The device did not respond within its probe TIMEOUT."""

    transient = True


class DeviceDownError(DeviceError):
    """The device is offline or crashed right now, but may recover.

    Raised when an operation reaches a device that is mid-outage —
    distinct from the permanent :class:`DeviceError` cases (unknown
    operation, missing capability) precisely so the retry policy can
    tell them apart.
    """

    transient = True


class DeviceBusyError(DeviceError):
    """An action was submitted to a device that is locked by another action."""

    transient = True


class ActionFailedError(DeviceError):
    """An action executed on a device but did not complete correctly."""

    def __init__(self, message: str, *, reason: str = "unknown") -> None:
        super().__init__(message)
        #: Machine-readable failure reason: ``timeout``, ``blurred``,
        #: ``wrong_position``, ``device_crash``, ``no_coverage`` ...
        self.reason = reason


class CommunicationError(AortaError):
    """A transport-level failure in the uniform communication layer."""

    transient = True


class ConnectionTimeoutError(CommunicationError):
    """connect() or a request/response exchange exceeded its deadline."""


class ProfileError(AortaError):
    """A device or action profile is malformed or inconsistent."""


class QueryError(AortaError):
    """Base class for declarative-interface errors."""


class ParseError(QueryError):
    """The SQL text could not be parsed."""

    def __init__(self, message: str, *, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindingError(QueryError):
    """A query referenced an unknown table, attribute, action or function."""


class PlanError(QueryError):
    """A valid AST could not be turned into an executable plan."""


class SchedulingError(AortaError):
    """The action workload scheduling subsystem was misused."""


class InfeasibleScheduleError(SchedulingError):
    """A request has an empty candidate device set."""


class RegistrationError(AortaError):
    """An action, query or device was registered twice or inconsistently."""


class OverloadError(AortaError):
    """The overload-control plane refused or dropped work.

    Overload conditions heal when offered load falls (queues drain,
    token buckets refill), so these errors are transient: a producer
    that backs off and re-offers later may succeed.
    """

    transient = True


class AdmissionError(OverloadError):
    """Admission control rejected a query registration or a request."""


class QueueFullError(OverloadError):
    """A bounded pending queue refused a submission (backpressure).

    Raised by :meth:`~repro.plan.action_op.SharedActionOperator.submit`
    when the operator's queue is at its limit and the incoming request
    is the least worth keeping. The producer should treat this as a
    deferred-retry signal, not a permanent failure.
    """


class ShardingError(AortaError):
    """The sharded fleet coordinator was misused.

    Raised for placement violations (a device no region placement
    knows, a shard index out of range), operations that need a single
    shard (snapshot SELECT on a multi-shard fleet), and requests whose
    candidate devices are registered on no shard.
    """
