"""Exception hierarchy for the Aorta framework.

Every error raised by :mod:`repro` derives from :class:`AortaError`, so
applications can catch framework failures with a single ``except`` clause
while still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class AortaError(Exception):
    """Base class for all Aorta framework errors."""


class SimulationError(AortaError):
    """The discrete-event kernel was used incorrectly."""


class DeviceError(AortaError):
    """A device-level failure (unknown device, bad operation, crash)."""


class DeviceUnavailableError(DeviceError):
    """The device did not respond within its probe TIMEOUT."""


class DeviceBusyError(DeviceError):
    """An action was submitted to a device that is locked by another action."""


class ActionFailedError(DeviceError):
    """An action executed on a device but did not complete correctly."""

    def __init__(self, message: str, *, reason: str = "unknown") -> None:
        super().__init__(message)
        #: Machine-readable failure reason: ``timeout``, ``blurred``,
        #: ``wrong_position``, ``device_crash``, ``no_coverage`` ...
        self.reason = reason


class CommunicationError(AortaError):
    """A transport-level failure in the uniform communication layer."""


class ConnectionTimeoutError(CommunicationError):
    """connect() or a request/response exchange exceeded its deadline."""


class ProfileError(AortaError):
    """A device or action profile is malformed or inconsistent."""


class QueryError(AortaError):
    """Base class for declarative-interface errors."""


class ParseError(QueryError):
    """The SQL text could not be parsed."""

    def __init__(self, message: str, *, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindingError(QueryError):
    """A query referenced an unknown table, attribute, action or function."""


class PlanError(QueryError):
    """A valid AST could not be turned into an executable plan."""


class SchedulingError(AortaError):
    """The action workload scheduling subsystem was misused."""


class InfeasibleScheduleError(SchedulingError):
    """A request has an empty candidate device set."""


class RegistrationError(AortaError):
    """An action, query or device was registered twice or inconsistently."""
