"""The pluggable runtime layer.

Every component of the engine — communication, transport, locks,
devices, dispatcher, continuous executor, observability — programs
against the small :class:`Runtime` protocol defined here instead of a
concrete backend. Two backends satisfy it today:

* ``"virtual"`` — :class:`~repro.sim.kernel.Environment`, the
  discrete-event kernel on a virtual clock (default; experiments run
  as fast as the host allows);
* ``"realtime"`` — :class:`~repro.sim.realtime.RealtimeRuntime`, the
  same engine core paced against the wall clock with a configurable
  ``time_scale`` (``0`` ⇒ fire timers immediately; ``1.0`` ⇒ real
  seconds).

Pick one by name through :func:`create_runtime`, or via
``EngineConfig(runtime="realtime", time_scale=...)``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SimulationError
from repro.runtime.fleet import (
    RoundBudgetError,
    RoundPeer,
    RoundResult,
    run_lockstep,
    run_parallel_rounds,
)
from repro.runtime.protocol import Runtime
from repro.sim import Environment, RealtimeRuntime

#: Backend alias: the virtual-time environment *is* a runtime.
VirtualRuntime = Environment

#: Backend names accepted by :func:`create_runtime` and
#: ``EngineConfig.runtime``.
RUNTIME_NAMES = ("virtual", "realtime")


def create_runtime(
    name: str = "virtual",
    *,
    start: float = 0.0,
    time_scale: float = 1.0,
    **options: Any,
) -> Runtime:
    """Build a runtime backend by name.

    ``time_scale`` (and any extra keyword ``options``, e.g. ``strict``)
    only apply to the realtime backend; the virtual backend accepts and
    ignores them so callers can switch backends with one string.
    """
    if name == "virtual":
        return Environment(start)
    if name == "realtime":
        return RealtimeRuntime(start, time_scale=time_scale, **options)
    raise SimulationError(
        f"unknown runtime backend {name!r}; expected one of {RUNTIME_NAMES}")


__all__ = [
    "RUNTIME_NAMES",
    "RealtimeRuntime",
    "Runtime",
    "VirtualRuntime",
    "create_runtime",
    "RoundBudgetError",
    "RoundPeer",
    "RoundResult",
    "run_lockstep",
    "run_parallel_rounds",
]
