"""The Runtime protocol: what components may ask of a backend.

The surface is deliberately small — a clock, sleeping, event
wait/trigger, process spawning, and quiescence — because everything a
pervasive query engine does reduces to those five capabilities. Any
object structurally providing them can host the engine; nothing
outside :mod:`repro.sim` may assume a concrete backend class.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

from repro.sim.events import PRIORITY_NORMAL, Event, Timeout
from repro.sim.process import Process, ProcessGenerator


@runtime_checkable
class Runtime(Protocol):
    """Structural interface of a runtime backend.

    Both backends inherit the one implementation of this surface from
    :class:`~repro.sim.base.BaseRuntime`; the protocol exists so
    components *type* against the capability, not the class — which is
    what lets future backends (asyncio serving, live device buses)
    slot in without touching them.
    """

    #: Human-readable backend identifier ("virtual", "realtime", ...).
    backend_name: str

    @property
    def now(self) -> float:
        """Current runtime time in seconds."""
        ...

    def event(self) -> Event:
        """A fresh, untriggered event to wait on or trigger."""
        ...

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` runtime seconds from now."""
        ...

    def sleep(self, delay: float) -> Timeout:
        """Alias of :meth:`timeout` for readable process code."""
        ...

    def process(self, generator: ProcessGenerator) -> Process:
        """Spawn ``generator`` as a concurrent process."""
        ...

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Enqueue a triggered event's callbacks to run after ``delay``."""
        ...

    def step(self) -> None:
        """Process the single next pending event."""
        ...

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> float:
        """Run to quiescence, a deadline, or an event budget."""
        ...

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        ...

    @property
    def events_processed(self) -> int:
        """Total events processed over this runtime's lifetime."""
        ...
