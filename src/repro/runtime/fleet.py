"""Coordinated advancement of a fleet of runtimes.

A sharded fleet runs one runtime per shard. The shards own disjoint
device sets, so their event streams never interact directly — but
fleet-level state (the shared capacity ledger, merged statistics read
mid-run) is sampled across shard clocks, and letting one shard race
hours ahead of another would make those reads meaningless. The
lockstep runner bounds the skew: it advances every runtime in rounds
of at most ``quantum`` runtime seconds, so no shard's clock is ever
more than one quantum ahead of the slowest.

Each per-runtime ``run`` call inside a round carries the caller's
``max_events`` as a watchdog: a runaway process on one shard raises
:class:`~repro.errors.SimulationError` with queue diagnostics instead
of stalling the whole fleet silently.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import SimulationError
from repro.runtime.protocol import Runtime


def run_lockstep(
    runtimes: Sequence[Runtime],
    until: float,
    *,
    quantum: float = 1.0,
    max_events: Optional[int] = None,
) -> float:
    """Advance every runtime to ``until`` in bounded-skew rounds.

    Runtimes are stepped in sequence order within each round, so the
    schedule is deterministic. A runtime already past the round's
    deadline (because a previous coordinated run advanced it further)
    is skipped for that round — ``run`` with a non-decreasing deadline
    is the only call ever issued. Returns ``until``.
    """
    if quantum <= 0:
        raise SimulationError(f"lockstep quantum must be positive, "
                              f"got {quantum}")
    if not runtimes:
        raise SimulationError("run_lockstep needs at least one runtime")
    floor = min(runtime.now for runtime in runtimes)
    if until < floor:
        raise SimulationError(
            f"cannot run lockstep to t={until}: a runtime is already "
            f"at t={floor}")
    deadline = floor
    while deadline < until:
        deadline = min(deadline + quantum, until)
        for runtime in runtimes:
            if runtime.now <= deadline:
                runtime.run(until=deadline, max_events=max_events)
    return until
