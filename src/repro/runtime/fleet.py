"""Coordinated advancement of a fleet of runtimes.

A sharded fleet runs one runtime per shard. The shards own disjoint
device sets, so their event streams never interact directly — but
fleet-level state (the shared capacity ledger, merged statistics read
mid-run) is sampled across shard clocks, and letting one shard race
hours ahead of another would make those reads meaningless. The
round-barrier loops here bound the skew: every runtime advances in
rounds of at most ``quantum`` runtime seconds, so no shard's clock is
ever more than one quantum ahead of the slowest.

Two loops share the round semantics:

* :func:`run_lockstep` steps local runtimes sequentially on the
  calling thread (the serial coordinator path);
* :func:`run_parallel_rounds` drives :class:`RoundPeer` workers —
  remote engines that run their rounds concurrently — with an explicit
  barrier per round: broadcast the deadline, then collect every
  worker's result *in peer order* before opening the next round, so
  completion merges never depend on arrival order.

``max_events`` is a **fleet-wide cumulative budget**: the events every
shard consumes in every round count against one shared allowance, and
exhausting it raises :class:`~repro.errors.SimulationError` carrying
per-shard queue diagnostics instead of stalling silently. (It used to
be a per-call watchdog, which let a fleet process ``rounds x shards x
max_events`` events before firing.) The budget only fires when due
work remains: a run that consumes exactly its allowance and quiesces
is not an error. In the parallel loop every worker of one round is
handed the full remaining budget — concurrent rounds cannot thread a
sequentially decremented allowance — so a runaway fleet may overshoot
by up to ``(shards - 1) x remaining`` events before the barrier
notices; it is a watchdog bound, not an exact meter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

from repro.errors import SimulationError
from repro.runtime.protocol import Runtime


@dataclass
class RoundResult:
    """What one shard reports back from one lockstep round."""

    #: The shard's clock after the round (== the round deadline).
    now: float
    #: Events the shard processed during the round.
    events: int
    #: Wall-clock seconds the shard spent computing the round.
    busy_seconds: float = 0.0
    #: Events still pending in the shard's queue after the round.
    pending: int = 0


class RoundBudgetError(SimulationError):
    """A shard exhausted its event allowance inside one round.

    Raised by a :class:`RoundPeer`'s ``finish_round`` so the barrier
    loop can tell budget exhaustion (aggregate into a fleet-wide
    diagnostic) from other simulation errors (propagate as-is). Carries
    the shard's state at the moment the watchdog fired.
    """

    def __init__(self, message: str, *, now: float = 0.0,
                 events: int = 0, pending: int = 0) -> None:
        super().__init__(message)
        self.now = now
        self.events = events
        self.pending = pending


class RoundPeer(Protocol):
    """A shard the parallel barrier loop can drive through rounds.

    ``begin_round`` must only *submit* the round (non-blocking), so the
    loop can start every peer before waiting on any; ``finish_round``
    blocks until that peer's round completes and either returns its
    :class:`RoundResult` or raises (:class:`RoundBudgetError` for an
    exhausted event allowance, anything else for a real failure).
    """

    def now(self) -> float:
        """The peer's current runtime clock."""
        ...

    def begin_round(self, deadline: float,
                    max_events: Optional[int]) -> None:
        """Submit one round without waiting for it."""
        ...

    def finish_round(self) -> RoundResult:
        """Block until the submitted round completes."""
        ...


def _validate(quantum: float, count: int, until: float,
              floor: float) -> None:
    if quantum <= 0:
        raise SimulationError(f"lockstep quantum must be positive, "
                              f"got {quantum}")
    if not count:
        raise SimulationError("a lockstep fleet needs at least one "
                              "runtime")
    if until < floor:
        raise SimulationError(
            f"cannot run lockstep to t={until}: a runtime is already "
            f"at t={floor}")


def _budget_exhausted(
    budget: int,
    shard_states: Sequence[Tuple[float, int]],
) -> SimulationError:
    """The fleet-wide watchdog error, with per-shard queue diagnostics."""
    queues = ", ".join(
        f"shard {index}: t={now:.6f} pending={pending}"
        for index, (now, pending) in enumerate(shard_states))
    return SimulationError(
        f"fleet event budget exhausted: max_events={budget} consumed "
        f"across lockstep rounds with work still due ({queues}); a "
        f"shard is likely scheduling events faster than it completes "
        f"them")


def run_lockstep(
    runtimes: Sequence[Runtime],
    until: float,
    *,
    quantum: float = 1.0,
    max_events: Optional[int] = None,
) -> float:
    """Advance every runtime to ``until`` in bounded-skew rounds.

    Runtimes are stepped in sequence order within each round, so the
    schedule is deterministic. A runtime already past the round's
    deadline (because a previous coordinated run advanced it further)
    is skipped for that round — ``run`` with a non-decreasing deadline
    is the only call ever issued. ``max_events`` is the fleet-wide
    cumulative budget described in the module docstring. Returns
    ``until``.
    """
    _validate(quantum, len(runtimes), until,
              min(runtime.now for runtime in runtimes)
              if runtimes else until)
    deadline = min(runtime.now for runtime in runtimes)
    remaining = max_events
    while deadline < until:
        deadline = min(deadline + quantum, until)
        for runtime in runtimes:
            if runtime.now > deadline:
                continue
            before = runtime.events_processed
            try:
                runtime.run(until=deadline, max_events=remaining)
            except SimulationError as error:
                used = runtime.events_processed - before
                if remaining is not None and used >= remaining:
                    assert max_events is not None
                    raise _budget_exhausted(
                        max_events,
                        [(peer.now, peer.pending_events)
                         for peer in runtimes]) from error
                raise
            if remaining is not None:
                remaining -= runtime.events_processed - before
    return until


#: Observer invoked after each successful parallel round with
#: ``(deadline, wall_seconds, results)`` — the hook the coordinator
#: uses for per-round wall-clock metrics and barrier-wait accounting.
RoundObserver = Callable[[float, float, List[RoundResult]], None]


def run_parallel_rounds(
    peers: Sequence[RoundPeer],
    until: float,
    *,
    quantum: float = 1.0,
    max_events: Optional[int] = None,
    on_round: Optional[RoundObserver] = None,
) -> float:
    """Advance every peer to ``until``, one barriered round at a time.

    Mirrors :func:`run_lockstep` exactly — same floor, same
    ``min(deadline + quantum, until)`` round deadlines, same
    skip-if-ahead rule (peers self-gate), same cumulative
    ``max_events`` budget — except that the peers compute their rounds
    concurrently. Determinism rule: results are collected in **peer
    order**, never arrival order, so everything downstream of the
    barrier (budget accounting, completion merges, metrics) is
    independent of scheduling noise.

    If any peer fails mid-round, the loop still drains every other
    peer's reply (keeping the pipes in lockstep for teardown), then
    raises for the lowest-indexed failure; budget exhaustion aggregates
    all peers into one fleet-wide diagnostic. Returns ``until``.
    """
    _validate(quantum, len(peers), until,
              min(peer.now() for peer in peers) if peers else until)
    deadline = min(peer.now() for peer in peers)
    remaining = max_events
    while deadline < until:
        deadline = min(deadline + quantum, until)
        started = time.perf_counter()
        for peer in peers:
            peer.begin_round(deadline, remaining)
        results: List[Optional[RoundResult]] = []
        failures: List[Tuple[int, BaseException]] = []
        for index, peer in enumerate(peers):
            try:
                results.append(peer.finish_round())
            except BaseException as error:  # noqa: BLE001 - re-raised below
                results.append(None)
                failures.append((index, error))
        wall_seconds = time.perf_counter() - started
        if failures:
            exhausted = {index: error for index, error in failures
                         if isinstance(error, RoundBudgetError)}
            if len(exhausted) == len(failures) and max_events is not None:
                states = [
                    (result.now, result.pending) if result is not None
                    else (exhausted[index].now, exhausted[index].pending)
                    for index, result in enumerate(results)
                ]
                raise _budget_exhausted(max_events, states)
            failures.sort(key=lambda pair: pair[0])
            raise failures[0][1]
        done = [result for result in results if result is not None]
        if remaining is not None:
            remaining = max(0, remaining
                            - sum(result.events for result in done))
        if on_round is not None:
            on_round(deadline, wall_seconds, done)
    return until
