"""Structured engine tracing.

A lightweight, always-on event log of what the engine did and when (in
virtual time): events detected, requests emitted, batches dispatched,
actions serviced or failed, probes missed. Tests and operators read it
instead of sprinkling print statements through the engine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

from repro.errors import AortaError

#: Known trace kinds, for documentation and filtering.
TRACE_KINDS = (
    "event_detected",
    "request_emitted",
    "batch_dispatched",
    "request_serviced",
    "request_failed",
    "probe_failed",
    "query_registered",
    "query_dropped",
    # Fault-tolerance layer: retries, failover re-dispatch, quarantine.
    "request_retry",
    "request_failed_over",
    "device_quarantined",
    "device_probation",
    "device_readmitted",
    # Observability layer: one record per closed virtual-time span.
    "span",
    # Overload-control plane: admission refusals, shed work and the
    # hysteresis edges of pressure shedding.
    "request_rejected",
    "request_shed",
    "query_rejected",
    "shedding_started",
    "shedding_stopped",
)

_KNOWN_KINDS = frozenset(TRACE_KINDS)


@dataclass(frozen=True)
class TraceRecord:
    """One engine occurrence at a point in virtual time."""

    at: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Any:
        return self.fields[name]

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.at:10.3f}s] {self.kind:18s} {details}"


class EngineTracer:
    """Collects trace records; optionally bounded to the newest N.

    Bounded retention rides on ``deque(maxlen=...)``, so recording past
    the cap evicts the oldest record in O(1) instead of shifting the
    whole buffer. ``strict=True`` rejects kinds missing from
    :data:`TRACE_KINDS` at record time — the exhaustiveness tests use
    it to prove no emitter can mint an undocumented kind.
    """

    def __init__(self, max_records: Optional[int] = 10_000,
                 strict: bool = False) -> None:
        self.max_records = max_records
        self.strict = strict
        self._records: Deque[TraceRecord] = deque(maxlen=max_records)
        #: Optional live listener (e.g. print) invoked on every record.
        self.listener: Optional[Callable[[TraceRecord], None]] = None

    def record(self, at: float, kind: str, **fields: Any) -> TraceRecord:
        """Append one record (oldest evicted past ``max_records``)."""
        if self.strict and kind not in _KNOWN_KINDS:
            raise AortaError(
                f"trace kind {kind!r} is not declared in TRACE_KINDS")
        entry = TraceRecord(at=at, kind=kind, fields=fields)
        self._records.append(entry)
        if self.listener is not None:
            self.listener(entry)
        return entry

    @property
    def records(self) -> List[TraceRecord]:
        """All retained records, oldest first (a copy)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(list(self._records))

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, oldest first."""
        return [r for r in self._records if r.kind == kind]

    def since(self, timestamp: float) -> List[TraceRecord]:
        """Records at or after ``timestamp``."""
        return [r for r in self._records if r.at >= timestamp]

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()

    def tail(self, count: int = 20) -> str:
        """The newest records, rendered one per line."""
        entries = list(self._records)
        return "\n".join(str(r) for r in entries[-count:])
