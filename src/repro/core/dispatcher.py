"""The dispatcher: probe, cost-optimize, schedule and execute batches.

This is the "optimizer" of Sections 4–5 at run time: action requests
appearing in a shared action operator "at the same time or within a
short time interval" are drained as one batch, candidates are probed
(unavailable devices excluded), costs estimated from probed status, the
configured scheduling algorithm assigns requests to devices, and
per-device executors service their queues under device locks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Generator, Hashable, List, Optional, Tuple

from repro.errors import (
    ActionFailedError,
    AortaError,
    CommunicationError,
    DeviceError,
    QueryError,
    QueueFullError,
    SchedulingError,
    is_transient,
)
from repro.actions.action import ActionDefinition
from repro.actions.request import ActionRequest, RequestState
from repro.comm.layer import CommunicationLayer
from repro.comm.status_cache import DeviceStatusCache
from repro.cost.model import CostModel
from repro.devices.base import Device
from repro.devices.health import DeviceHealthTracker
from repro.plan.action_op import SharedActionOperator
from repro.scheduling import (
    HAVE_NUMPY,
    BlockModelKernel,
    CachingCostModel,
    IncrementalScheduler,
    LerfaSrfeScheduler,
    ListScheduler,
    Problem,
    RandomScheduler,
    SchedRequest,
    Scheduler,
    SchedulingCostModel,
    SimulatedAnnealingScheduler,
    SrfaeScheduler,
    freeze_status,
)
from repro.obs.spans import NULL_OBS, Observability, SpanContext
from repro.overload.plane import OverloadControlPlane
from repro.overload.shedding import REASON_DEADLINE
from repro.runtime import Runtime
from repro.sim import Event
from repro.sim.rng import component_seed
from repro.sync.locks import DeviceLockManager, LockToken
from repro.core.config import EngineConfig, RetryPolicy

#: Factories of the five evaluated algorithms, keyed by config name.
SCHEDULER_FACTORIES = {
    "LERFA+SRFE": LerfaSrfeScheduler,
    "SRFAE": SrfaeScheduler,
    "LS": ListScheduler,
    "SA": SimulatedAnnealingScheduler,
    "RANDOM": RandomScheduler,
}


class _ActionCostAdapter(SchedulingCostModel):
    """Bridges the engine cost model into a scheduling problem.

    Request payloads are the :class:`ActionRequest` objects; statuses
    are physical-status dicts from probing. The adapter is
    deterministic (profile interpolation has no noise), so schedulers
    route it through their memoizing cost oracle — repeated
    ``(request, device, status)`` triples inside one batch hit the
    cache instead of re-running quantity resolution and profile
    estimation.
    """

    deterministic = True
    #: An estimate runs quantity resolution + profile interpolation —
    #: roughly an order of magnitude over a memo probe — so the
    #: schedulers' "auto" policy caches this model.
    cache_by_default = True

    def __init__(
        self,
        cost_model: CostModel,
        action: ActionDefinition,
        devices: Dict[str, Device],
        initial_statuses: Dict[str, Dict[str, float]],
    ) -> None:
        self._cost_model = cost_model
        self._action = action
        self._devices = devices
        self._initial = initial_statuses

    def initial_status(self, device_id: str) -> Dict[str, float]:
        return self._initial[device_id]

    def rebind(self, devices: Dict[str, Device],
               initial_statuses: Dict[str, Dict[str, float]]) -> None:
        """Point the adapter at the current batch's probed world.

        The incremental dispatch path keeps one adapter (and one
        memoizing cache wrapping it) alive across recurring batches;
        each batch swaps in its own device table and probed statuses.
        """
        self._devices = devices
        self._initial = initial_statuses

    def estimate(self, request: SchedRequest, device_id: str,
                 status: Any) -> Tuple[float, Any]:
        action_request: ActionRequest = request.payload
        estimate = self._cost_model.estimate(
            self._action.name, self._devices[device_id],
            action_request.arguments, status=status)
        return estimate.seconds, estimate.post_status

    def make_column_kernel(self, problem: Problem) -> Optional[
            BlockModelKernel]:
        """A vectorized kernel over the engine cost model's block path.

        Declines (scalar fallback) without numpy or when any device in
        the problem lacks a registered block resolver for this action.
        """
        if not HAVE_NUMPY:
            return None
        device_types = {self._devices[device_id].device_type
                        for device_id in problem.device_ids}
        if not all(self._cost_model.supports_block(self._action.name,
                                                   device_type)
                   for device_type in device_types):
            return None
        return BlockModelKernel(
            self._cost_model, self._action.name, self._devices,
            [request.payload.arguments for request in problem.requests])


def _service_order(request: ActionRequest) -> Tuple[int, float, float]:
    """Within-device service order under overload control.

    Highest tier first, then tightest deadline, then oldest. The sort
    is stable, so requests tied on all three keep the scheduler's
    completion-time-optimal order.
    """
    deadline = request.deadline if request.deadline is not None \
        else float("inf")
    return (-request.priority, deadline, request.created_at)


def _request_fingerprint(request: SchedRequest) -> Hashable:
    """Cross-batch identity of an engine action request.

    The engine allocates a fresh ``request_id`` for every emission, so
    recurring batches of the same logical work carry disjoint ids; the
    warm-start scheduler matches them by content instead: action name,
    candidate set and frozen arguments. Unfreezable argument values
    degrade to payload identity (never matches across batches — a full
    run, not a wrong splice).
    """
    action_request: ActionRequest = request.payload
    try:
        args_key: Hashable = freeze_status(action_request.arguments)
    except SchedulingError:
        args_key = id(action_request)
    return (action_request.action_name, request.candidates, args_key)


@dataclass
class _IncrementalActionState:
    """Warm-start machinery kept alive across one action's batches."""

    adapter: _ActionCostAdapter
    cache: CachingCostModel
    scheduler: IncrementalScheduler


@dataclass
class DispatchReport:
    """Outcome of dispatching one batch of one action's requests."""

    action_name: str
    batch_size: int
    scheduled: int
    unschedulable: int
    serviced: int
    failed: int
    scheduling_seconds: float
    batch_started_at: float
    batch_finished_at: float
    #: Hit/miss counters of the scheduler's memoizing cost oracle for
    #: this batch (None when caching was off or nothing was scheduled).
    cache_stats: Optional[Dict[str, float]] = None
    #: Fault-tolerance accounting (all zero with the default policy).
    #: Execution attempts made for this batch's requests.
    attempts: int = 0
    #: Same-device retries after transient failures.
    retries: int = 0
    #: Requests re-queued for failover re-dispatch in a later batch
    #: (alive, so counted in neither ``serviced`` nor ``failed``).
    failed_over: int = 0
    #: Candidate devices excluded up front by an open circuit breaker.
    quarantined_skipped: int = 0

    @property
    def makespan_seconds(self) -> float:
        """Batch appearance to last completion, the Section 5 makespan."""
        return self.batch_finished_at - self.batch_started_at


class Dispatcher:
    """Drains shared action operators and drives execution on devices."""

    def __init__(
        self,
        env: Runtime,
        comm: CommunicationLayer,
        cost_model: CostModel,
        locks: DeviceLockManager,
        config: EngineConfig,
        scheduler: Optional[Scheduler] = None,
        tracer: Optional["EngineTracer"] = None,
        health: Optional[DeviceHealthTracker] = None,
        obs: Optional[Observability] = None,
        status_cache: Optional[DeviceStatusCache] = None,
        overload: Optional[OverloadControlPlane] = None,
    ) -> None:
        from repro.core.tracing import EngineTracer
        self.env = env
        self.comm = comm
        self.cost_model = cost_model
        self.locks = locks
        self.config = config
        #: Metrics + spans (the shared disabled instance by default).
        self.obs = obs if obs is not None else NULL_OBS
        #: Per-device circuit breakers (None = health tracking off).
        self.health = health
        #: TTL device-status cache (None = every batch probes every
        #: candidate, the pre-fastpath behaviour).
        self.status_cache = status_cache
        # Note: an empty tracer is falsy (it has __len__), so test
        # identity, not truthiness.
        self.tracer = tracer if tracer is not None else EngineTracer()
        if scheduler is None:
            factory = SCHEDULER_FACTORIES[config.scheduler]
            scheduler = factory(config.scheduler_seed,
                                vectorize=config.vectorize)
        self.scheduler = scheduler
        #: Per-action warm-start state (adapter + shared cost cache +
        #: incremental scheduler), built lazily when config.incremental.
        self._incremental: Dict[str, _IncrementalActionState] = {}
        if config.incremental:
            # Dirty-set signals the engine already emits: breaker
            # transitions and status-cache invalidations both mean the
            # device's last-known state is untrustworthy, so its cached
            # cost estimates and previous placements are stale too.
            if health is not None:
                health.transition_listeners.append(
                    lambda device_id, state: self._mark_dirty(device_id))
            if status_cache is not None:
                status_cache.invalidation_listeners.append(
                    lambda device_id, reason: self._mark_dirty(device_id))
        self._operators: Dict[str, SharedActionOperator] = {}
        #: The overload-control plane (None = overload control off, the
        #: pre-overload behaviour: unbounded queues, no admission, no
        #: shedding).
        self.overload = overload
        if overload is not None:
            overload.bind(
                operators=lambda: list(self._operators.values()),
                shed=self.shed_request)
        self._wakeup: Optional[Event] = None
        self._running = False
        #: Deterministic jitter stream for retry backoff, derived from
        #: the engine seed so fault-tolerant runs replay exactly.
        self._retry_rng = random.Random(
            component_seed(config.scheduler_seed, "dispatcher:retry-jitter"))
        #: All requests that went through dispatch, in completion order.
        self.completed: List[ActionRequest] = []
        self.reports: List[DispatchReport] = []
        #: Running outcome counters, so statistics() is O(1) instead of
        #: rescanning `completed` on every call.
        self.serviced_total = 0
        self.failed_total = 0
        #: Fault-tolerance counters (all stay zero with retries off).
        self.attempts_total = 0
        self.retries_total = 0
        self.failovers_total = 0
        #: Overload counter (stays zero with overload control off).
        self.shed_total = 0

    # ------------------------------------------------------------------
    # Incremental warm-start state
    # ------------------------------------------------------------------
    def _mark_dirty(self, device_id: str) -> None:
        """Propagate a dirty-device signal to every action's warm state."""
        for state in self._incremental.values():
            state.scheduler.mark_dirty(device_id)
            state.cache.invalidate_device(device_id)

    def _incremental_state(
            self, action: ActionDefinition) -> _IncrementalActionState:
        state = self._incremental.get(action.name)
        if state is None:
            adapter = _ActionCostAdapter(self.cost_model, action, {}, {})
            cache = CachingCostModel(adapter, track_devices=True)
            state = _IncrementalActionState(
                adapter=adapter,
                cache=cache,
                scheduler=IncrementalScheduler(
                    self.scheduler, cost_cache=cache,
                    fingerprint=_request_fingerprint),
            )
            self._incremental[action.name] = state
        return state

    @property
    def incremental_stats(self) -> Dict[str, float]:
        """Warm-start counters summed over actions (engine statistics)."""
        totals: Dict[str, float] = {}
        for state in self._incremental.values():
            for key, value in state.scheduler.stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------------
    # Shared action operators
    # ------------------------------------------------------------------
    def operator_for(self, action: ActionDefinition) -> SharedActionOperator:
        """The (single) shared operator of one action, created lazily."""
        if action.name not in self._operators:
            operator = SharedActionOperator(action)
            operator.on_submit = self._on_submit
            if self.overload is not None:
                self.overload.configure_operator(
                    operator, on_evict=self.shed_request)
            self._operators[action.name] = operator
        return self._operators[action.name]

    def _on_submit(self, request: ActionRequest) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def submit(self, operator: SharedActionOperator,
               request: ActionRequest) -> bool:
        """Submit one request, through the overload plane when present.

        Without overload control this is a plain operator submit that
        always succeeds; with it, the request passes admission control
        and bounded-queue backpressure first and may come back False
        (the request is then marked REJECTED and fully accounted).
        """
        if self.overload is None:
            operator.submit(request)
            return True
        return self.overload.offer(operator, request)

    def shed_request(self, request: ActionRequest, reason: str) -> None:
        """Uniform shed accounting for every drop path.

        Deadline expiry, pressure shedding, queue eviction and
        backpressure on failover re-queue all land here: the request is
        marked SHED, enters the completion log, and is traced and
        counted once — no path leaks dropped work into pending counts.
        """
        request.mark_shed(self.env.now, reason)
        self.completed.append(request)
        self.shed_total += 1
        self.tracer.record(
            self.env.now, "request_shed", request=request.request_id,
            action=request.action_name, query=request.query_id,
            priority=request.priority, reason=reason)
        if self.overload is not None:
            self.overload.note_shed(request, reason)

    @property
    def pending_requests(self) -> int:
        return sum(op.pending_count for op in self._operators.values())

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the dispatch loop as a simulation process."""
        if self._running:
            raise AortaError("dispatcher already started")
        self._running = True
        self.env.process(self._run())

    def _run(self) -> Generator[Any, Any, None]:
        while True:
            if self.pending_requests == 0:
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
            # Batch near-simultaneous submissions (group optimization).
            if self.config.batch_window > 0:
                yield self.env.timeout(self.config.batch_window)
            yield from self.dispatch_pending()

    def dispatch_pending(self) -> Generator[Any, Any, List[DispatchReport]]:
        """Drain every operator and dispatch its batch. Synchronous
        callers (tests, benchmarks) may drive this directly instead of
        running the loop.

        Iterates a snapshot of the operator table: dispatching a batch
        can create operators mid-drain (failover re-dispatch registers
        the shared operator lazily), which must not mutate the dict
        under this loop. With ``config.concurrent_dispatch`` each
        action's batch runs as its own sim process, so independent
        actions' probe/schedule/execute pipelines overlap; reports come
        back in operator order either way.
        """
        operators = list(self._operators.values())
        if self.config.concurrent_dispatch:
            batches = [(operator, batch) for operator in operators
                       for batch in [operator.drain()] if batch]
            if len(batches) > 1:
                dispatches = [
                    self.env.process(
                        self.dispatch_batch(operator.action, batch)
                    ).defuse()
                    for operator, batch in batches]
                reports = []
                for dispatch in dispatches:
                    report = yield dispatch
                    reports.append(report)
                return reports
            reports = []
            for operator, batch in batches:
                report = yield from self.dispatch_batch(operator.action,
                                                        batch)
                reports.append(report)
            return reports
        reports = []
        for operator in operators:
            batch = operator.drain()
            if batch:
                report = yield from self.dispatch_batch(operator.action,
                                                        batch)
                reports.append(report)
        return reports

    # ------------------------------------------------------------------
    # One batch: probe -> schedule -> execute
    # ------------------------------------------------------------------
    def dispatch_batch(
        self, action: ActionDefinition, batch: List[ActionRequest]
    ) -> Generator[Any, Any, DispatchReport]:
        # Detached: the batch runs as its own sim process, interleaved
        # with continuous polls — dynamic nesting would misparent them.
        batch_span = self.obs.span("dispatch.batch", detached=True,
                                   action=action.name, size=len(batch))
        with batch_span:
            report = yield from self._dispatch_batch(action, batch,
                                                     batch_span)
        return report

    def _dispatch_batch(
        self, action: ActionDefinition, batch: List[ActionRequest],
        batch_span: Any,
    ) -> Generator[Any, Any, DispatchReport]:
        batch_started = self.env.now
        policy = self.config.retry
        if self.overload is not None:
            # Shed already-expired requests before spending probe and
            # scheduling work on them — a late answer has no value.
            alive: List[ActionRequest] = []
            for request in batch:
                if request.deadline_expired(batch_started):
                    self.shed_request(request, REASON_DEADLINE)
                else:
                    alive.append(request)
            batch = alive
        if policy.failover:
            # Failover re-dispatch re-enters through the shared
            # operator, so make sure it exists even for direct callers.
            self.operator_for(action)
        devices = self._candidate_devices(batch)

        # Quarantine gate: a device with an open circuit breaker is
        # excluded before probing — it gets no traffic at all until its
        # backoff window expires and a probation probe readmits it.
        quarantined_skipped = 0
        if self.health is not None:
            for device_id in list(devices):
                if not self.health.allow_candidate(device_id):
                    del devices[device_id]
                    quarantined_skipped += 1

        statuses: Dict[str, Dict[str, float]] = {}
        available: set[str] = set()
        if self.config.probing:
            device_list = list(devices.values())
            to_probe = device_list
            if self.status_cache is not None:
                # Fresh cache entries stand in for the probe exchange:
                # the device was seen within its type's TTL, so cost it
                # from that status and skip the wire round-trips.
                to_probe = []
                for device in device_list:
                    cached = self.status_cache.lookup(device)
                    if cached is not None:
                        available.add(device.device_id)
                        statuses[device.device_id] = cached
                    else:
                        to_probe.append(device)
            results = yield from self.comm.prober.probe_all(
                to_probe, parent_span=batch_span)
            for device, result in zip(to_probe, results):
                if result.available:
                    available.add(device.device_id)
                    statuses[device.device_id] = result.status
                    if self.status_cache is not None:
                        self.status_cache.store(device, result.status)
                else:
                    if self.status_cache is not None:
                        self.status_cache.invalidate(
                            device.device_id, reason="probe-failure")
                    self.tracer.record(
                        self.env.now, "probe_failed",
                        device=device.device_id, error=result.error)
        else:
            # Probing disabled: the optimizer has no availability
            # information, so every candidate is assumed reachable and
            # costed from its last-known status; execution on a dead
            # device then fails (the Section 4 ablation).
            for device_id, device in devices.items():
                available.add(device_id)
                statuses[device_id] = device.physical_status()

        schedulable: List[ActionRequest] = []
        usable: Dict[str, Tuple[str, ...]] = {}
        unschedulable = 0
        failed_over = 0
        for request in batch:
            request.dispatches += 1
            candidates = tuple(
                device_id for device_id in request.candidates
                if device_id in available)
            if candidates:
                if policy.failover:
                    # Keep the full candidate set on the request: a
                    # device that is merely down this batch may service
                    # the request after a failover re-dispatch.
                    usable[request.request_id] = candidates
                else:
                    request.candidates = candidates
                schedulable.append(request)
            elif self._requeue_for_failover(request, None,
                                            "no available candidate"):
                # Backpressure on the re-queue sheds instead (handled
                # inside _requeue_for_failover); only a still-pending
                # request counts as failed over.
                if request.state is RequestState.PENDING:
                    failed_over += 1
            else:
                request.mark_failed(self.env.now, "no available candidate")
                self.completed.append(request)
                self.failed_total += 1
                unschedulable += 1

        attempts_before = self.attempts_total
        retries_before = self.retries_total
        scheduling_seconds = 0.0
        serviced = failed = 0
        scheduler = self.scheduler
        if schedulable:
            if self.config.incremental:
                # Warm-start path: one adapter + memoizing cache +
                # incremental scheduler persist across this action's
                # batches; only the probed world is swapped in.
                state = self._incremental_state(action)
                state.adapter.rebind(devices, statuses)
                cost_model: SchedulingCostModel = state.adapter
                scheduler = state.scheduler
            else:
                cost_model = _ActionCostAdapter(self.cost_model, action,
                                                devices, statuses)
            problem = Problem(
                requests=tuple(
                    SchedRequest(request_id=r.request_id,
                                 candidates=(usable[r.request_id]
                                             if policy.failover
                                             else r.candidates),
                                 payload=r)
                    for r in schedulable),
                device_ids=tuple(device_id for device_id in devices
                                 if device_id in available),
                cost_model=cost_model,
                label=f"batch:{action.name}@{batch_started}",
            )
            with self.obs.span(
                    "dispatch.schedule",
                    parent=batch_span if isinstance(batch_span, SpanContext)
                    else None,
                    algorithm=scheduler.name,
                    size=len(schedulable)):
                schedule = scheduler.schedule(problem)
            scheduling_seconds = schedule.scheduling_seconds
            for request in schedulable:
                request.mark_assigned(schedule.device_of(request.request_id))

            by_id = {r.request_id: r for r in schedulable}
            executions = []
            if self.config.locking:
                for device_id, queue in schedule.assignments.items():
                    if not queue:
                        continue
                    requests = [by_id[request_id] for request_id in queue]
                    if self.overload is not None:
                        # Service high tiers first within each device
                        # queue (stable, so the scheduler's order is
                        # kept within a tier) — under pressure the
                        # work most worth doing completes first.
                        requests.sort(key=_service_order)
                    executions.append(self.env.process(
                        self._service_queue(
                            action, devices[device_id], requests,
                            batch_span)
                    ).defuse())
            else:
                # Unsynchronized: every request fires immediately and
                # concurrently — the Section 6.2 interference mode.
                for device_id, queue in schedule.assignments.items():
                    for request_id in queue:
                        executions.append(self.env.process(
                            self._service_unlocked(
                                action, devices[device_id],
                                by_id[request_id], batch_span)).defuse())
            for execution in executions:
                yield execution
            if self.config.incremental:
                # Executing moved every serviced device's head: its
                # previous placements and cached estimates are stale.
                # (The status cache, when on, also signals this via its
                # invalidation listener; marking is idempotent.)
                for device_id, queue in schedule.assignments.items():
                    if queue:
                        self._mark_dirty(device_id)
            for request in schedulable:
                if request.state is RequestState.SERVICED:
                    serviced += 1
                elif request.state is RequestState.PENDING:
                    # Requeued for failover: alive, completes later.
                    failed_over += 1
                    continue
                elif request.state is RequestState.SHED:
                    # shed_request already completed and counted it.
                    continue
                else:
                    failed += 1
                self.completed.append(request)
            self.serviced_total += serviced
            self.failed_total += failed

        report = DispatchReport(
            action_name=action.name,
            batch_size=len(batch),
            scheduled=len(schedulable),
            unschedulable=unschedulable,
            serviced=serviced,
            failed=failed,
            scheduling_seconds=scheduling_seconds,
            batch_started_at=batch_started,
            batch_finished_at=self.env.now,
            cache_stats=(scheduler.last_cache_stats
                         if schedulable else None),
            attempts=self.attempts_total - attempts_before,
            retries=self.retries_total - retries_before,
            failed_over=failed_over,
            quarantined_skipped=quarantined_skipped,
        )
        self.reports.append(report)
        obs = self.obs
        if obs.enabled:
            obs.inc("dispatch.batches", action=action.name)
            obs.observe("dispatch.batch_size", len(batch),
                        action=action.name)
            obs.inc("dispatch.requests_serviced", serviced)
            obs.inc("dispatch.requests_failed", failed + unschedulable)
            obs.inc("dispatch.requests_failed_over", failed_over)
            obs.inc("dispatch.quarantined_skipped", quarantined_skipped)
            obs.observe("dispatch.makespan_seconds",
                        report.makespan_seconds)
            obs.observe("dispatch.scheduling_wallclock_seconds",
                        scheduling_seconds,
                        algorithm=scheduler.name)
        self.tracer.record(
            self.env.now, "batch_dispatched", action=action.name,
            size=len(batch), serviced=serviced,
            failed=failed + unschedulable)
        return report

    def _candidate_devices(
        self, batch: List[ActionRequest]
    ) -> Dict[str, Device]:
        devices: Dict[str, Device] = {}
        for request in batch:
            for device_id in request.candidates:
                if device_id not in devices:
                    devices[device_id] = self.comm.registry.get(device_id)
        return devices

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _service_queue(
        self, action: ActionDefinition, device: Device,
        queue: List[ActionRequest], batch_span: Any = None,
    ) -> Generator[Any, Any, None]:
        """Service one device's queue in order, under its lock."""
        lease = self.config.lock_lease_seconds
        for index, request in enumerate(queue):
            if self.overload is not None and \
                    request.deadline_expired(self.env.now):
                # Earlier work on this device already blew the deadline:
                # shed instead of executing a worthless late action.
                self.shed_request(request, REASON_DEADLINE)
                continue
            token = LockToken(request.request_id)
            yield from self.locks.acquire(device.device_id, token,
                                          lease_seconds=lease)
            try:
                yield from self._execute_one(action, device, request,
                                             batch_span)
            finally:
                self.locks.release(device.device_id, token)
            if self.config.retry.failover and not device.reachable:
                # The device died: drain the rest of its queue back to
                # the dispatcher for reassignment instead of grinding
                # through attempts that are doomed to the same fate.
                for waiting in queue[index + 1:]:
                    if self.overload is not None and \
                            waiting.deadline_expired(self.env.now):
                        # The drain runs the same shed accounting as
                        # deadline eviction: a request that expired
                        # while queued behind the dead device is shed,
                        # not failed or leaked back into pending.
                        self.shed_request(waiting, REASON_DEADLINE)
                        continue
                    if not self._requeue_for_failover(
                            waiting, device.device_id,
                            "queue drained after device failure"):
                        waiting.mark_failed(
                            self.env.now,
                            f"device {device.device_id!r} failed while "
                            f"request was queued")
                        self.tracer.record(
                            self.env.now, "request_failed",
                            request=waiting.request_id,
                            action=waiting.action_name,
                            device=device.device_id,
                            query=waiting.query_id,
                            reason=waiting.failure_reason)
                break

    def _service_unlocked(
        self, action: ActionDefinition, device: Device,
        request: ActionRequest, batch_span: Any = None,
    ) -> Generator[Any, Any, None]:
        yield from self._execute_one(action, device, request, batch_span)

    def _execute_one(
        self, action: ActionDefinition, device: Device,
        request: ActionRequest, batch_span: Any = None,
    ) -> Generator[Any, Any, None]:
        """Run one request, retrying transient failures per the policy.

        With the default policy this is a single attempt and behaves
        exactly like the pre-fault-tolerance dispatcher. On a transient
        failure with attempts left, the request retries on its assigned
        device after an exponential, deterministically jittered backoff;
        once attempts are exhausted, failover (if enabled) re-queues the
        request for the next batch minus the failed device.
        """
        policy = self.config.retry
        execute_span = self.obs.span(
            "dispatch.execute",
            parent=batch_span if isinstance(batch_span, SpanContext)
            else None,
            detached=True,
            request=request.request_id, device=device.device_id)
        with execute_span:
            try:
                yield from self._execute_attempts(action, device, request,
                                                  policy)
            finally:
                if self.status_cache is not None:
                    # Executing on the device changed its physical
                    # status (position, battery, queue depth): the
                    # cached snapshot is stale for the next batch
                    # whatever the outcome.
                    self.status_cache.invalidate(device.device_id,
                                                 reason="execution")
        if request.state in (RequestState.PENDING, RequestState.SHED):
            # PENDING: requeued for failover — completion is traced by
            # the batch that finally services (or fails) it. SHED: the
            # failover re-queue hit backpressure and shed_request
            # already traced and completed it.
            return
        kind = ("request_serviced" if request.state is RequestState.SERVICED
                else "request_failed")
        self.tracer.record(
            self.env.now, kind, request=request.request_id,
            action=request.action_name, device=device.device_id,
            query=request.query_id, reason=request.failure_reason)

    def _execute_attempts(
        self, action: ActionDefinition, device: Device,
        request: ActionRequest, policy: RetryPolicy,
    ) -> Generator[Any, Any, None]:
        """The attempt/retry/failover loop of one request execution."""
        attempt = 0
        while True:
            attempt += 1
            request.attempts += 1
            self.attempts_total += 1
            self.obs.inc("dispatch.attempts", device=device.device_id)
            try:
                result = yield from action.execute(device,
                                                   request.arguments)
            except ActionFailedError as exc:
                transient = is_transient(exc)
                mark_reason = exc.reason
            except (DeviceError, CommunicationError, QueryError) as exc:
                transient = is_transient(exc)
                mark_reason = str(exc)
            else:
                if self.health is not None:
                    self.health.record_success(device.device_id)
                request.mark_serviced(self.env.now, result)
                return
            if transient and self.health is not None:
                self.health.record_failure(device.device_id,
                                           reason=mark_reason)
            if transient and attempt < policy.max_attempts:
                self.retries_total += 1
                self.obs.inc("dispatch.retries",
                             device=device.device_id)
                backoff = policy.backoff_seconds(attempt,
                                                 self._retry_rng)
                self.tracer.record(
                    self.env.now, "request_retry",
                    request=request.request_id,
                    device=device.device_id,
                    attempt=attempt, backoff=backoff,
                    reason=mark_reason)
                if backoff > 0:
                    yield self.env.timeout(backoff)
                continue
            if transient and self._requeue_for_failover(
                    request, device.device_id, mark_reason):
                return
            request.mark_failed(self.env.now, mark_reason)
            return

    def _requeue_for_failover(
        self, request: ActionRequest, failed_device: Optional[str],
        reason: str,
    ) -> bool:
        """Re-enter ``request`` into its operator for the next batch.

        The failed device is blacklisted from the candidate set so the
        scheduler reassigns the request to a surviving candidate.
        Returns False (caller must fail the request) when failover is
        off, the dispatch cap is reached, or no candidate would remain.
        """
        policy = self.config.retry
        if not policy.failover:
            return False
        if request.dispatches >= policy.max_dispatches:
            return False
        surviving = tuple(device_id for device_id in request.candidates
                          if device_id != failed_device)
        if not surviving:
            return False
        operator = self._operators.get(request.action_name)
        if operator is None:  # pragma: no cover - defensive
            return False
        request.mark_requeued(failed_device)
        try:
            operator.submit(request)
        except QueueFullError:
            # Bounded queue refused the re-entry: the request was
            # already admitted once, so this is a shed (accounted,
            # completed), not a silent failure. Returning True tells
            # the caller the request needs no further handling.
            self.shed_request(request, "queue-full")
            return True
        self.failovers_total += 1
        self.obs.inc("dispatch.failovers")
        self.tracer.record(
            self.env.now, "request_failed_over",
            request=request.request_id, failed_device=failed_device,
            surviving=len(surviving), dispatches=request.dispatches,
            reason=reason)
        return True
