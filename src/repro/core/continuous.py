"""Event-driven execution of registered continuous queries.

"Many pervasive computing applications have an event-driven and
action-oriented processing nature: when the application detects an
event, a pre-defined action on some type of devices is triggered."
(Section 2.2) The executor polls the event tables' scan operators —
one shared scan per table regardless of how many queries read it —
and matches each scanned tuple against the registered queries.

Two matching paths share one :class:`~repro.query.QueryCatalog` (query
lifecycle, per-query stats, edge-trigger memory):

* **scan-all** (default): every enabled query's event predicate is
  evaluated against every scanned row — O(queries x devices) per poll.
* **indexed** (``config.predicate_index``): each query's predicate is
  compiled to a :class:`~repro.query.bands.BandForm` at registration
  and filed in a per-table :class:`~repro.query.PredicateIndex`; each
  scanned row is routed to exactly the queries whose bands admit it.
  Matches are emitted query-major in registration order, so traces,
  counters and request ids are byte-identical to the scan-all path
  (golden-gated).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.errors import (
    AdmissionError,
    AortaError,
    PlanError,
    RegistrationError,
)
from repro.actions.request import ActionRequest
from repro.comm.layer import CommunicationLayer
from repro.comm.scan import ScanOperator
from repro.comm.tuples import DeviceTuple
from repro.plan.planner import ContinuousPlan
from repro.query.ast import Expression
from repro.query.bands import compile_event_predicate
from repro.query.expressions import (
    LOCATION_PSEUDO_COLUMN,
    EvaluationContext,
    evaluate,
)
from repro.query.functions import FunctionRegistry
from repro.query.predicate_index import PredicateIndex
from repro.query.query_catalog import QueryCatalog, RegisteredQuery
from repro.runtime import Runtime
from repro.core.config import EngineConfig
from repro.core.dispatcher import Dispatcher

__all__ = ["ContinuousQueryExecutor", "RegisteredQuery"]

#: Memo key of one candidate-set computation within a single poll:
#: (device table, device alias, candidate predicate, event device).
_CandidateKey = Tuple[str, str, Optional[Expression], str]


class ContinuousQueryExecutor:
    """Runs every registered AQ against the live device network."""

    def __init__(
        self,
        env: Runtime,
        comm: CommunicationLayer,
        functions: FunctionRegistry,
        dispatcher: Dispatcher,
        config: EngineConfig,
    ) -> None:
        self.env = env
        self.comm = comm
        self.functions = functions
        self.dispatcher = dispatcher
        self.config = config
        #: Query lifecycle, per-table reader lists and edge memory.
        self.catalog = QueryCatalog()
        #: Per-event-table predicate indexes (only populated when
        #: ``config.predicate_index`` is on).
        self._indexes: Dict[str, PredicateIndex] = {}
        self._scans: Dict[str, ScanOperator] = {}
        self._running = False
        self.polls = 0

    @property
    def obs(self):
        """The engine's observability sink (shared via the dispatcher)."""
        return self.dispatcher.obs

    @property
    def queries(self) -> Dict[str, RegisteredQuery]:
        """Query name -> registered query (the catalog's live map)."""
        return self.catalog.queries

    @property
    def _queries_by_table(self) -> Dict[str, List[RegisteredQuery]]:
        """Event table -> reader list (the catalog's live index)."""
        return self.catalog.by_table

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, plan: ContinuousPlan, *, priority: int = 1,
                 deadline_seconds: Optional[float] = None,
                 ) -> RegisteredQuery:
        """Install a planned AQ (the CREATE AQ effect).

        ``priority`` and ``deadline_seconds`` are stamped on every
        request the query emits; they only influence behaviour when the
        engine's overload-control plane is on. Registration itself is
        an admission unit: with overload control on, a configured
        per-tier registration rate limit may refuse the AQ with
        :class:`~repro.errors.AdmissionError`.
        """
        if plan.query_name in self.catalog:
            raise RegistrationError(
                f"query {plan.query_name!r} is already registered"
            )
        self._check_candidate_predicate(plan)
        plane = self.dispatcher.overload
        if plane is not None:
            reason = plane.admission.admit_query(priority, self.env.now)
            if reason is not None:
                self.dispatcher.tracer.record(
                    self.env.now, "query_rejected",
                    query=plan.query_name, priority=priority,
                    reason=reason)
                raise AdmissionError(
                    f"registration of {plan.query_name!r} refused: "
                    f"{reason}")
        query = RegisteredQuery(plan=plan, priority=priority,
                                deadline_seconds=deadline_seconds)
        if self.config.predicate_index:
            query.band_form = compile_event_predicate(
                plan.event_predicate, plan.event_alias,
                self.comm.catalog(plan.event_table))
        self.dispatcher.operator_for(plan.action).attach(plan.query_name)
        self.catalog.register(query)
        if self.config.predicate_index:
            assert query.band_form is not None
            self._index_for(plan.event_table).add(
                query.name, query.seq, plan.event_alias, query.band_form)
        self.dispatcher.tracer.record(
            self.env.now, "query_registered", query=plan.query_name,
            action=plan.action.name)
        return query

    def drop(self, name: str) -> None:
        """Remove a query (the DROP AQ effect)."""
        if name not in self.catalog:
            raise RegistrationError(f"no registered query {name!r}")
        query = self.catalog.drop(name)
        table = query.plan.event_table
        if table not in self.catalog.by_table:
            # Last reader gone: retire the table's scan and index so an
            # idle table stops polling (and costs nothing until a new
            # reader registers).
            self._scans.pop(table, None)
            self._indexes.pop(table, None)
        else:
            index = self._indexes.get(table)
            if index is not None:
                index.remove(name)
        self.dispatcher.operator_for(query.plan.action).detach(name)
        self.dispatcher.tracer.record(self.env.now, "query_dropped",
                                      query=name)

    def _check_candidate_predicate(self, plan: ContinuousPlan) -> None:
        """Candidate predicates may only read the device's static data.

        Sensory device attributes would need a live read per candidate
        per event; availability and status go through probing instead
        (Section 4), so we reject such predicates at registration.
        """
        if plan.candidate_predicate is None:
            return
        catalog = self.comm.catalog(plan.device_table)
        for ref in plan.candidate_predicate.column_refs():
            if ref.qualifier != plan.device_alias:
                continue
            if ref.name == LOCATION_PSEUDO_COLUMN:
                continue
            if catalog.attribute(ref.name).sensory:
                raise PlanError(
                    f"candidate predicate of {plan.query_name!r} reads "
                    f"sensory attribute {ref.name!r}; device status is "
                    f"obtained by probing, not by candidate predicates"
                )

    def _index_for(self, table: str) -> PredicateIndex:
        if table not in self._indexes:
            self._indexes[table] = PredicateIndex(table)
        return self._indexes[table]

    def index_stats(self) -> Dict[str, int]:
        """Summed per-table predicate-index counters."""
        totals: Dict[str, int] = {"tables": len(self._indexes)}
        for index in self._indexes.values():
            for key, value in index.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------------
    # The polling loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the polling loop as a simulation process."""
        if self._running:
            raise AortaError("continuous executor already started")
        self._running = True
        self.env.process(self._run())

    def _run(self) -> Generator[Any, Any, None]:
        while True:
            yield from self.poll_once()
            yield self.env.timeout(self.config.poll_interval)

    def poll_once(self) -> Generator[Any, Any, int]:
        """One detection pass over all event tables; returns emit count.

        The scan of each event table is shared by every query reading
        it — one network acquisition per poll regardless of how many
        queries watch the same sensors.
        """
        self.polls += 1
        emitted = 0
        self.obs.inc("continuous.polls")
        # Detached: dispatch batches emitted by this poll outlive it on
        # concurrent processes, so they must not nest under the poll.
        with self.obs.span("continuous.poll", detached=True):
            for table in list(self.catalog.by_table):
                if not any(q.enabled
                           for q in self.catalog.readers(table)):
                    continue
                scan = self._scan_for(table)
                rows = yield from scan.scan()
                # Re-read the index after the scan: queries may have been
                # registered or dropped while the acquisition was in flight.
                if self.config.predicate_index:
                    emitted += self._detect_indexed(table, rows)
                else:
                    for query in list(self.catalog.readers(table)):
                        if query.enabled:
                            emitted += self._detect_events(query, rows)
        return emitted

    def _scan_for(self, table: str) -> ScanOperator:
        if table not in self._scans:
            self._scans[table] = self.comm.scan_operator(table)
        return self._scans[table]

    # ------------------------------------------------------------------
    # Event detection: the scan-all path
    # ------------------------------------------------------------------
    def _detect_events(self, query: RegisteredQuery,
                       rows: List[DeviceTuple]) -> int:
        plan = query.plan
        emitted = 0
        # One context per detection pass, rebound per row — evaluate()
        # never retains it, so reuse avoids an allocation per device row.
        context = EvaluationContext(tuples={}, functions=self.functions)
        for row in rows:
            context.tuples[plan.event_alias] = row
            holds = (True if plan.event_predicate is None
                     else bool(evaluate(plan.event_predicate, context)))
            previously = self.catalog.edge_state(query.name, row.device_id)
            self.catalog.set_edge(query, row.device_id, holds)
            if not holds:
                continue
            if self.config.edge_triggered and previously:
                continue  # still the same event, no re-trigger
            query.events_detected += 1
            self.obs.inc("continuous.events_detected", query=query.name)
            self.dispatcher.tracer.record(
                self.env.now, "event_detected", query=query.name,
                sensor=row.device_id)
            if self._emit_request(query, row, context):
                emitted += 1
        return emitted

    # ------------------------------------------------------------------
    # Event detection: the indexed path
    # ------------------------------------------------------------------
    def _detect_indexed(self, table: str,
                        rows: List[DeviceTuple]) -> int:
        """Route each row through the table's predicate index.

        Matching is event-at-a-time, but emission replays query-major
        in registration order — the exact order the scan-all walk
        produces — so traces and request ids stay identical.
        """
        index = self._indexes.get(table)
        if index is None:
            return 0
        catalog = self.catalog

        def admit(name: str) -> bool:
            query = catalog.get(name)
            return query is not None and query.enabled

        matched: Dict[str, List[DeviceTuple]] = {}
        seen: Set[str] = set()
        for row in rows:
            seen.add(row.device_id)

            def test(alias: str, residual: Expression,
                     row: DeviceTuple = row) -> bool:
                context = EvaluationContext(tuples={alias: row},
                                            functions=self.functions)
                return bool(evaluate(residual, context))

            for _seq, name in index.match(row, test, admit=admit):
                matched.setdefault(name, []).append(row)

        # Queries to visit: everyone matched this poll, plus everyone
        # holding edge memory that a scanned non-match must clear.
        active = {query.name: query
                  for query in catalog.held_queries(table)}
        for name in matched:
            if name not in active:
                query = catalog.get(name)
                if query is not None:
                    active[name] = query
        ordered = sorted(active.values(), key=lambda query: query.seq)

        emitted = 0
        memo: Dict[_CandidateKey, List[str]] = {}
        for query in ordered:
            if not query.enabled:
                continue
            emitted += self._emit_matched(
                query, matched.get(query.name, []), seen, memo)
        return emitted

    def _emit_matched(self, query: RegisteredQuery,
                      matched_rows: List[DeviceTuple], seen: Set[str],
                      memo: Dict[_CandidateKey, List[str]]) -> int:
        """Replay one query's matches in row order; prune stale edges."""
        plan = query.plan
        emitted = 0
        context = EvaluationContext(tuples={}, functions=self.functions)
        matched_ids: Set[str] = set()
        for row in matched_rows:
            matched_ids.add(row.device_id)
            previously = self.catalog.edge_state(query.name, row.device_id)
            self.catalog.set_edge(query, row.device_id, True)
            if self.config.edge_triggered and previously:
                continue  # still the same event, no re-trigger
            query.events_detected += 1
            self.obs.inc("continuous.events_detected", query=query.name)
            self.dispatcher.tracer.record(
                self.env.now, "event_detected", query=query.name,
                sensor=row.device_id)
            context.tuples[plan.event_alias] = row
            if self._emit_request(query, row, context, memo=memo):
                emitted += 1
        self.catalog.prune_edges(query, seen, matched_ids)
        return emitted

    # ------------------------------------------------------------------
    # Request emission
    # ------------------------------------------------------------------
    def _emit_request(self, query: RegisteredQuery, event_row: DeviceTuple,
                      context: EvaluationContext,
                      memo: Optional[Dict[_CandidateKey,
                                          List[str]]] = None) -> bool:
        plan = query.plan
        arguments = {
            name: evaluate(expression, context)
            for name, expression in plan.argument_expressions.items()
        }
        candidates = self._candidates(plan, context,
                                      event_device=event_row.device_id,
                                      memo=memo)
        if not candidates:
            query.uncovered_events += 1
            self.obs.inc("continuous.uncovered_events",
                         query=plan.query_name)
            return False
        operator = self.dispatcher.operator_for(plan.action)
        self.dispatcher.tracer.record(
            self.env.now, "request_emitted", query=plan.query_name,
            action=plan.action.name, candidates=len(candidates))
        deadline = (None if query.deadline_seconds is None
                    else self.env.now + query.deadline_seconds)
        emitted_any = False
        if plan.action.select_all:
            # Fan out: one single-candidate request per device, so the
            # action runs on every candidate (extension semantics).
            for device_id in candidates:
                request = ActionRequest(
                    action_name=plan.action.name,
                    arguments=dict(arguments),
                    query_id=plan.query_name,
                    created_at=self.env.now,
                    candidates=(device_id,),
                    priority=query.priority,
                    deadline=deadline,
                )
                if self.dispatcher.submit(operator, request):
                    emitted_any = True
                    query.requests_emitted += 1
                    self.obs.inc("continuous.requests_emitted",
                                 query=plan.query_name)
                else:
                    query.requests_rejected += 1
        else:
            request = ActionRequest(
                action_name=plan.action.name,
                arguments=arguments,
                query_id=plan.query_name,
                created_at=self.env.now,
                candidates=tuple(candidates),
                priority=query.priority,
                deadline=deadline,
            )
            if self.dispatcher.submit(operator, request):
                emitted_any = True
                query.requests_emitted += 1
                self.obs.inc("continuous.requests_emitted",
                             query=plan.query_name)
            else:
                query.requests_rejected += 1
        return emitted_any

    def _candidates(self, plan: ContinuousPlan,
                    event_context: EvaluationContext, *,
                    event_device: str = "",
                    memo: Optional[Dict[_CandidateKey,
                                        List[str]]] = None) -> List[str]:
        """Device IDs satisfying the candidate predicate for this event.

        Membership, not liveness, is checked here: devices "may join,
        move around, or leave the network dynamically in a way
        unpredictable to the system" (Section 4), so unavailability is
        discovered by the dispatcher's probe, not assumed here.

        ``memo`` (indexed path only) caches the result per (device
        table, alias, predicate, event device) within one detection
        pass — queries sharing a candidate shape reuse one evaluation,
        the shared-operator merge's candidate half.
        """
        key: Optional[_CandidateKey] = None
        if memo is not None:
            key = (plan.device_table, plan.device_alias,
                   plan.candidate_predicate, event_device)
            cached = memo.get(key)
            if cached is not None:
                return list(cached)
        candidates = []
        for device in self.comm.registry.of_type(plan.device_table):
            if plan.candidate_predicate is None:
                candidates.append(device.device_id)
                continue
            device_row = DeviceTuple(
                device_type=device.device_type,
                device_id=device.device_id,
                values=device.static_attributes(),
                acquired_at=self.env.now,
            )
            context = event_context.bind(plan.device_alias, device_row)
            if evaluate(plan.candidate_predicate, context):
                candidates.append(device.device_id)
        if memo is not None and key is not None:
            memo[key] = list(candidates)
        return candidates
