"""Event-driven execution of registered continuous queries.

"Many pervasive computing applications have an event-driven and
action-oriented processing nature: when the application detects an
event, a pre-defined action on some type of devices is triggered."
(Section 2.2) The executor polls the event tables' scan operators,
evaluates each query's event predicate per device, and on detection
evaluates the candidate predicate over the device table and submits an
instantiated action request to the shared action operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.errors import (
    AdmissionError,
    AortaError,
    PlanError,
    RegistrationError,
)
from repro.actions.request import ActionRequest
from repro.comm.layer import CommunicationLayer
from repro.comm.scan import ScanOperator
from repro.comm.tuples import DeviceTuple
from repro.plan.planner import ContinuousPlan
from repro.query.expressions import (
    LOCATION_PSEUDO_COLUMN,
    EvaluationContext,
    evaluate,
)
from repro.query.functions import FunctionRegistry
from repro.runtime import Runtime
from repro.core.config import EngineConfig
from repro.core.dispatcher import Dispatcher


@dataclass
class RegisteredQuery:
    """One live continuous query with its event-edge memory."""

    plan: ContinuousPlan
    enabled: bool = True
    #: Per event-device: whether the predicate held at the last poll
    #: (for edge-triggered event detection).
    last_state: Dict[str, bool] = field(default_factory=dict)
    events_detected: int = 0
    requests_emitted: int = 0
    #: Events whose candidate set was empty (e.g. no camera covers the
    #: sensor's location) — nothing to schedule.
    uncovered_events: int = 0
    #: Priority tier stamped on every request this query emits (only
    #: meaningful with overload control on; larger = more important).
    priority: int = 1
    #: Relative service deadline for emitted requests, in virtual
    #: seconds from emission; ``None`` = no deadline.
    deadline_seconds: Optional[float] = None
    #: Requests refused by admission control or queue backpressure
    #: (stays zero with overload control off).
    requests_rejected: int = 0

    @property
    def name(self) -> str:
        return self.plan.query_name


class ContinuousQueryExecutor:
    """Runs every registered AQ against the live device network."""

    def __init__(
        self,
        env: Runtime,
        comm: CommunicationLayer,
        functions: FunctionRegistry,
        dispatcher: Dispatcher,
        config: EngineConfig,
    ) -> None:
        self.env = env
        self.comm = comm
        self.functions = functions
        self.dispatcher = dispatcher
        self.config = config
        self.queries: Dict[str, RegisteredQuery] = {}
        #: Event table -> queries reading it, maintained at
        #: register/drop time so each poll walks an index instead of
        #: rebuilding the table set from every registered query.
        self._queries_by_table: Dict[str, List[RegisteredQuery]] = {}
        self._scans: Dict[str, ScanOperator] = {}
        self._running = False
        self.polls = 0

    @property
    def obs(self):
        """The engine's observability sink (shared via the dispatcher)."""
        return self.dispatcher.obs

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, plan: ContinuousPlan, *, priority: int = 1,
                 deadline_seconds: Optional[float] = None,
                 ) -> RegisteredQuery:
        """Install a planned AQ (the CREATE AQ effect).

        ``priority`` and ``deadline_seconds`` are stamped on every
        request the query emits; they only influence behaviour when the
        engine's overload-control plane is on. Registration itself is
        an admission unit: with overload control on, a configured
        per-tier registration rate limit may refuse the AQ with
        :class:`~repro.errors.AdmissionError`.
        """
        if plan.query_name in self.queries:
            raise RegistrationError(
                f"query {plan.query_name!r} is already registered"
            )
        self._check_candidate_predicate(plan)
        plane = self.dispatcher.overload
        if plane is not None:
            reason = plane.admission.admit_query(priority, self.env.now)
            if reason is not None:
                self.dispatcher.tracer.record(
                    self.env.now, "query_rejected",
                    query=plan.query_name, priority=priority,
                    reason=reason)
                raise AdmissionError(
                    f"registration of {plan.query_name!r} refused: "
                    f"{reason}")
        query = RegisteredQuery(plan=plan, priority=priority,
                                deadline_seconds=deadline_seconds)
        self.dispatcher.operator_for(plan.action).attach(plan.query_name)
        self.queries[plan.query_name] = query
        self._queries_by_table.setdefault(plan.event_table, []).append(query)
        self.dispatcher.tracer.record(
            self.env.now, "query_registered", query=plan.query_name,
            action=plan.action.name)
        return query

    def drop(self, name: str) -> None:
        """Remove a query (the DROP AQ effect)."""
        if name not in self.queries:
            raise RegistrationError(f"no registered query {name!r}")
        query = self.queries.pop(name)
        readers = self._queries_by_table.get(query.plan.event_table, [])
        if query in readers:
            readers.remove(query)
            if not readers:
                del self._queries_by_table[query.plan.event_table]
        self.dispatcher.operator_for(query.plan.action).detach(name)
        self.dispatcher.tracer.record(self.env.now, "query_dropped",
                                      query=name)

    def _check_candidate_predicate(self, plan: ContinuousPlan) -> None:
        """Candidate predicates may only read the device's static data.

        Sensory device attributes would need a live read per candidate
        per event; availability and status go through probing instead
        (Section 4), so we reject such predicates at registration.
        """
        if plan.candidate_predicate is None:
            return
        catalog = self.comm.catalog(plan.device_table)
        for ref in plan.candidate_predicate.column_refs():
            if ref.qualifier != plan.device_alias:
                continue
            if ref.name == LOCATION_PSEUDO_COLUMN:
                continue
            if catalog.attribute(ref.name).sensory:
                raise PlanError(
                    f"candidate predicate of {plan.query_name!r} reads "
                    f"sensory attribute {ref.name!r}; device status is "
                    f"obtained by probing, not by candidate predicates"
                )

    # ------------------------------------------------------------------
    # The polling loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the polling loop as a simulation process."""
        if self._running:
            raise AortaError("continuous executor already started")
        self._running = True
        self.env.process(self._run())

    def _run(self) -> Generator[Any, Any, None]:
        while True:
            yield from self.poll_once()
            yield self.env.timeout(self.config.poll_interval)

    def poll_once(self) -> Generator[Any, Any, int]:
        """One detection pass over all event tables; returns emit count.

        The scan of each event table is shared by every query reading
        it — one network acquisition per poll regardless of how many
        queries watch the same sensors.
        """
        self.polls += 1
        emitted = 0
        self.obs.inc("continuous.polls")
        # Detached: dispatch batches emitted by this poll outlive it on
        # concurrent processes, so they must not nest under the poll.
        with self.obs.span("continuous.poll", detached=True):
            for table in list(self._queries_by_table):
                if not any(q.enabled
                           for q in self._queries_by_table.get(table, ())):
                    continue
                scan = self._scan_for(table)
                rows = yield from scan.scan()
                # Re-read the index after the scan: queries may have been
                # registered or dropped while the acquisition was in flight.
                for query in list(self._queries_by_table.get(table, ())):
                    if query.enabled:
                        emitted += self._detect_events(query, rows)
        return emitted

    def _scan_for(self, table: str) -> ScanOperator:
        if table not in self._scans:
            self._scans[table] = self.comm.scan_operator(table)
        return self._scans[table]

    # ------------------------------------------------------------------
    # Event detection and request emission
    # ------------------------------------------------------------------
    def _detect_events(self, query: RegisteredQuery,
                       rows: List[DeviceTuple]) -> int:
        plan = query.plan
        emitted = 0
        # One context per detection pass, rebound per row — evaluate()
        # never retains it, so reuse avoids an allocation per device row.
        context = EvaluationContext(tuples={}, functions=self.functions)
        for row in rows:
            context.tuples[plan.event_alias] = row
            holds = (True if plan.event_predicate is None
                     else bool(evaluate(plan.event_predicate, context)))
            previously = query.last_state.get(row.device_id, False)
            query.last_state[row.device_id] = holds
            if not holds:
                continue
            if self.config.edge_triggered and previously:
                continue  # still the same event, no re-trigger
            query.events_detected += 1
            self.obs.inc("continuous.events_detected", query=query.name)
            self.dispatcher.tracer.record(
                self.env.now, "event_detected", query=query.name,
                sensor=row.device_id)
            if self._emit_request(query, row, context):
                emitted += 1
        return emitted

    def _emit_request(self, query: RegisteredQuery, event_row: DeviceTuple,
                      context: EvaluationContext) -> bool:
        plan = query.plan
        arguments = {
            name: evaluate(expression, context)
            for name, expression in plan.argument_expressions.items()
        }
        candidates = self._candidates(plan, context)
        if not candidates:
            query.uncovered_events += 1
            self.obs.inc("continuous.uncovered_events",
                         query=plan.query_name)
            return False
        operator = self.dispatcher.operator_for(plan.action)
        self.dispatcher.tracer.record(
            self.env.now, "request_emitted", query=plan.query_name,
            action=plan.action.name, candidates=len(candidates))
        deadline = (None if query.deadline_seconds is None
                    else self.env.now + query.deadline_seconds)
        emitted_any = False
        if plan.action.select_all:
            # Fan out: one single-candidate request per device, so the
            # action runs on every candidate (extension semantics).
            for device_id in candidates:
                request = ActionRequest(
                    action_name=plan.action.name,
                    arguments=dict(arguments),
                    query_id=plan.query_name,
                    created_at=self.env.now,
                    candidates=(device_id,),
                    priority=query.priority,
                    deadline=deadline,
                )
                if self.dispatcher.submit(operator, request):
                    emitted_any = True
                    query.requests_emitted += 1
                    self.obs.inc("continuous.requests_emitted",
                                 query=plan.query_name)
                else:
                    query.requests_rejected += 1
        else:
            request = ActionRequest(
                action_name=plan.action.name,
                arguments=arguments,
                query_id=plan.query_name,
                created_at=self.env.now,
                candidates=tuple(candidates),
                priority=query.priority,
                deadline=deadline,
            )
            if self.dispatcher.submit(operator, request):
                emitted_any = True
                query.requests_emitted += 1
                self.obs.inc("continuous.requests_emitted",
                             query=plan.query_name)
            else:
                query.requests_rejected += 1
        return emitted_any

    def _candidates(self, plan: ContinuousPlan,
                    event_context: EvaluationContext) -> List[str]:
        """Device IDs satisfying the candidate predicate for this event.

        Membership, not liveness, is checked here: devices "may join,
        move around, or leave the network dynamically in a way
        unpredictable to the system" (Section 4), so unavailability is
        discovered by the dispatcher's probe, not assumed here.
        """
        candidates = []
        for device in self.comm.registry.of_type(plan.device_table):
            if plan.candidate_predicate is None:
                candidates.append(device.device_id)
                continue
            device_row = DeviceTuple(
                device_type=device.device_type,
                device_id=device.device_id,
                values=device.static_attributes(),
                acquired_at=self.env.now,
            )
            context = event_context.bind(plan.device_alias, device_row)
            if evaluate(plan.candidate_predicate, context):
                candidates.append(device.device_id)
        return candidates
