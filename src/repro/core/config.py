"""Engine configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AortaError

#: Scheduler names accepted by EngineConfig.scheduler.
SCHEDULER_NAMES = ("LERFA+SRFE", "SRFAE", "LS", "SA", "RANDOM")


@dataclass
class EngineConfig:
    """Tunables of one engine instance.

    ``synchronization`` switches the Section 4 mechanisms (device
    locking + probing) on or off — off reproduces the unsynchronized
    failure study of Section 6.2.
    """

    #: Seconds between event-scan polls of the continuous executor.
    poll_interval: float = 1.0
    #: Seconds the dispatcher waits after a first request so that
    #: near-simultaneous requests from concurrent queries batch into one
    #: scheduling problem (the shared-operator group optimization).
    batch_window: float = 0.1
    #: Device locking: one action at a time per device.
    locking: bool = True
    #: Probe candidates (availability + status) before optimization.
    probing: bool = True
    #: Emit an event only on a false->true predicate edge per device;
    #: when False, every poll where the predicate holds re-triggers.
    edge_triggered: bool = True
    #: Which scheduling algorithm the dispatcher uses.
    scheduler: str = "SRFAE"
    #: Seed for the scheduler's randomness.
    scheduler_seed: int = 0

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise AortaError("poll_interval must be positive")
        if self.batch_window < 0:
            raise AortaError("batch_window must be non-negative")
        if self.scheduler not in SCHEDULER_NAMES:
            raise AortaError(
                f"unknown scheduler {self.scheduler!r}; expected one of "
                f"{SCHEDULER_NAMES}"
            )

    @property
    def synchronization(self) -> bool:
        """Whether both Section 4 mechanisms are active."""
        return self.locking and self.probing
