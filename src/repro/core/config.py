"""Engine configuration."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import AortaError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.devices.health import HealthPolicy
    from repro.overload.policy import OverloadPolicy

#: Scheduler names accepted by EngineConfig.scheduler.
SCHEDULER_NAMES = ("LERFA+SRFE", "SRFAE", "LS", "SA", "RANDOM")

#: Runtime backend names accepted by EngineConfig.runtime (mirrors
#: repro.runtime.RUNTIME_NAMES; duplicated to keep config importable
#: without the runtime package).
RUNTIME_NAMES = ("virtual", "realtime")

#: Worker backends accepted by EngineConfig.parallel_backend:
#: "process" spawns one interpreter per shard (true parallelism),
#: "thread" runs workers as threads of the coordinator process (the
#: portable fallback: identical protocol and determinism, no
#: GIL-escaping speedup).
PARALLEL_BACKENDS = ("process", "thread")


@dataclass(frozen=True)
class RetryPolicy:
    """How the dispatcher reacts to transient execution failures.

    The default policy is the pre-fault-tolerance behaviour: one attempt
    per assignment, no failover — a failed request is final. Enabling
    retries makes the dispatcher re-run a transiently failed action on
    its assigned device after an exponential backoff; enabling failover
    makes a request whose device failed re-enter the next batch with
    that device removed from its candidate set, so the scheduler
    reassigns it to a surviving candidate.
    """

    #: Execution attempts per device assignment (1 = no retries).
    max_attempts: int = 1
    #: First-retry backoff, in virtual seconds.
    backoff_base: float = 0.5
    #: Multiplier applied to the backoff on each further retry.
    backoff_factor: float = 2.0
    #: Ceiling on any single backoff wait.
    backoff_max: float = 30.0
    #: Backoff randomization, as a fraction of the nominal wait (0.1 =
    #: +/-10%). Drawn from the dispatcher's named sim RNG stream, so
    #: runs are exactly repeatable.
    jitter: float = 0.1
    #: Re-dispatch a request to surviving candidates when its device
    #: fails (the failed device is removed from the candidate set).
    failover: bool = False
    #: Total times one request may enter a batch (1 = never re-enters).
    max_dispatches: int = 4

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise AortaError("retry max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise AortaError("retry backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise AortaError("retry backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise AortaError("retry jitter must be in [0, 1)")
        if self.max_dispatches < 1:
            raise AortaError("retry max_dispatches must be >= 1")

    @property
    def enabled(self) -> bool:
        """Whether any fault-tolerance behaviour is switched on."""
        return self.max_attempts > 1 or self.failover

    def backoff_seconds(self, attempt: int, rng: random.Random) -> float:
        """Wait before retry number ``attempt`` (1-based), jittered."""
        nominal = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max)
        if self.jitter:
            nominal *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return nominal


@dataclass
class EngineConfig:
    """Tunables of one engine instance.

    ``synchronization`` switches the Section 4 mechanisms (device
    locking + probing) on or off — off reproduces the unsynchronized
    failure study of Section 6.2.
    """

    #: Seconds between event-scan polls of the continuous executor.
    poll_interval: float = 1.0
    #: Seconds the dispatcher waits after a first request so that
    #: near-simultaneous requests from concurrent queries batch into one
    #: scheduling problem (the shared-operator group optimization).
    batch_window: float = 0.1
    #: Device locking: one action at a time per device.
    locking: bool = True
    #: Probe candidates (availability + status) before optimization.
    probing: bool = True
    #: Emit an event only on a false->true predicate edge per device;
    #: when False, every poll where the predicate holds re-triggers.
    edge_triggered: bool = True
    #: Which scheduling algorithm the dispatcher uses.
    scheduler: str = "SRFAE"
    #: Seed for the scheduler's randomness.
    scheduler_seed: int = 0
    #: Reaction to transient execution failures (default: none, the
    #: pre-fault-tolerance behaviour).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-device circuit-breaker policy; ``None`` disables device
    #: health tracking entirely (no quarantine, no probation probes).
    health: Optional["HealthPolicy"] = None
    #: Lock lease in virtual seconds: a device lock still held this long
    #: after acquisition is forcibly recovered so FIFO waiters proceed
    #: (see DeviceLockManager.recover). ``None`` disables leases.
    lock_lease_seconds: Optional[float] = None
    #: Metrics + span tracing (the repro.obs subsystem). Off by
    #: default; the disabled path is byte-identical to an engine built
    #: before the observability layer existed (benchmark-gated).
    observability: bool = False
    #: Runtime backend the engine builds when no explicit runtime is
    #: passed: "virtual" (discrete-event, default) or "realtime"
    #: (wall-clock paced; see time_scale).
    runtime: str = "virtual"
    #: Realtime pacing: wall seconds per runtime second. 0 fires timers
    #: immediately (deterministic smoke path, trace-identical to the
    #: virtual backend); 1.0 runs in real seconds. Ignored by the
    #: virtual backend.
    time_scale: float = 1.0
    #: Comm fast path, knob 1: keep-alive connection pooling. Probes,
    #: scans and operation executions reuse open control channels
    #: instead of paying the handshake per exchange. Off by default:
    #: the off path is byte-identical to a pre-fastpath engine.
    connection_pool: bool = False
    #: Most idle keep-alive connections retained (LRU-evicted beyond).
    pool_capacity: int = 64
    #: Idle expiry: a pooled connection unused this long (virtual
    #: seconds) is closed on its next checkout attempt.
    pool_idle_seconds: float = 30.0
    #: Comm fast path, knob 2: TTL device-status cache. The dispatcher
    #: skips the probe exchange for devices probed within their type's
    #: freshness TTL, costing from the cached status; entries are
    #: invalidated after any execution on the device, on probe failure
    #: and on health-breaker transitions. Off by default.
    status_cache: bool = False
    #: Fallback freshness TTL (virtual seconds) for device types
    #: without an entry in ``status_ttls``.
    status_ttl_seconds: float = 5.0
    #: Per-type freshness TTL overrides; ``None`` uses the built-in
    #: defaults (:data:`repro.comm.status_cache.DEFAULT_STATUS_TTLS`).
    status_ttls: Optional[Dict[str, float]] = None
    #: Comm fast path, knob 3: run each action's batch as its own sim
    #: process so independent actions' probe/schedule/execute pipelines
    #: overlap instead of draining serially. Off by default.
    concurrent_dispatch: bool = False
    #: Scheduler fast path, knob 1: evaluate cost columns through the
    #: numpy block kernel instead of per-pair Python calls. Requires
    #: numpy (the ``repro[fast]`` extra); byte-identical schedules.
    #: Off by default.
    vectorize: bool = False
    #: Scheduler fast path, knob 2: warm-start recurring batches from
    #: the previous schedule, re-placing only requests touching dirty
    #: devices (health transitions, status-cache invalidations,
    #: executions) and sharing one memoizing cost oracle per action
    #: across batches. Off by default.
    incremental: bool = False
    #: Overload-control plane (repro.overload): admission control at
    #: AQ registration and request ingestion, bounded pending queues
    #: with backpressure, and priority load-shedding with deadlines.
    #: Off by default: the off path is byte-identical to a
    #: pre-overload engine (golden-gated).
    overload: bool = False
    #: Overload-plane tunables; ``None`` uses the defaults of
    #: :class:`~repro.overload.policy.OverloadPolicy`. Only read when
    #: ``overload`` is True.
    overload_policy: Optional["OverloadPolicy"] = None
    #: Number of engine shards the fleet is partitioned across. Only
    #: :class:`~repro.shard.ShardedEngine` honours values above 1 — a
    #: plain :class:`~repro.core.engine.AortaEngine` owns exactly one
    #: partition and refuses a multi-shard config so a sharded config
    #: can never silently run unsharded.
    shards: int = 1
    #: Lockstep bound for multi-shard runs: no shard's clock may lead
    #: the slowest by more than this many runtime seconds. Ignored when
    #: ``shards == 1`` (a single shard runs in one uninterrupted call).
    shard_quantum: float = 1.0
    #: True parallel shard execution: run each shard's lockstep round
    #: concurrently in its own worker instead of stepping shards
    #: sequentially on the coordinator thread. Only
    #: :class:`~repro.shard.ShardedEngine` honours it, and only with
    #: ``shards > 1`` (a 1-shard fleet stays the in-process
    #: pass-through). Off by default: the off path is byte-identical
    #: to the serial lockstep coordinator (benchmark-gated).
    parallel: bool = False
    #: Worker backend for ``parallel=True``: "process" (spawned
    #: interpreters — the wall-clock speedup path) or "thread" (same
    #: command protocol inside the coordinator process — portable, no
    #: speedup). Both replay identical construction commands, so dumps
    #: are byte-identical across backends.
    parallel_backend: str = "process"
    #: Predicate-indexed multi-query matching: compile each AQ's event
    #: predicate into a normalized band form at registration and route
    #: each scanned tuple through a per-(table, attribute)
    #: interval/point index, touching only the queries whose bands
    #: admit it instead of walking every registered query. Off by
    #: default: the off path is the scan-all executor and the on path
    #: is behaviorally identical to it (golden-gated).
    predicate_index: bool = False

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise AortaError("poll_interval must be positive")
        if self.batch_window < 0:
            raise AortaError("batch_window must be non-negative")
        if self.scheduler not in SCHEDULER_NAMES:
            raise AortaError(
                f"unknown scheduler {self.scheduler!r}; expected one of "
                f"{SCHEDULER_NAMES}"
            )
        if self.lock_lease_seconds is not None \
                and self.lock_lease_seconds <= 0:
            raise AortaError("lock_lease_seconds must be positive")
        if self.runtime not in RUNTIME_NAMES:
            raise AortaError(
                f"unknown runtime {self.runtime!r}; expected one of "
                f"{RUNTIME_NAMES}"
            )
        if self.time_scale < 0:
            raise AortaError("time_scale must be non-negative")
        if self.pool_capacity < 1:
            raise AortaError("pool_capacity must be >= 1")
        if self.pool_idle_seconds <= 0:
            raise AortaError("pool_idle_seconds must be positive")
        if self.status_ttl_seconds <= 0:
            raise AortaError("status_ttl_seconds must be positive")
        if self.status_ttls is not None:
            for device_type, ttl in self.status_ttls.items():
                if ttl <= 0:
                    raise AortaError(
                        f"status TTL for {device_type!r} must be "
                        f"positive, got {ttl}")
        if self.shards < 1:
            raise AortaError(f"shards must be >= 1, got {self.shards}")
        if self.shard_quantum <= 0:
            raise AortaError("shard_quantum must be positive")
        if self.parallel_backend not in PARALLEL_BACKENDS:
            raise AortaError(
                f"unknown parallel_backend {self.parallel_backend!r}; "
                f"expected one of {PARALLEL_BACKENDS}")

    @property
    def synchronization(self) -> bool:
        """Whether both Section 4 mechanisms are active."""
        return self.locking and self.probing

    @property
    def comm_fastpath(self) -> bool:
        """Whether any comm fast-path mechanism is switched on."""
        return (self.connection_pool or self.status_cache
                or self.concurrent_dispatch)

    @property
    def fault_tolerance(self) -> bool:
        """Whether any fault-tolerance mechanism is configured."""
        return self.retry.enabled or self.health is not None
