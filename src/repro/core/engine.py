"""The AortaEngine facade: the whole system behind one object."""

from __future__ import annotations

import random
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import AortaError, BindingError, QueryError
from repro.actions.action import (
    ActionDefinition,
    ActionImplementation,
    ActionParameter,
)
from repro.actions.builtins import install_builtin_actions
from repro.actions.registry import ActionRegistry
from repro.actions.request import ActionRequest
from repro.comm.layer import CommunicationLayer
from repro.comm.pool import ConnectionPool
from repro.comm.status_cache import DeviceStatusCache
from repro.cost.model import CostModel, QuantityResolver
from repro.devices.base import Device
from repro.devices.camera import PanTiltZoomCamera
from repro.devices.health import BreakerState, DeviceHealthTracker
from repro.geometry import Point
from repro.network.link import LinkModel
from repro.overload import OverloadControlPlane, OverloadPolicy
from repro.plan.planner import Planner, SnapshotPlan
from repro.profiles.action_profile import ActionProfile
from repro.profiles.defaults import register_builtin_types
from repro.query.ast import (
    CreateActionStatement,
    CreateAQStatement,
    DropAQStatement,
    ExplainStatement,
    SelectQuery,
    Statement,
)
from repro.query.catalog import SchemaCatalog
from repro.query.functions import FunctionRegistry, install_standard_functions
from repro.query.parser import parse
from repro.runtime import Runtime, create_runtime
from repro.sim.rng import component_seed
from repro.sync.locks import DeviceLockManager
from repro.core.config import EngineConfig
from repro.core.continuous import ContinuousQueryExecutor, RegisteredQuery
from repro.core.dispatcher import Dispatcher


class AortaEngine:
    """A complete Aorta instance over one simulated environment.

    Typical use::

        env = Environment()
        engine = AortaEngine(env)
        engine.add_device(PanTiltZoomCamera(env, "cam1", Point(0, 0)))
        engine.add_device(SensorMote(env, "mote1", Point(5, 5)))
        engine.execute(FIGURE_1_QUERY)   # CREATE AQ snapshot AS SELECT ...
        engine.start()
        engine.run(until=600.0)          # ten virtual minutes
    """

    def __init__(
        self,
        env: Optional[Runtime] = None,
        *,
        config: Optional[EngineConfig] = None,
        links: Optional[Dict[str, LinkModel]] = None,
        seed: int = 0,
    ) -> None:
        self.config = config or EngineConfig()
        if self.config.shards != 1:
            raise AortaError(
                f"AortaEngine owns exactly one shard; a config with "
                f"shards={self.config.shards} needs "
                f"repro.shard.ShardedEngine")
        #: The runtime backend everything runs on. An explicit ``env``
        #: wins; otherwise the config's ``runtime``/``time_scale``
        #: selection builds one (default: virtual time).
        self.env = env if env is not None else create_runtime(
            self.config.runtime, time_scale=self.config.time_scale)
        #: Master seed; every component RNG is a named substream of it
        #: (see repro.sim.rng.component_seed).
        self.seed = seed
        self.comm = CommunicationLayer(
            self.env, links=links,
            rng=random.Random(component_seed(seed, "comm:transport")))
        register_builtin_types(self.comm)

        self.schema = SchemaCatalog()
        self.cost_model = CostModel()
        for device_type in self.comm.registered_types():
            self.schema.register_table(self.comm.catalog(device_type))
            self.cost_model.register_cost_table(
                self.comm.cost_table(device_type))

        self.actions = ActionRegistry()
        install_builtin_actions(self.actions, self.cost_model)

        self.functions = FunctionRegistry()
        install_standard_functions(self.functions)
        self.functions.register("coverage", self._coverage, arity=2)

        from repro.core.tracing import EngineTracer
        from repro.obs import Observability
        self.tracer = EngineTracer()
        #: Metrics registry + span recorder (disabled unless
        #: config.observability); threaded through every component.
        self.obs = Observability(self.env, tracer=self.tracer,
                                 enabled=self.config.observability)
        self.comm.transport.obs = self.obs
        self.comm.prober.obs = self.obs
        #: Comm fast path (DESIGN.md decision 10). Both pieces are None
        #: unless their config knob is on, and the off path is
        #: byte-identical to a pre-fastpath engine.
        self.pool: Optional[ConnectionPool] = None
        if self.config.connection_pool:
            self.pool = ConnectionPool(
                self.env, self.comm.transport,
                capacity=self.config.pool_capacity,
                idle_seconds=self.config.pool_idle_seconds,
                obs=self.obs)
            self.comm.transport.pool = self.pool
        self.status_cache: Optional[DeviceStatusCache] = None
        if self.config.status_cache:
            self.status_cache = DeviceStatusCache(
                self.env,
                default_ttl=self.config.status_ttl_seconds,
                ttls=self.config.status_ttls,
                obs=self.obs)
        self.locks = DeviceLockManager(self.env, obs=self.obs)
        #: Per-device circuit breakers; None when health tracking is
        #: not configured. The prober feeds it probe outcomes and the
        #: dispatcher feeds it execution outcomes.
        self.health: Optional[DeviceHealthTracker] = None
        if self.config.health is not None:
            self.health = DeviceHealthTracker(self.env, self.config.health,
                                              tracer=self.tracer,
                                              obs=self.obs)
            self.comm.prober.health = self.health
            if self.pool is not None or self.status_cache is not None:
                # Breaker transitions make a device's last-known state
                # untrustworthy: drop its pooled channel and cached
                # status so nothing is reused across a quarantine edge.
                self.health.transition_listeners.append(
                    self._on_breaker_transition)
        #: Overload-control plane (DESIGN.md decision 12); None unless
        #: config.overload, and the off path is byte-identical to a
        #: pre-overload engine.
        self.overload: Optional[OverloadControlPlane] = None
        if self.config.overload:
            policy = self.config.overload_policy or OverloadPolicy()
            self.overload = OverloadControlPlane(
                self.env, policy, self.cost_model,
                device_lookup=self.comm.registry.get,
                fleet_size=lambda: len(self.comm.registry),
                tracer=self.tracer, obs=self.obs)
        self.dispatcher = Dispatcher(self.env, self.comm, self.cost_model,
                                     self.locks, self.config,
                                     tracer=self.tracer,
                                     health=self.health,
                                     obs=self.obs,
                                     status_cache=self.status_cache,
                                     overload=self.overload)
        self.planner = Planner(self.schema, self.actions, self.functions,
                               self.comm)
        self.continuous = ContinuousQueryExecutor(
            self.env, self.comm, self.functions, self.dispatcher,
            self.config)

        #: Assets for CREATE ACTION: profile path -> (profile, resolver,
        #: device-parameter map, select_all flag).
        self._profile_assets: Dict[
            str, Tuple[ActionProfile, QuantityResolver,
                       Dict[str, str], bool]] = {}
        self._started = False

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------
    def add_device(self, device: Device) -> Device:
        """Admit one device to the network."""
        self.comm.add_device(device)
        return device

    def add_devices(self, devices: List[Device]) -> None:
        """Admit several devices."""
        for device in devices:
            self.add_device(device)

    def _on_breaker_transition(self, device_id: str,
                               state: "BreakerState") -> None:
        """Invalidate fast-path state on any circuit-breaker edge."""
        reason = f"breaker-{state.value}"
        if self.pool is not None:
            self.pool.invalidate(device_id, reason=reason)
        if self.status_cache is not None:
            self.status_cache.invalidate(device_id, reason=reason)

    # ------------------------------------------------------------------
    # Built-in function needing engine context
    # ------------------------------------------------------------------
    def _coverage(self, camera_id: str, location: Any) -> bool:
        """The paper's coverage(camera_id, location) Boolean function."""
        if camera_id not in self.comm.registry:
            return False
        device = self.comm.registry.get(camera_id)
        if not isinstance(device, PanTiltZoomCamera):
            raise QueryError(
                f"coverage() expects a camera, {camera_id!r} is a "
                f"{device.device_type}"
            )
        return device.covers(Point(location.x, location.y))

    # ------------------------------------------------------------------
    # User-defined action assets (the pre-registration steps)
    # ------------------------------------------------------------------
    def install_action_code(self, library_path: str,
                            implementation: ActionImplementation) -> None:
        """Install the executable a CREATE ACTION library path names.

        This is the reproduction's stand-in for "the user must
        pre-compile the code block of the action into a dynamically
        linked library" (Section 2.2).
        """
        self.actions.library.install(library_path, implementation)

    def install_action_profile(
        self,
        profile_path: str,
        profile: ActionProfile,
        resolver: QuantityResolver,
        *,
        device_parameters: Optional[Dict[str, str]] = None,
        select_all: bool = False,
    ) -> None:
        """Install the profile a CREATE ACTION PROFILE path names.

        ``device_parameters`` maps parameter names to the device static
        attribute that identifies the target device (e.g.
        ``{"phone_no": "number"}``). ``select_all=True`` makes the
        action execute on every candidate instead of the cost-optimal
        one (see :class:`~repro.actions.ActionDefinition`).
        """
        if profile_path in self._profile_assets:
            raise AortaError(
                f"profile path {profile_path!r} already installed")
        self._profile_assets[profile_path] = (
            profile, resolver, dict(device_parameters or {}), select_all)

    # ------------------------------------------------------------------
    # The declarative interface
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> Any:
        """Execute one statement of the declarative interface.

        Returns the registered :class:`ActionDefinition` for CREATE
        ACTION, the :class:`RegisteredQuery` for CREATE AQ, ``None`` for
        DROP AQ, and a :class:`SnapshotPlan` for plain SELECT (drive it
        with :meth:`run_select`, or execute it inside a running
        simulation).
        """
        return self.execute_statement(parse(sql))

    def execute_statement(self, statement: Statement) -> Any:
        if isinstance(statement, ExplainStatement):
            return self._explain(statement.target)
        if isinstance(statement, CreateActionStatement):
            return self._create_action(statement)
        if isinstance(statement, CreateAQStatement):
            return self._create_aq(statement)
        if isinstance(statement, DropAQStatement):
            self.continuous.drop(statement.name)
            return None
        if isinstance(statement, SelectQuery):
            return self.planner.plan_snapshot(statement)
        raise QueryError(
            f"unsupported statement {type(statement).__name__}")

    def _explain(self, statement: Statement) -> str:
        """Render a statement's plan without executing or registering."""
        if isinstance(statement, CreateAQStatement):
            plan = self.planner.plan_continuous(statement.name,
                                                statement.query)
            return plan.describe()
        if isinstance(statement, SelectQuery):
            return self.planner.plan_snapshot(statement).describe()
        raise QueryError(
            f"EXPLAIN supports SELECT and CREATE AQ, not "
            f"{type(statement).__name__}"
        )

    def _create_action(
        self, statement: CreateActionStatement
    ) -> ActionDefinition:
        implementation = self.actions.library.resolve(statement.library_path)
        if statement.profile_path not in self._profile_assets:
            raise BindingError(
                f"no profile installed for path "
                f"{statement.profile_path!r}; call install_action_profile "
                f"before CREATE ACTION references it"
            )
        profile, resolver, device_parameters, select_all = (
            self._profile_assets[statement.profile_path])
        if profile.action_name != statement.name:
            raise BindingError(
                f"profile at {statement.profile_path!r} is for action "
                f"{profile.action_name!r}, not {statement.name!r}"
            )
        parameters = tuple(
            ActionParameter(
                name=decl.name,
                type_name=decl.type_name,
                device_attribute=device_parameters.get(decl.name, ""),
            )
            for decl in statement.parameters
        )
        definition = ActionDefinition(
            name=statement.name,
            device_type=profile.device_type,
            parameters=parameters,
            implementation=implementation,
            profile=profile,
            resolver=resolver,
            library_path=statement.library_path,
            profile_path=statement.profile_path,
            select_all=select_all,
        )
        self.actions.register(definition)
        self.cost_model.register_action(profile, resolver)
        return definition

    def _create_aq(self, statement: CreateAQStatement) -> RegisteredQuery:
        plan = self.planner.plan_continuous(statement.name, statement.query)
        return self.continuous.register(plan)

    def create_aq(self, sql: str, *, priority: int = 1,
                  deadline_seconds: Optional[float] = None,
                  ) -> RegisteredQuery:
        """CREATE AQ with an overload-control service class.

        Like :meth:`execute` on a CREATE AQ statement, but stamps the
        query's priority tier and relative service deadline (virtual
        seconds from emission) onto every request it emits. The class
        only influences behaviour when ``config.overload`` is on; with
        admission rate limits configured, registration itself may be
        refused with :class:`~repro.errors.AdmissionError`.
        """
        statement = parse(sql)
        if not isinstance(statement, CreateAQStatement):
            raise QueryError("create_aq() expects a CREATE AQ statement")
        plan = self.planner.plan_continuous(statement.name, statement.query)
        return self.continuous.register(plan, priority=priority,
                                        deadline_seconds=deadline_seconds)

    def enable_query(self, name: str) -> None:
        """Resume a paused continuous query."""
        self._query(name).enabled = True

    def disable_query(self, name: str) -> None:
        """Pause a continuous query without dropping it.

        Its event-edge memory is preserved; re-enabling resumes exactly
        where detection left off.
        """
        self._query(name).enabled = False

    def _query(self, name: str):
        if name not in self.continuous.queries:
            raise QueryError(f"no registered query {name!r}")
        return self.continuous.queries[name]

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the continuous executor and the dispatcher."""
        if self._started:
            raise AortaError("engine already started")
        self._started = True
        self.dispatcher.start()
        self.continuous.start()
        if self.overload is not None:
            self.overload.start()

    def run(self, until: float,
            max_events: Optional[int] = None) -> float:
        """Advance the runtime to time ``until``.

        ``max_events`` caps how many events this call may process;
        exceeding it raises :class:`~repro.errors.SimulationError` with
        queue diagnostics instead of looping forever on a runaway
        process (useful as a watchdog in tests and services).
        """
        with self.obs.span("engine.run"):
            stopped = self.env.run(until=until, max_events=max_events)
        self.obs.inc("engine.runs")
        return stopped

    def run_select(self, sql: str) -> List[Tuple[Any, ...]]:
        """Convenience: execute a snapshot SELECT to completion.

        Only valid when the caller owns the simulation loop (e.g.
        scripts and tests) — it drains the event queue.
        """
        plan = self.execute(sql)
        if not isinstance(plan, SnapshotPlan):
            raise QueryError("run_select() only executes SELECT statements")
        rows: List[Tuple[Any, ...]] = []

        def runner(env: Runtime) -> Generator[Any, Any, None]:
            result = yield from plan.execute()
            rows.extend(result)

        self.env.process(runner(self.env))
        self.env.run()
        return rows

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def completed_requests(self) -> List[ActionRequest]:
        """Every action request that finished dispatch, oldest first."""
        return self.dispatcher.completed

    def device_report(self) -> Dict[str, Dict[str, Any]]:
        """Per-device utilization snapshot.

        Reports what the paper's objective cares about — how evenly the
        action workload landed on the devices ("balance the action
        workload on all available devices and improve device
        utilization", Section 5.1).
        """
        horizon = self.env.now
        report: Dict[str, Dict[str, Any]] = {}
        for device in self.comm.registry:
            report[device.device_id] = {
                "device_type": device.device_type,
                "state": device.state.value,
                "operations": device.operations_executed,
                "busy_seconds": device.busy_seconds,
                "utilization": (device.busy_seconds / horizon
                                if horizon > 0 else 0.0),
            }
        return report

    def metrics(self) -> Dict[str, Any]:
        """The deterministic metric snapshot of this engine's registry.

        Sections are empty while ``config.observability`` is off — the
        registry exists but nothing writes to it.
        """
        return self.obs.registry.snapshot()

    def query_report(self) -> List[Dict[str, Any]]:
        """Per-query catalog listing: name, state, per-query counters.

        Registration order; backs ``python -m repro metrics --queries``
        and the sharded coordinator's fleet-wide aggregation.
        """
        return self.continuous.catalog.report()

    def statistics(self) -> Dict[str, Any]:
        """A status snapshot for monitoring and tests.

        O(1): outcome totals are maintained by the dispatcher as
        requests complete, not recounted from the completion log.
        """
        serviced = self.dispatcher.serviced_total
        failed = self.dispatcher.failed_total
        stats = {
            "virtual_time": self.env.now,
            "devices": len(self.comm.registry),
            "queries": len(self.continuous.queries),
            "polls": self.continuous.polls,
            "requests_completed": len(self.completed_requests),
            "requests_serviced": serviced,
            "requests_failed": failed,
            "probes_sent": self.comm.prober.probes_sent,
            "probes_failed": self.comm.prober.probes_failed,
            "lock_acquisitions": self.locks.acquisitions,
            "lock_contended": self.locks.contended_acquisitions,
            "lock_recoveries": self.locks.recoveries,
            "execution_attempts": self.dispatcher.attempts_total,
            "retries": self.dispatcher.retries_total,
            "failovers": self.dispatcher.failovers_total,
        }
        if self.health is not None:
            health = self.health.stats()
            stats["devices_quarantined"] = health["quarantines"]
            stats["devices_readmitted"] = health["recoveries"]
            stats["currently_quarantined"] = health["currently_quarantined"]
            stats["mean_recovery_seconds"] = health["mean_recovery_seconds"]
        # Fast-path keys appear only when their mechanism is on, so
        # fastpath-off snapshots stay identical to pre-fastpath ones.
        if self.pool is not None:
            for key, value in self.pool.stats().items():
                stats[f"pool_{key}"] = value
        if self.status_cache is not None:
            for key, value in self.status_cache.stats().items():
                stats[f"status_cache_{key}"] = value
        if self.config.incremental:
            for key, value in self.dispatcher.incremental_stats.items():
                stats[f"incremental_{key}"] = value
        # Predicate-index keys appear only when the index is on, so
        # index-off snapshots stay identical to scan-all ones.
        if self.config.predicate_index:
            for key, value in self.continuous.index_stats().items():
                stats[f"predicate_index_{key}"] = value
        # Overload keys appear only when the plane is on, so
        # overload-off snapshots stay identical to pre-overload ones.
        if self.overload is not None:
            stats["requests_shed"] = self.dispatcher.shed_total
            for key, value in self.overload.stats().items():
                stats[f"overload_{key}"] = value
            stats["overload_peak_queue_depth"] = {
                name: operator.peak_pending
                for name, operator in sorted(
                    self.dispatcher._operators.items())}
            stats["overload_queue_evictions"] = sum(
                operator.total_evicted
                for operator in self.dispatcher._operators.values())
        return stats
