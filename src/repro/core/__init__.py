"""The Aorta engine: the action-oriented query processor (Section 2).

:class:`AortaEngine` ties the layers together: the declarative
interface on top, the action-oriented query processing engine in the
middle (planner, optimizer/dispatcher, continuous executor, cost model,
device locks) and the uniform data communication layer at the bottom —
the paper's three-layer architecture (Section 2.1).
"""

from repro.core.config import EngineConfig
from repro.core.continuous import ContinuousQueryExecutor, RegisteredQuery
from repro.core.dispatcher import DispatchReport, Dispatcher
from repro.core.engine import AortaEngine

__all__ = [
    "AortaEngine",
    "ContinuousQueryExecutor",
    "DispatchReport",
    "Dispatcher",
    "EngineConfig",
    "RegisteredQuery",
]
