"""The sharded fleet coordinator.

One :class:`~repro.core.engine.AortaEngine` owns every device, query
and scheduling decision of its partition. :class:`ShardedEngine`
scales the system past a single scheduler loop by partitioning the
device space across N such engines — each shard on its own runtime
instance with its own seeded RNG substreams — and keeping only routing
and aggregation at the coordinator:

* **Placement** (:mod:`repro.shard.placement`) decides which shard
  owns a device; admission, stimulus injection and request routing all
  follow it.
* **AQ fan-out**: a continuous query registers on every shard; each
  shard's executor detects events and emits requests over its local
  devices only, so a fleet-wide standing query costs each shard only
  its own partition's candidate space.
* **Batch splitting**: an externally submitted action request is
  routed to the shard owning the plurality of its candidate devices,
  with its candidate set restricted to that shard's partition;
  completions merge back at the coordinator.
* **Aggregation**: fleet statistics sum/max per-shard snapshots, and
  fleet metrics merge per-shard registries through
  :meth:`~repro.obs.metrics.MetricsRegistry.merge` — optionally
  stamped with ``shard=<i>`` labels via
  :meth:`~repro.obs.metrics.MetricsRegistry.relabeled`.
* **Fleet capacity**: with overload control on, every shard's
  admission controller is rewired to one shared
  :class:`~repro.overload.admission.CapacityLedger`, so admission is
  per-shard (rate limits, queues) but capacity accounting is
  fleet-wide.

The 1-shard fleet is a pure pass-through: every operation delegates to
the single inner engine, whose construction is byte-identical to a
plain ``AortaEngine`` (same raw seed, same config) — the equivalence
suite in ``tests/shard`` pins this with golden traces.

**Parallel execution** (``EngineConfig(parallel=True)`` or
``ShardedEngine(..., parallel=True)``): each shard's engine moves into
its own worker (:mod:`repro.shard.parallel`) and lockstep rounds run
concurrently between deterministic barriers. The facade is unchanged —
routing, placement and aggregation still live here — but per-shard
*objects* (``fleet.shard(i)``, ``fleet.device(...)``) are unreachable
from the coordinator process; per-shard *data* flows through
``shard_statistics()`` / ``shard_dumps()`` / ``metrics()`` instead.
Parallel mode is opt-in, forced off on 1-shard fleets, and the off
path is byte-identical to serial lockstep (benchmark-gated).
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ShardingError
from repro.actions.request import ActionRequest
from repro.core.config import EngineConfig
from repro.core.engine import AortaEngine
from repro.devices.base import Device
from repro.obs.metrics import MetricsRegistry
from repro.runtime import Runtime
from repro.runtime.fleet import run_lockstep
from repro.shard.parallel import ParallelFleet
from repro.shard.placement import HashPlacement, PlacementPolicy
from repro.sim.rng import derive_seed

#: A device constructor bound to a shard's runtime at admission time.
#: The coordinator picks the owning shard first, then calls the
#: factory with that shard's runtime — devices bind their runtime at
#: construction, so they cannot be built before placement is known.
DeviceFactory = Callable[[Runtime], Device]

#: statistics() keys aggregated by maximum instead of sum: levels and
#: clocks, where adding shards would be meaningless.
_MAX_KEYS = frozenset({"virtual_time", "currently_quarantined"})

#: statistics() keys aggregated by unweighted mean across the shards
#: reporting them.
_MEAN_KEYS = frozenset({"mean_recovery_seconds"})

#: Dict-valued statistics() keys whose entries combine by maximum
#: (per-operator peak depths: the fleet peak is the worst shard, not
#: the sum of peaks that never coexisted in one queue).
_MAX_DICT_KEYS = frozenset({"overload_peak_queue_depth"})


def _aggregate_statistics(snapshots: List[Dict[str, Any]],
                          shards: int) -> Dict[str, Any]:
    """Fold per-shard statistics snapshots into one fleet dict.

    Shared by the serial and parallel paths (parallel snapshots arrive
    over worker pipes, serial ones from the inner engines — the
    arithmetic must not care). Numeric values sum, except clocks/levels
    (max) and ``mean_*`` keys (unweighted mean); booleans OR; dict
    values merge per entry (sum, except peak depths which take the
    max).
    """
    fleet: Dict[str, Any] = {"shards": shards}
    counts: Dict[str, int] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            counts[key] = counts.get(key, 0) + 1
            if isinstance(value, dict):
                bucket = fleet.setdefault(key, {})
                combine = max if key in _MAX_DICT_KEYS else \
                    (lambda a, b: a + b)
                for entry, amount in value.items():
                    bucket[entry] = combine(bucket[entry], amount) \
                        if entry in bucket else amount
            elif isinstance(value, bool):
                fleet[key] = fleet.get(key, False) or value
            elif key in _MAX_KEYS:
                fleet[key] = max(fleet.get(key, value), value)
            else:
                fleet[key] = fleet.get(key, 0) + value
    for key in _MEAN_KEYS:
        if key in fleet:
            fleet[key] = fleet[key] / counts[key]
    return fleet


def _merge_query_reports(
        reports: List[List[Dict[str, Any]]]) -> List[Dict[str, Any]]:
    """Merge per-shard query reports by query name (AQ fan-out).

    Counters sum, a query is ``enabled`` if any shard has it enabled,
    and descriptive fields come from the first shard reporting the
    query. Order follows shard 0's registration order, with queries
    seen only on later shards appended in encounter order.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    counter_keys = ("events_detected", "requests_emitted",
                    "requests_rejected", "uncovered_events")
    for report in reports:
        for entry in report:
            name = entry["name"]
            fleet_entry = merged.get(name)
            if fleet_entry is None:
                merged[name] = dict(entry)
                continue
            for key in counter_keys:
                fleet_entry[key] += entry[key]
            if entry["state"] == "enabled":
                fleet_entry["state"] = "enabled"
    return list(merged.values())


class ShardedEngine:
    """N engine shards behind one engine-shaped facade.

    Typical use::

        config = EngineConfig(shards=4)
        fleet = ShardedEngine(config=config, seed=0)
        fleet.add_device("cam1", lambda env: PanTiltZoomCamera(
            env, "cam1", Point(0, 0)))
        fleet.execute(CREATE_AQ_SQL)     # registers on every shard
        fleet.start()
        fleet.run(until=600.0)           # lockstep across shard clocks
        fleet.statistics()               # fleet-wide aggregate
    """

    def __init__(
        self,
        *,
        config: Optional[EngineConfig] = None,
        placement: Optional[PlacementPolicy] = None,
        seed: int = 0,
        parallel: Optional[bool] = None,
        parallel_backend: Optional[str] = None,
    ) -> None:
        self.config = config or EngineConfig()
        if parallel is not None and parallel != self.config.parallel:
            self.config = replace(self.config, parallel=parallel)
        if parallel_backend is not None \
                and parallel_backend != self.config.parallel_backend:
            self.config = replace(self.config,
                                  parallel_backend=parallel_backend)
        n = self.config.shards
        self.placement: PlacementPolicy = (
            placement if placement is not None else HashPlacement(n))
        if self.placement.n_shards != n:
            raise ShardingError(
                f"placement covers {self.placement.n_shards} shard(s) "
                f"but config.shards is {n}")
        self.seed = seed
        #: Whether this fleet runs shards in parallel workers. Forced
        #: off on 1-shard fleets: the pass-through path must stay
        #: byte-identical to a plain engine, and one shard has nothing
        #: to parallelize.
        self.parallel: bool = self.config.parallel and n > 1
        #: The worker fleet when parallel, else ``None`` — every facade
        #: method branches on it.
        self._fleet: Optional[ParallelFleet] = None
        #: The inner engines, one per shard (serial mode; empty when
        #: parallel — the engines live inside the workers). The 1-shard
        #: fleet reuses the raw master seed so it is byte-identical to
        #: a plain engine; a multi-shard fleet gives each shard an
        #: independent derived substream.
        self.shards: List[AortaEngine] = []
        if self.parallel:
            self._fleet = ParallelFleet(config=self.config, seed=seed)
        else:
            shard_config = replace(self.config, shards=1, parallel=False)
            self.shards = [
                AortaEngine(
                    config=shard_config,
                    seed=seed if n == 1
                    else derive_seed(seed, f"shard:{i}"))
                for i in range(n)
            ]
            if self.config.overload and n > 1:
                self._share_capacity_ledger()
        self._started = False

    def _share_capacity_ledger(self) -> None:
        """Point every shard's admission at one fleet-wide ledger."""
        from repro.overload import CapacityLedger, OverloadPolicy
        policy = self.config.overload_policy or OverloadPolicy()
        ledger = CapacityLedger(
            policy,
            fleet_size=lambda: sum(len(shard.comm.registry)
                                   for shard in self.shards))
        for shard in self.shards:
            assert shard.overload is not None
            shard.overload.admission.capacity = ledger

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.config.shards

    def shard(self, index: int) -> AortaEngine:
        """The shard at ``index``, bounds-checked (serial mode only)."""
        if self._fleet is not None:
            raise ShardingError(
                f"shard {index} runs in a "
                f"{self.config.parallel_backend} worker on a parallel "
                f"fleet; use shard_statistics()/shard_dumps()/metrics() "
                f"for per-shard data")
        if not 0 <= index < len(self.shards):
            raise ShardingError(
                f"no shard {index}; the fleet has shards "
                f"0..{len(self.shards) - 1}")
        return self.shards[index]

    def shard_of(self, device_id: str) -> int:
        """Index of the shard owning ``device_id`` (placement lookup)."""
        return self.placement.shard_of(device_id)

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------
    def add_device(self, device_id: str,
                   factory: DeviceFactory) -> Optional[Device]:
        """Admit one device to the shard its placement names.

        The factory receives the owning shard's runtime and must build
        a device with exactly ``device_id`` — a mismatch would strand
        the device on a shard routing will never look at, so it is
        refused loudly. On a parallel fleet the factory is replayed
        inside the owning worker (it must pickle — see
        :class:`~repro.shard.parallel.DeviceSpec`) and the built device
        stays there: the return value is ``None``.
        """
        index = self.placement.shard_of(device_id)
        if self._fleet is not None:
            self._fleet.add_device(index, device_id, factory)
            return None
        shard = self.shards[index]
        device = factory(shard.env)
        if device.device_id != device_id:
            raise ShardingError(
                f"factory for {device_id!r} built device "
                f"{device.device_id!r}; placement and routing key on "
                f"the declared id")
        shard.add_device(device)
        return device

    def device(self, device_id: str) -> Device:
        """Look up an admitted device on its owning shard."""
        if self._fleet is not None:
            raise ShardingError(
                f"device {device_id!r} lives inside shard "
                f"{self.placement.shard_of(device_id)}'s worker on a "
                f"parallel fleet; interact through inject()/submit()")
        shard = self.shards[self.placement.shard_of(device_id)]
        return shard.comm.registry.get(device_id)

    def inject(self, device_id: str, stimulus: Any) -> None:
        """Deliver a sensor stimulus to its owning shard's device."""
        if self._fleet is not None:
            self._fleet.inject(self.placement.shard_of(device_id),
                               device_id, stimulus)
            return
        device = self.device(device_id)
        inject = getattr(device, "inject", None)
        if inject is None:
            raise ShardingError(
                f"device {device_id!r} ({device.device_type}) does not "
                f"accept injected stimuli")
        inject(stimulus)

    # ------------------------------------------------------------------
    # The declarative interface
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> Any:
        """Execute one statement against the fleet.

        CREATE ACTION / CREATE AQ / DROP AQ fan out to every shard
        (returning the per-shard results as a list for the CREATE
        forms); EXPLAIN describes shard 0's plan (all shards plan
        identically). A snapshot SELECT needs one engine to own the
        whole candidate space, so it is only legal on a 1-shard fleet —
        on larger fleets, run it against a specific ``fleet.shard(i)``.
        """
        if self.n_shards == 1:
            return self.shards[0].execute(sql)
        from repro.query.ast import ExplainStatement, SelectQuery
        from repro.query.parser import parse
        statement = parse(sql)
        if isinstance(statement, SelectQuery):
            raise ShardingError(
                "snapshot SELECT spans one engine's device space; on a "
                f"{self.n_shards}-shard fleet run it against a single "
                "shard (fleet.shard(i).execute(...))")
        if isinstance(statement, ExplainStatement):
            if self._fleet is not None:
                return self._fleet.execute_one(0, sql)
            return self.shards[0].execute_statement(statement)
        if self._fleet is not None:
            # Registration handles are worker-local and unpicklable;
            # the fan-out forms return None on a parallel fleet.
            self._fleet.execute_all(sql)
            return None
        results = [shard.execute_statement(statement)
                   for shard in self.shards]
        return None if all(result is None for result in results) else results

    def create_aq(self, sql: str, *, priority: int = 1,
                  deadline_seconds: Optional[float] = None) -> Any:
        """CREATE AQ with a service class, registered on every shard.

        All-or-nothing: if any shard's admission control refuses the
        registration, the query is dropped from the shards that already
        accepted it before the error propagates — a standing query
        either watches the whole fleet or none of it.
        """
        if self.n_shards == 1:
            return self.shards[0].create_aq(
                sql, priority=priority, deadline_seconds=deadline_seconds)
        if self._fleet is not None:
            # Workers apply the same all-or-nothing rollback; the
            # registration handles stay worker-local (returns None).
            self._fleet.create_aq(sql, priority=priority,
                                  deadline_seconds=deadline_seconds)
            return None
        registered = []
        try:
            for shard in self.shards:
                registered.append(shard.create_aq(
                    sql, priority=priority,
                    deadline_seconds=deadline_seconds))
        except Exception:
            for shard, query in zip(self.shards, registered):
                shard.continuous.drop(query.plan.query_name)
            raise
        return registered

    def install_action_code(self, library_path: str,
                            implementation: Any) -> None:
        """Install a CREATE ACTION executable on every shard.

        On a parallel fleet the implementation crosses worker pipes, so
        it must be a picklable callable (a module-level function, not a
        closure).
        """
        if self._fleet is not None:
            self._fleet.install_action_code(library_path, implementation)
            return
        for shard in self.shards:
            shard.install_action_code(library_path, implementation)

    def install_action_profile(self, profile_path: str, profile: Any,
                               resolver: Any, **kwargs: Any) -> None:
        """Install a CREATE ACTION profile on every shard."""
        if self._fleet is not None:
            self._fleet.install_action_profile(profile_path, profile,
                                               resolver, kwargs)
            return
        for shard in self.shards:
            shard.install_action_profile(profile_path, profile, resolver,
                                         **kwargs)

    # ------------------------------------------------------------------
    # Request routing (cross-shard batch splitting)
    # ------------------------------------------------------------------
    def route(self, request: ActionRequest) -> Tuple[int, Tuple[str, ...]]:
        """The owning shard of one request, by candidate plurality.

        Returns ``(shard_index, owned_candidates)`` where the index is
        the shard owning the most of the request's candidate devices
        (ties break to the lowest index, so routing is deterministic)
        and the tuple is the request's candidates restricted to that
        shard's partition.
        """
        if not request.candidates:
            raise ShardingError(
                f"request {request.request_id!r} has no candidate "
                f"devices to route by")
        owners: Dict[int, List[str]] = {}
        for device_id in request.candidates:
            owners.setdefault(
                self.placement.shard_of(device_id), []).append(device_id)
        index = max(sorted(owners), key=lambda i: len(owners[i]))
        return index, tuple(owners[index])

    def submit(self, request: ActionRequest) -> int:
        """Route one external request to its owning shard's operator.

        The request's candidate set is narrowed to the owning shard's
        devices before submission (a shard cannot schedule onto devices
        it does not own). Returns the shard index the request landed
        on; with overload control on, the shard's admission may still
        mark it REJECTED (same contract as ``Dispatcher.submit``).
        """
        index, owned = self.route(request)
        request.candidates = owned
        if self._fleet is not None:
            # The request is pickled into the worker; this process's
            # copy stays inert and completions flow back through
            # completed_requests.
            self._fleet.submit(index, request)
            return index
        shard = self.shards[index]
        operator = shard.dispatcher.operator_for(
            shard.actions.get(request.action_name))
        shard.dispatcher.submit(operator, request)
        return index

    def submit_batch(self,
                     requests: List[ActionRequest]) -> Dict[int, int]:
        """Split a batch across shards; returns requests-per-shard."""
        routed: Dict[int, int] = {}
        for request in requests:
            index = self.submit(request)
            routed[index] = routed.get(index, 0) + 1
        return routed

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch every shard's executor, dispatcher and shedder."""
        if self._started:
            raise ShardingError("fleet already started")
        self._started = True
        if self._fleet is not None:
            self._fleet.start_all()
            return
        for shard in self.shards:
            shard.start()

    def run(self, until: float,
            max_events: Optional[int] = None) -> float:
        """Advance the fleet to ``until``.

        One shard delegates to the inner engine's ``run`` (identical
        call pattern to a plain engine, keeping traces byte-identical).
        Multiple shards advance in lockstep rounds of
        ``config.shard_quantum`` runtime seconds — concurrently across
        workers when parallel, sequentially on this thread when not —
        with per-shard ``engine.run`` spans wrapping the whole
        coordinated run and ``max_events`` as one fleet-wide cumulative
        event budget across all rounds and shards.
        """
        if self.n_shards == 1:
            return self.shards[0].run(until, max_events)
        if self._fleet is not None:
            return self._fleet.run(until, max_events,
                                   quantum=self.config.shard_quantum)
        with ExitStack() as stack:
            for shard in self.shards:
                stack.enter_context(shard.obs.span("engine.run"))
            stopped = run_lockstep(
                [shard.env for shard in self.shards], until,
                quantum=self.config.shard_quantum, max_events=max_events)
        for shard in self.shards:
            shard.obs.inc("engine.runs")
        return stopped

    # ------------------------------------------------------------------
    # 1-shard pass-through surface (golden-dump compatibility)
    # ------------------------------------------------------------------
    def _single(self, attribute: str) -> AortaEngine:
        if self.n_shards != 1:
            raise ShardingError(
                f"{attribute} is per-shard state on a "
                f"{self.n_shards}-shard fleet; access it via "
                f"fleet.shard(i).{attribute}")
        return self.shards[0]

    @property
    def env(self) -> Runtime:
        return self._single("env").env

    @property
    def tracer(self) -> Any:
        return self._single("tracer").tracer

    @property
    def obs(self) -> Any:
        return self._single("obs").obs

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    @property
    def completed_requests(self) -> List[ActionRequest]:
        """Every completed request fleet-wide, merged deterministically.

        One shard returns the engine's own completion log (same list
        object). Multiple shards merge by completion time, breaking
        ties by request id, so the order is independent of shard
        enumeration order. On a parallel fleet the requests are copies
        shipped back from the workers, with the owning shard index as a
        final tiebreak (worker-local auto ids can collide across
        shards).
        """
        if self.n_shards == 1:
            return self.shards[0].completed_requests
        merged: List[ActionRequest] = []
        if self._fleet is not None:
            keys: Dict[int, Tuple[Any, ...]] = {}
            for index, batch in enumerate(self._fleet.completed_all()):
                for request in batch:
                    keys[id(request)] = (
                        request.completed_at
                        if request.completed_at is not None
                        else float("inf"), request.request_id, index)
                merged.extend(batch)
            merged.sort(key=lambda request: keys[id(request)])
            return merged
        for shard in self.shards:
            merged.extend(shard.completed_requests)
        merged.sort(key=lambda request: (
            request.completed_at if request.completed_at is not None
            else float("inf"), request.request_id))
        return merged

    def device_report(self) -> Dict[str, Dict[str, Any]]:
        """Per-device utilization across the fleet (disjoint union)."""
        report: Dict[str, Dict[str, Any]] = {}
        if self._fleet is not None:
            for shard_report in self._fleet.device_reports():
                report.update(shard_report)
            return report
        for shard in self.shards:
            report.update(shard.device_report())
        return report

    def statistics(self) -> Dict[str, Any]:
        """A fleet-wide status snapshot.

        One shard returns the engine's own dict unchanged. Multiple
        shards aggregate per-shard snapshots: numeric values sum,
        except clocks/levels (max) and ``mean_*`` keys (unweighted
        mean); booleans OR; dict values merge per entry (sum, except
        peak depths which take the max). A ``shards`` key records the
        fleet width. Per-shard snapshots stay available through
        ``shard_statistics()``.
        """
        if self.n_shards == 1:
            return self.shards[0].statistics()
        return _aggregate_statistics(self.shard_statistics(),
                                     self.n_shards)

    def shard_statistics(self) -> List[Dict[str, Any]]:
        """Each shard's own statistics dict, in shard order."""
        if self._fleet is not None:
            return self._fleet.statistics_all()
        return [shard.statistics() for shard in self.shards]

    def query_report(self) -> List[Dict[str, Any]]:
        """Fleet-wide per-query catalog listing.

        One shard returns the engine's own report. Multiple shards
        merge per-shard reports by query name (AQ fan-out registers
        every query on every shard): counters sum, a query is
        ``enabled`` if any shard has it enabled, and descriptive fields
        come from the first shard reporting the query. Order follows
        shard 0's registration order, with queries seen only on later
        shards appended in encounter order.
        """
        if self.n_shards == 1:
            return self.shards[0].query_report()
        if self._fleet is not None:
            return _merge_query_reports(self._fleet.query_reports())
        return _merge_query_reports(
            [shard.query_report() for shard in self.shards])

    def metrics(self) -> Dict[str, Any]:
        """The fleet metric snapshot, merged without shard labels.

        Equals the plain engine's snapshot on a 1-shard fleet; on
        larger fleets, equal-name series from different shards fold
        together (counters/histograms add, gauges max). A parallel
        fleet additionally folds in the coordinator's ``shard.round.*``
        wall-clock series (round count, per-round and per-shard
        busy/barrier-wait time).
        """
        if self.n_shards == 1:
            return self.shards[0].metrics()
        merged = MetricsRegistry()
        if self._fleet is not None:
            for registry in self._fleet.registries():
                merged.merge(registry)
            merged.merge(self._fleet.round_registry)
            return merged.snapshot()
        for shard in self.shards:
            merged.merge(shard.obs.registry)
        return merged.snapshot()

    def shard_labeled_metrics(self) -> Dict[str, Any]:
        """The fleet metric snapshot with ``shard=<i>`` on every series.

        Per-shard registries stay unlabeled (pinning 1-shard golden
        identity); labels are stamped onto copies at render time, so
        the merged snapshot keeps one distinct series per shard. The
        parallel round registry merges as-is — its per-shard series
        already carry shard labels.
        """
        merged = MetricsRegistry()
        if self._fleet is not None:
            for index, registry in enumerate(self._fleet.registries()):
                merged.merge(registry.relabeled(shard=index))
            merged.merge(self._fleet.round_registry)
            return merged.snapshot()
        for index, shard in enumerate(self.shards):
            merged.merge(shard.obs.registry.relabeled(shard=index))
        return merged.snapshot()

    def shard_dumps(self) -> List[Dict[str, Any]]:
        """Normalized per-shard dumps, in shard order.

        The reproducibility surface shared by both execution modes: a
        serial fleet dumps its inner engines here, a parallel fleet
        fans the ``dump`` command out to its workers (each dumps its
        own engine in-process). The sharding benchmark gates
        ``parallel == serial`` on exactly this value.
        """
        from repro.obs.dump import dump_engine
        if self._fleet is not None:
            return self._fleet.dumps()
        return [dump_engine(shard) for shard in self.shards]

    def round_breakdown(self) -> Optional[Dict[str, Any]]:
        """Per-shard busy/barrier-wait wall-clock totals, or ``None``.

        Only a parallel fleet has barriers to account for; the serial
        coordinator returns ``None``.
        """
        if self._fleet is None:
            return None
        return self._fleet.round_breakdown()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release worker processes and the ledger service.

        A no-op on serial fleets (and safe to call repeatedly):
        everything lives in this process and the garbage collector owns
        it. Parallel fleets must be closed — or used as a context
        manager — so worker processes never outlive the run.
        """
        if self._fleet is not None:
            self._fleet.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
