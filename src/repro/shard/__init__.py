"""Sharded multi-engine fleets (DESIGN.md decision 13).

A shard is a whole :class:`~repro.core.engine.AortaEngine` over its
own runtime — scheduler, dispatcher, comm layer, continuous executor
and all. :class:`ShardedEngine` partitions the device space across N
shards by a :class:`PlacementPolicy` and keeps only routing and
aggregation at the coordinator, so fleet capacity scales with shard
count while each shard's scheduling problem shrinks to its partition.

Enable with ``EngineConfig(shards=N)``::

    from repro.shard import ShardedEngine

    fleet = ShardedEngine(config=EngineConfig(shards=8), seed=0)

True parallel execution (``EngineConfig(parallel=True)``) moves each
shard into its own worker process or thread — see
:mod:`repro.shard.parallel`; device factories must then be picklable,
which :class:`DeviceSpec` makes easy.
"""

from repro.shard.coordinator import DeviceFactory, ShardedEngine
from repro.shard.parallel import DeviceSpec, ParallelFleet, ShardWorker
from repro.shard.placement import (
    HashPlacement,
    PlacementPolicy,
    RegionPlacement,
)

__all__ = [
    "DeviceFactory",
    "DeviceSpec",
    "HashPlacement",
    "ParallelFleet",
    "PlacementPolicy",
    "RegionPlacement",
    "ShardWorker",
    "ShardedEngine",
]
