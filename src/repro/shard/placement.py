"""Device-to-shard placement policies.

A placement policy answers exactly one question — which shard owns a
device — and must answer it deterministically: the coordinator routes
device admission, band-event injection and action requests by it, and
two processes placing the same fleet must agree byte-for-byte.

Two policies cover the paper's deployment stories:

* :class:`HashPlacement` — stateless hash of the device id. Any
  process can compute ownership without a directory, assignment is
  total (every id owned by exactly one shard) and independent of the
  order devices are admitted in.
* :class:`RegionPlacement` — an explicit directory mapping device ids
  to shards, for fleets organized by physical region (a campus, a
  floor, a cell). Unknown devices are a loud
  :class:`~repro.errors.ShardingError`, never a silent default shard.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Mapping, Protocol, runtime_checkable

from repro.errors import ShardingError


@runtime_checkable
class PlacementPolicy(Protocol):
    """Structural interface of a placement policy."""

    #: Number of shards this policy places onto.
    n_shards: int

    def shard_of(self, device_id: str) -> int:
        """Index of the shard owning ``device_id`` (0-based)."""
        ...


def _check_shard_count(n_shards: int) -> int:
    if n_shards < 1:
        raise ShardingError(f"n_shards must be >= 1, got {n_shards}")
    return n_shards


class HashPlacement:
    """Stable hash-of-device-id placement.

    Uses BLAKE2b rather than Python's ``hash()`` so the assignment is
    identical across interpreter runs, platforms and processes (the
    built-in string hash is salted per process).
    """

    def __init__(self, n_shards: int) -> None:
        self.n_shards = _check_shard_count(n_shards)

    def shard_of(self, device_id: str) -> int:
        if not device_id:
            raise ShardingError("cannot place an empty device id")
        digest = hashlib.blake2b(device_id.encode("utf-8"),
                                 digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.n_shards

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashPlacement(n_shards={self.n_shards})"


class RegionPlacement:
    """Explicit device-id -> shard directory placement.

    Built either directly from an assignment map or from named regions
    via :meth:`from_regions`. Looking up a device the directory does
    not know raises :class:`~repro.errors.ShardingError` — a fleet
    organized by explicit regions must never guess ownership.
    """

    def __init__(self, n_shards: int,
                 assignments: Mapping[str, int]) -> None:
        self.n_shards = _check_shard_count(n_shards)
        self._assignments: Dict[str, int] = {}
        for device_id, shard in assignments.items():
            if not 0 <= shard < n_shards:
                raise ShardingError(
                    f"device {device_id!r} assigned to shard {shard}, "
                    f"but the fleet has shards 0..{n_shards - 1}")
            self._assignments[device_id] = shard

    @classmethod
    def from_regions(
        cls, regions: Mapping[str, Iterable[str]]
    ) -> "RegionPlacement":
        """One shard per region, indexed in sorted region-name order.

        ``{"east": ["cam1"], "west": ["cam2"]}`` puts cam1 on shard 0
        and cam2 on shard 1 regardless of dict insertion order, so the
        shard layout is a pure function of the region map's contents.
        """
        if not regions:
            raise ShardingError("region placement needs at least one region")
        assignments: Dict[str, int] = {}
        for index, name in enumerate(sorted(regions)):
            for device_id in regions[name]:
                if device_id in assignments:
                    raise ShardingError(
                        f"device {device_id!r} appears in more than one "
                        f"region")
                assignments[device_id] = index
        return cls(len(regions), assignments)

    def shard_of(self, device_id: str) -> int:
        shard = self._assignments.get(device_id)
        if shard is None:
            raise ShardingError(
                f"device {device_id!r} has no region placement; known "
                f"devices: {len(self._assignments)} across "
                f"{self.n_shards} shard(s). Add it to the region map "
                f"before admitting it to the fleet.")
        return shard

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RegionPlacement(n_shards={self.n_shards}, "
                f"devices={len(self._assignments)})")
