"""True parallel shard execution: worker processes behind pipes.

The serial coordinator steps every shard sequentially on one thread,
so adding shards buys no wall-clock speedup — the fleet is bounded by
a single core no matter how many engines it owns. This module moves
each shard's engine into its own **worker** (a spawned interpreter by
default, a thread as the portable fallback) and drives the fleet
through the same bounded-skew rounds as serial lockstep, now computed
concurrently between barriers.

Three design rules keep the parallel path byte-identical to serial
lockstep (``benchmarks/bench_sharding.py`` gates it):

* **Replayed construction, not pickled engines.** An engine is a web
  of generators, open spans and runtime-bound devices — none of it
  picklable, all of it a pure function of its construction commands.
  So a worker builds its :class:`~repro.core.engine.AortaEngine`
  in-process from ``(config, derived seed, shard index)`` and replays
  the coordinator's construction commands (:class:`DeviceSpec`
  factories, AQ registrations) in order. Same commands, same seeds,
  same engine.
* **Deterministic barriers.** :func:`~repro.runtime.fleet.
  run_parallel_rounds` collects round replies in shard-index order,
  never arrival order, so everything downstream of a barrier is
  independent of scheduling noise.
* **Coordinator-hosted capacity ledger.** With overload control on,
  the fleet-wide :class:`~repro.overload.admission.CapacityLedger`
  stays in the coordinator; workers forward ``available``/``commit``
  synchronously over a dedicated pipe (:class:`RemoteCapacityLedger` →
  :class:`LedgerService`). The ledger's window-keyed, order-independent
  arithmetic (DESIGN.md decision 13) makes the final accounting exact
  under any within-round interleaving.

The command protocol is a plain ``(op, args)`` tuple stream over a
duplex pipe, one synchronous reply per command: ``add_device``,
``inject``, ``execute``, ``create_aq``, ``drop_aq``, ``install_code``,
``install_profile``, ``submit``, ``start``, ``now``, ``run_begin``,
``run_round``, ``run_end``, ``statistics``, ``device_report``,
``query_report``, ``completed``, ``metrics``, ``dump``, ``shutdown``.
Everything crossing the pipe must pickle — which is exactly why device
factories are :class:`DeviceSpec` values (an importable callable plus
its arguments) instead of closures.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import pickle
import threading
import time
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import repro.errors as _errors
from repro.errors import AortaError, ShardingError, SimulationError
from repro.core.config import EngineConfig
from repro.obs.metrics import MetricsRegistry
from repro.runtime.fleet import (
    RoundBudgetError,
    RoundResult,
    run_parallel_rounds,
)
from repro.sim.rng import derive_seed

#: One command on the wire: (operation name, positional payload).
Command = Tuple[str, Tuple[Any, ...]]

#: Seconds the coordinator waits for a worker's ready handshake
#: (spawn + engine construction) before declaring it dead.
READY_TIMEOUT = 60.0

#: Seconds a closing coordinator waits for a worker to exit cleanly
#: before escalating to terminate/kill.
SHUTDOWN_TIMEOUT = 10.0


class DeviceSpec:
    """A picklable device factory: ``factory(env, *args, **kwargs)``.

    The parallel fleet replays device construction inside worker
    processes, so factories must survive pickling — which closures and
    lambdas do not. A spec names an importable callable (usually the
    device class itself) plus the arguments after ``env``::

        fleet.add_device("cam1", DeviceSpec(
            PanTiltZoomCamera, "cam1", Point(0, 0), facing=180.0))

    Specs are ordinary callables, so they work identically on the
    serial path — one scenario builder can feed both modes.
    """

    __slots__ = ("factory", "args", "kwargs")

    def __init__(self, factory: Callable[..., Any], /,
                 *args: Any, **kwargs: Any) -> None:
        self.factory = factory
        self.args = args
        self.kwargs = kwargs

    def __call__(self, env: Any) -> Any:
        return self.factory(env, *self.args, **self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [getattr(self.factory, "__name__", repr(self.factory))]
        parts += [repr(arg) for arg in self.args]
        parts += [f"{key}={value!r}" for key, value in self.kwargs.items()]
        return f"DeviceSpec({', '.join(parts)})"

    def __getstate__(self) -> Tuple[Any, ...]:
        return (self.factory, self.args, self.kwargs)

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        self.factory, self.args, self.kwargs = state


# ----------------------------------------------------------------------
# The capacity-ledger RPC (coordinator-hosted service, worker client)
# ----------------------------------------------------------------------
class RemoteCapacityLedger:
    """Worker-side stand-in for the fleet's shared capacity ledger.

    Each call is one synchronous round trip on the worker's dedicated
    ledger pipe — admission inside a worker blocks until the
    coordinator has applied the operation, exactly like the serial
    path's direct method call. Duck-types the two methods
    :class:`~repro.overload.admission.AdmissionController` uses.
    """

    def __init__(self, conn: multiprocessing.connection.Connection) -> None:
        self._conn = conn

    def available(self, now: float) -> float:
        self._conn.send(("available", (now,)))
        return float(self._conn.recv())

    def commit(self, now: float, seconds: float) -> None:
        self._conn.send(("commit", (now, seconds)))
        self._conn.recv()


class LedgerService:
    """Coordinator-side thread serving ledger RPCs from every worker.

    Workers call the ledger *while they are computing a round*, i.e.
    while the coordinator's main thread is blocked at the barrier — so
    the service runs on its own daemon thread, multiplexing all worker
    ledger pipes through :func:`multiprocessing.connection.wait`.
    Commit arithmetic is window-keyed and order-independent, so the
    servicing order (arrival order) never changes the final ledger
    state.
    """

    def __init__(self, ledger: Any) -> None:
        self.ledger = ledger
        self._conns: List[multiprocessing.connection.Connection] = []
        self._wake_recv, self._wake_send = multiprocessing.Pipe(
            duplex=False)
        self._thread: Optional[threading.Thread] = None
        self._stopping = False

    def channel(self) -> multiprocessing.connection.Connection:
        """A fresh worker-side connection; the service keeps its end."""
        if self._thread is not None:
            raise ShardingError(
                "ledger channels must be created before the service "
                "starts")
        ours, theirs = multiprocessing.Pipe()
        self._conns.append(ours)
        return theirs

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._serve, name="repro-ledger-service", daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        conns = list(self._conns)
        while conns:
            ready = multiprocessing.connection.wait(
                conns + [self._wake_recv])
            if self._wake_recv in ready:
                if self._stopping:
                    return
                ready = [conn for conn in ready
                         if conn is not self._wake_recv]
            for conn in ready:
                try:
                    op, args = conn.recv()
                except (EOFError, OSError):
                    conns.remove(conn)
                    conn.close()
                    continue
                if op == "available":
                    conn.send(self.ledger.available(*args))
                elif op == "commit":
                    self.ledger.commit(*args)
                    conn.send(True)
                else:  # pragma: no cover - protocol misuse
                    conn.send(None)

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stopping = True
        try:
            self._wake_send.send(b"stop")
        except OSError:  # pragma: no cover - already torn down
            pass
        self._thread.join(timeout=SHUTDOWN_TIMEOUT)
        self._thread = None
        for conn in self._conns:
            conn.close()


# ----------------------------------------------------------------------
# The worker side
# ----------------------------------------------------------------------
class _WorkerHost:
    """One shard engine plus its command handlers, inside the worker."""

    def __init__(self, config: EngineConfig, seed: int,
                 shard_index: int,
                 ledger_conn: Optional[
                     multiprocessing.connection.Connection]) -> None:
        from repro.core.engine import AortaEngine
        self.shard_index = shard_index
        self.engine = AortaEngine(config=config, seed=seed)
        if self.engine.overload is not None and ledger_conn is not None:
            # Fleet capacity lives at the coordinator; admission's
            # rate buckets and queue limits stay shard-local.
            self.engine.overload.admission.capacity = \
                RemoteCapacityLedger(ledger_conn)
        self._run_span: Any = None

    # Each handler is one protocol op; the serve loop dispatches by
    # name, so adding an op is adding a method.
    def op_add_device(self, device_id: str, spec: Any) -> None:
        device = spec(self.engine.env)
        if device.device_id != device_id:
            raise ShardingError(
                f"factory for {device_id!r} built device "
                f"{device.device_id!r}; placement and routing key on "
                f"the declared id")
        self.engine.add_device(device)

    def op_inject(self, device_id: str, stimulus: Any) -> None:
        device = self.engine.comm.registry.get(device_id)
        inject = getattr(device, "inject", None)
        if inject is None:
            raise ShardingError(
                f"device {device_id!r} ({device.device_type}) does not "
                f"accept injected stimuli")
        inject(stimulus)

    def op_execute(self, sql: str) -> Optional[str]:
        result = self.engine.execute(sql)
        # Registration handles (RegisteredQuery, ActionDefinition) are
        # bound to this worker's runtime and cannot cross the pipe;
        # EXPLAIN's rendered plan is the only portable result.
        return result if isinstance(result, str) else None

    def op_create_aq(self, sql: str, priority: int,
                     deadline_seconds: Optional[float]) -> str:
        query = self.engine.create_aq(
            sql, priority=priority, deadline_seconds=deadline_seconds)
        return query.plan.query_name

    def op_drop_aq(self, name: str) -> None:
        self.engine.continuous.drop(name)

    def op_install_code(self, library_path: str,
                        implementation: Any) -> None:
        self.engine.install_action_code(library_path, implementation)

    def op_install_profile(self, profile_path: str, profile: Any,
                           resolver: Any, kwargs: Dict[str, Any]) -> None:
        self.engine.install_action_profile(profile_path, profile,
                                           resolver, **kwargs)

    def op_submit(self, request: Any) -> None:
        operator = self.engine.dispatcher.operator_for(
            self.engine.actions.get(request.action_name))
        self.engine.dispatcher.submit(operator, request)

    def op_start(self) -> None:
        self.engine.start()

    def op_now(self) -> float:
        return self.engine.env.now

    def op_run_begin(self) -> None:
        # Mirrors the serial coordinator: one engine.run span wraps the
        # whole coordinated run, entered before the first round.
        self._run_span = self.engine.obs.span("engine.run")
        self._run_span.__enter__()

    def op_run_round(self, deadline: float,
                     max_events: Optional[int]) -> Dict[str, Any]:
        env = self.engine.env
        started = time.perf_counter()
        before = env.events_processed
        try:
            if env.now <= deadline:
                env.run(until=deadline, max_events=max_events)
        except SimulationError as error:
            used = env.events_processed - before
            if max_events is not None and used >= max_events:
                raise RoundBudgetError(
                    str(error), now=env.now, events=used,
                    pending=env.pending_events) from error
            raise
        return {
            "now": env.now,
            "events": env.events_processed - before,
            "busy_seconds": time.perf_counter() - started,
            "pending": env.pending_events,
        }

    def op_run_end(self) -> None:
        if self._run_span is not None:
            self._run_span.__exit__(None, None, None)
            self._run_span = None
        self.engine.obs.inc("engine.runs")

    def op_statistics(self) -> Dict[str, Any]:
        return self.engine.statistics()

    def op_device_report(self) -> Dict[str, Dict[str, Any]]:
        return self.engine.device_report()

    def op_query_report(self) -> List[Dict[str, Any]]:
        return self.engine.query_report()

    def op_completed(self) -> List[Any]:
        return self.engine.completed_requests

    def op_metrics(self) -> MetricsRegistry:
        return self.engine.obs.registry

    def op_dump(self) -> Dict[str, Any]:
        from repro.obs.dump import dump_engine
        return dump_engine(self.engine)


def _serve(conn: multiprocessing.connection.Connection,
           ledger_conn: Optional[multiprocessing.connection.Connection],
           config: EngineConfig, seed: int, shard_index: int) -> None:
    """The worker main loop: build the engine, then serve commands.

    Runs as the target of a spawned process or a daemon thread. Every
    command gets exactly one reply: ``("ok", value)``, ``("budget",
    payload)`` for an exhausted round allowance, or ``("error",
    (type_name, message))`` for a handler failure — handler failures
    do *not* kill the worker, so admission refusals and lookup errors
    propagate to the coordinator exactly like serial exceptions.
    """
    try:
        try:
            host = _WorkerHost(config, seed, shard_index, ledger_conn)
        except BaseException as error:  # noqa: BLE001 - reported, then exit
            conn.send(("error", (type(error).__name__, str(error))))
            return
        conn.send(("ok", "ready"))
        while True:
            try:
                op, args = conn.recv()
            except (EOFError, OSError):
                return
            if op == "shutdown":
                conn.send(("ok", None))
                return
            handler = getattr(host, f"op_{op}", None)
            if handler is None:
                conn.send(("error",
                           ("ShardingError", f"unknown command {op!r}")))
                continue
            try:
                conn.send(("ok", handler(*args)))
            except RoundBudgetError as error:
                conn.send(("budget", {
                    "message": str(error), "now": error.now,
                    "events": error.events, "pending": error.pending}))
            except Exception as error:  # noqa: BLE001 - shipped to caller
                conn.send(("error", (type(error).__name__, str(error))))
    finally:
        conn.close()
        if ledger_conn is not None:
            ledger_conn.close()


# ----------------------------------------------------------------------
# The coordinator side
# ----------------------------------------------------------------------
def _rehydrate(index: int, name: str, message: str) -> AortaError:
    """Rebuild a worker-raised framework error coordinator-side.

    Known :mod:`repro.errors` types come back as themselves, so e.g. an
    ``AdmissionError`` from a worker's registration gate is caught by
    the same ``except`` clauses as on the serial path; anything else
    degrades to :class:`ShardingError` naming the shard.
    """
    kind = getattr(_errors, name, None)
    if isinstance(kind, type) and issubclass(kind, AortaError):
        return kind(message)
    return ShardingError(f"shard {index}: {name}: {message}")


class ShardWorker:
    """The coordinator's handle on one shard worker.

    Owns the worker's process (or thread) and its command pipe,
    exposes synchronous :meth:`call` plus the split-phase
    :meth:`begin_round`/:meth:`finish_round` pair the barrier loop
    needs, and converts transport failures — a dead process, a broken
    pipe — into :class:`ShardingError` naming the shard instead of
    hanging the barrier.
    """

    def __init__(self, index: int, config: EngineConfig, seed: int,
                 backend: str,
                 ledger_channel: Optional[
                     multiprocessing.connection.Connection] = None,
                 ) -> None:
        self.index = index
        self.backend = backend
        self.dead = False
        self._conn, child = multiprocessing.Pipe()
        self._process: Optional[multiprocessing.process.BaseProcess] = None
        self._thread: Optional[threading.Thread] = None
        if backend == "process":
            context = multiprocessing.get_context("spawn")
            self._process = context.Process(
                target=_serve,
                args=(child, ledger_channel, config, seed, index),
                name=f"repro-shard-{index}", daemon=True)
            self._process.start()
            # The parent's copies of the child-held ends must close so
            # a dead worker surfaces as EOF instead of a hang.
            child.close()
            if ledger_channel is not None:
                ledger_channel.close()
        else:
            self._thread = threading.Thread(
                target=_serve,
                args=(child, ledger_channel, config, seed, index),
                name=f"repro-shard-{index}", daemon=True)
            self._thread.start()
        if not self._conn.poll(READY_TIMEOUT):
            self._fail("handshake")
        self._recv("handshake")

    # -- transport ------------------------------------------------------
    def _fail(self, op: str) -> "ShardingError":
        self.dead = True
        raise ShardingError(
            f"shard {self.index} worker ({self.backend}) died during "
            f"{op!r}; the fleet cannot continue without its partition")

    def _send(self, op: str, args: Tuple[Any, ...]) -> None:
        if self.dead:
            self._fail(op)
        try:
            self._conn.send((op, args))
        except (pickle.PicklingError, AttributeError, TypeError) as error:
            # Connection.send pickles before writing, so a pickling
            # failure leaves the pipe clean and the worker alive.
            raise ShardingError(
                f"command {op!r} for shard {self.index} is not "
                f"picklable ({error}); parallel fleets need importable "
                f"payloads — use DeviceSpec or module-level callables "
                f"instead of closures") from error
        except (BrokenPipeError, ConnectionResetError, EOFError,
                OSError):
            self._fail(op)

    def _recv(self, op: str) -> Any:
        try:
            status, payload = self._conn.recv()
        except (BrokenPipeError, ConnectionResetError, EOFError,
                OSError):
            self._fail(op)
        if status == "ok":
            return payload
        if status == "budget":
            raise RoundBudgetError(
                payload["message"], now=payload["now"],
                events=payload["events"], pending=payload["pending"])
        name, message = payload
        raise _rehydrate(self.index, name, message)

    def call(self, op: str, *args: Any) -> Any:
        """One synchronous command round trip."""
        self._send(op, args)
        return self._recv(op)

    # -- RoundPeer ------------------------------------------------------
    def now(self) -> float:
        return float(self.call("now"))

    def begin_round(self, deadline: float,
                    max_events: Optional[int]) -> None:
        self._send("run_round", (deadline, max_events))

    def finish_round(self) -> RoundResult:
        return RoundResult(**self._recv("run_round"))

    # -- lifecycle ------------------------------------------------------
    @property
    def alive(self) -> bool:
        if self._process is not None:
            return self._process.is_alive()
        if self._thread is not None:
            return self._thread.is_alive()
        return False  # pragma: no cover - constructor always sets one

    def close(self) -> None:
        """Shut the worker down; escalate if it does not cooperate."""
        if not self.dead:
            try:
                self._conn.send(("shutdown", ()))
            except (BrokenPipeError, ConnectionResetError, OSError,
                    pickle.PicklingError):
                pass
        if self._process is not None:
            self._process.join(timeout=SHUTDOWN_TIMEOUT)
            if self._process.is_alive():  # pragma: no cover - stuck worker
                self._process.terminate()
                self._process.join(timeout=SHUTDOWN_TIMEOUT)
                if self._process.is_alive():
                    self._process.kill()
                    self._process.join(timeout=SHUTDOWN_TIMEOUT)
        elif self._thread is not None:
            self._thread.join(timeout=SHUTDOWN_TIMEOUT)
        self.dead = True
        self._conn.close()


class ParallelFleet:
    """Every per-shard concern of a parallel ``ShardedEngine``.

    The coordinator keeps placement, routing and aggregation; this
    object owns the workers, the ledger service, the barrier loop and
    the per-round wall-clock accounting. One instance per parallel
    fleet, built eagerly so construction commands stream to workers as
    the caller issues them.
    """

    def __init__(self, *, config: EngineConfig, seed: int) -> None:
        n = config.shards
        self.config = config
        worker_config = replace(config, shards=1, parallel=False)
        self._device_counts = [0] * n
        self.ledger_service: Optional[LedgerService] = None
        channels: List[Optional[
            multiprocessing.connection.Connection]] = [None] * n
        if config.overload and n > 1:
            from repro.overload import CapacityLedger, OverloadPolicy
            policy = config.overload_policy or OverloadPolicy()
            ledger = CapacityLedger(
                policy, fleet_size=lambda: sum(self._device_counts))
            self.ledger_service = LedgerService(ledger)
            channels = [self.ledger_service.channel() for _ in range(n)]
            self.ledger_service.start()
        self.workers: List[ShardWorker] = []
        try:
            for index in range(n):
                self.workers.append(ShardWorker(
                    index, worker_config,
                    seed if n == 1 else derive_seed(seed, f"shard:{index}"),
                    config.parallel_backend, channels[index]))
        except BaseException:
            self.close()
            raise
        #: Coordinator-level round metrics (never merged into worker
        #: registries, so per-shard dumps stay backend-agnostic).
        self.round_registry = MetricsRegistry()
        self._rounds = 0
        self._round_wall = 0.0
        self._busy = [0.0] * n
        self._barrier_wait = [0.0] * n

    # -- fan-out helpers ------------------------------------------------
    def _call(self, index: int, op: str, *args: Any) -> Any:
        try:
            return self.workers[index].call(op, *args)
        except ShardingError:
            if self.workers[index].dead:
                # Worker death strands a partition: reap the rest so a
                # failed fleet never leaks processes.
                self.close()
            raise

    def _call_all(self, op: str, *args: Any) -> List[Any]:
        return [self._call(index, op, *args)
                for index in range(len(self.workers))]

    # -- construction and routing ---------------------------------------
    def add_device(self, index: int, device_id: str,
                   factory: Any) -> None:
        self._call(index, "add_device", device_id, factory)
        self._device_counts[index] += 1

    def inject(self, index: int, device_id: str, stimulus: Any) -> None:
        self._call(index, "inject", device_id, stimulus)

    def execute_one(self, index: int, sql: str) -> Optional[str]:
        return self._call(index, "execute", sql)

    def execute_all(self, sql: str) -> None:
        self._call_all("execute", sql)

    def create_aq(self, sql: str, *, priority: int,
                  deadline_seconds: Optional[float]) -> None:
        """All-or-nothing AQ fan-out, mirroring the serial rollback."""
        registered: List[Tuple[int, str]] = []
        try:
            for index in range(len(self.workers)):
                name = self._call(index, "create_aq", sql, priority,
                                  deadline_seconds)
                registered.append((index, name))
        except Exception:
            for index, name in registered:
                self._call(index, "drop_aq", name)
            raise

    def install_action_code(self, library_path: str,
                            implementation: Any) -> None:
        self._call_all("install_code", library_path, implementation)

    def install_action_profile(self, profile_path: str, profile: Any,
                               resolver: Any,
                               kwargs: Dict[str, Any]) -> None:
        self._call_all("install_profile", profile_path, profile,
                       resolver, kwargs)

    def submit(self, index: int, request: Any) -> None:
        self._call(index, "submit", request)

    def start_all(self) -> None:
        self._call_all("start")

    # -- running --------------------------------------------------------
    def run(self, until: float, max_events: Optional[int],
            *, quantum: float) -> float:
        self._call_all("run_begin")
        try:
            stopped = run_parallel_rounds(
                self.workers, until, quantum=quantum,
                max_events=max_events, on_round=self._record_round)
        except ShardingError:
            if any(worker.dead for worker in self.workers):
                self.close()
            raise
        finally:
            for worker in self.workers:
                if not worker.dead:
                    try:
                        worker.call("run_end")
                    except ShardingError:  # pragma: no cover - teardown
                        pass
        return stopped

    def _record_round(self, deadline: float, wall_seconds: float,
                      results: List[RoundResult]) -> None:
        self._rounds += 1
        self._round_wall += wall_seconds
        registry = self.round_registry
        registry.counter("shard.round.count").inc()
        registry.counter("shard.round.wallclock_seconds").inc(
            wall_seconds)
        registry.gauge("shard.round.last_wallclock_seconds").set(
            wall_seconds)
        for index, result in enumerate(results):
            wait = max(0.0, wall_seconds - result.busy_seconds)
            self._busy[index] += result.busy_seconds
            self._barrier_wait[index] += wait
            registry.counter("shard.round.busy_wallclock_seconds",
                             shard=index).inc(result.busy_seconds)
            registry.counter(
                "shard.round.barrier_wait_wallclock_seconds",
                shard=index).inc(wait)

    def round_breakdown(self) -> Dict[str, Any]:
        """Cumulative per-shard round accounting for the benchmark.

        ``barrier_wait_s`` — wall-clock a shard's worker sat idle at
        the barrier while slower shards finished their rounds — is the
        scaling diagnostic: a balanced fleet waits near zero, a skewed
        one serializes on its slowest shard.
        """
        return {
            "rounds": self._rounds,
            "wall_s": round(self._round_wall, 4),
            "per_shard": [
                {"shard": index,
                 "busy_s": round(self._busy[index], 4),
                 "barrier_wait_s": round(self._barrier_wait[index], 4)}
                for index in range(len(self.workers))
            ],
        }

    # -- aggregation feeds ----------------------------------------------
    def statistics_all(self) -> List[Dict[str, Any]]:
        return self._call_all("statistics")

    def device_reports(self) -> List[Dict[str, Dict[str, Any]]]:
        return self._call_all("device_report")

    def query_reports(self) -> List[List[Dict[str, Any]]]:
        return self._call_all("query_report")

    def completed_all(self) -> List[List[Any]]:
        return self._call_all("completed")

    def registries(self) -> List[MetricsRegistry]:
        return self._call_all("metrics")

    def dumps(self) -> List[Dict[str, Any]]:
        return self._call_all("dump")

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and the ledger service; idempotent."""
        for worker in getattr(self, "workers", []):
            worker.close()
        if self.ledger_service is not None:
            self.ledger_service.stop()
            self.ledger_service = None
