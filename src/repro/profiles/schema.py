"""Device catalog schema: the attributes of a virtual device table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ProfileError

#: Attribute value types supported by the declarative interface.
SUPPORTED_TYPES = ("float", "int", "str", "bool")


@dataclass(frozen=True)
class AttributeSpec:
    """One column of a virtual device table.

    ``sensory`` attributes (sensor readings, camera zoom level, battery
    voltage) are acquired live from the device by the scan operator;
    non-sensory attributes (locations, IP addresses, phone numbers) are
    served from static catalog data (paper Section 3.2).
    """

    name: str
    type_name: str
    sensory: bool
    unit: str = ""
    description: str = ""
    #: Name of the built-in acquisition method for sensory attributes.
    acquisition_method: str = ""

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ProfileError(f"attribute name {self.name!r} is not an identifier")
        if self.type_name not in SUPPORTED_TYPES:
            raise ProfileError(
                f"attribute {self.name!r} has unsupported type {self.type_name!r}; "
                f"expected one of {SUPPORTED_TYPES}"
            )
        if self.sensory and not self.acquisition_method:
            raise ProfileError(
                f"sensory attribute {self.name!r} needs an acquisition_method"
            )

    @property
    def python_type(self) -> type:
        """The Python type used for values of this attribute."""
        return {"float": float, "int": int, "str": str, "bool": bool}[self.type_name]


@dataclass
class DeviceCatalog:
    """The catalog profile of one device type (e.g. ``sensor``, ``camera``).

    The catalog doubles as the schema of the device type's virtual
    relational table: its attribute list is the table's column list.
    """

    device_type: str
    model: str = ""
    description: str = ""
    attributes: List[AttributeSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.device_type.isidentifier():
            raise ProfileError(
                f"device type {self.device_type!r} is not an identifier"
            )
        seen: set[str] = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise ProfileError(
                    f"duplicate attribute {attr.name!r} in catalog "
                    f"{self.device_type!r}"
                )
            seen.add(attr.name)

    def attribute(self, name: str) -> AttributeSpec:
        """Look up an attribute by name, raising on unknown names."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise ProfileError(
            f"device type {self.device_type!r} has no attribute {name!r}"
        )

    def has_attribute(self, name: str) -> bool:
        """Whether the catalog defines ``name``."""
        return any(attr.name == name for attr in self.attributes)

    @property
    def sensory_attributes(self) -> List[AttributeSpec]:
        """Attributes acquired live from the device."""
        return [attr for attr in self.attributes if attr.sensory]

    @property
    def non_sensory_attributes(self) -> List[AttributeSpec]:
        """Attributes served from static data."""
        return [attr for attr in self.attributes if not attr.sensory]

    def column_types(self) -> Dict[str, type]:
        """Mapping of column name to Python type, for tuple validation."""
        return {attr.name: attr.python_type for attr in self.attributes}
