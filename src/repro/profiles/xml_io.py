"""XML serialization for profiles.

The Aorta prototype stored device catalogs, atomic-operation cost tables
and action profiles as XML text files registered with the system. We
keep the same representation so profiles can be authored, versioned and
inspected outside the engine. All functions here round-trip:
``X_from_xml(X_to_xml(x)) == x``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import ProfileError
from repro.profiles.action_profile import (
    ActionProfile,
    CompositionNode,
    OperationRef,
    Parallel,
    Sequence,
)
from repro.profiles.cost_table import AtomicOperationCost, CostTable
from repro.profiles.schema import AttributeSpec, DeviceCatalog


def _parse_root(xml_text: str, expected_tag: str) -> ET.Element:
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise ProfileError(f"malformed profile XML: {exc}") from exc
    if root.tag != expected_tag:
        raise ProfileError(
            f"expected <{expected_tag}> document, found <{root.tag}>"
        )
    return root


def _require(element: ET.Element, attribute: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise ProfileError(
            f"<{element.tag}> element is missing required attribute "
            f"{attribute!r}"
        )
    return value


# ----------------------------------------------------------------------
# Device catalogs
# ----------------------------------------------------------------------

def catalog_to_xml(catalog: DeviceCatalog) -> str:
    """Serialize a device catalog to an XML string."""
    root = ET.Element("device_catalog", {
        "device_type": catalog.device_type,
        "model": catalog.model,
        "description": catalog.description,
    })
    for attr in catalog.attributes:
        ET.SubElement(root, "attribute", {
            "name": attr.name,
            "type": attr.type_name,
            "sensory": "true" if attr.sensory else "false",
            "unit": attr.unit,
            "description": attr.description,
            "acquisition_method": attr.acquisition_method,
        })
    return ET.tostring(root, encoding="unicode")


def catalog_from_xml(xml_text: str) -> DeviceCatalog:
    """Parse a device catalog from an XML string."""
    root = _parse_root(xml_text, "device_catalog")
    attributes = [
        AttributeSpec(
            name=_require(el, "name"),
            type_name=_require(el, "type"),
            sensory=_require(el, "sensory") == "true",
            unit=el.get("unit", ""),
            description=el.get("description", ""),
            acquisition_method=el.get("acquisition_method", ""),
        )
        for el in root.findall("attribute")
    ]
    return DeviceCatalog(
        device_type=_require(root, "device_type"),
        model=root.get("model", ""),
        description=root.get("description", ""),
        attributes=attributes,
    )


# ----------------------------------------------------------------------
# Atomic-operation cost tables
# ----------------------------------------------------------------------

def cost_table_to_xml(table: CostTable) -> str:
    """Serialize an ``atomic_operation_cost`` table to XML."""
    root = ET.Element("atomic_operation_cost", {"device_type": table.device_type})
    for op in table.operations.values():
        ET.SubElement(root, "operation", {
            "name": op.name,
            "fixed_seconds": repr(op.fixed_seconds),
            "per_unit_seconds": repr(op.per_unit_seconds),
            "unit": op.unit,
            "description": op.description,
        })
    return ET.tostring(root, encoding="unicode")


def cost_table_from_xml(xml_text: str) -> CostTable:
    """Parse an ``atomic_operation_cost`` table from XML."""
    root = _parse_root(xml_text, "atomic_operation_cost")
    table = CostTable(_require(root, "device_type"))
    for el in root.findall("operation"):
        try:
            fixed = float(_require(el, "fixed_seconds"))
            per_unit = float(el.get("per_unit_seconds", "0.0"))
        except ValueError as exc:
            raise ProfileError(f"non-numeric cost in operation element: {exc}") from exc
        table.add(AtomicOperationCost(
            name=_require(el, "name"),
            fixed_seconds=fixed,
            per_unit_seconds=per_unit,
            unit=el.get("unit", ""),
            description=el.get("description", ""),
        ))
    return table


# ----------------------------------------------------------------------
# Action profiles
# ----------------------------------------------------------------------

def _composition_to_element(node: CompositionNode) -> ET.Element:
    if isinstance(node, OperationRef):
        attrs = {"name": node.operation}
        if node.quantity:
            attrs["quantity"] = node.quantity
        return ET.Element("op", attrs)
    if isinstance(node, Sequence):
        element = ET.Element("seq")
    elif isinstance(node, Parallel):
        element = ET.Element("par")
    else:
        raise ProfileError(f"unknown composition node {type(node).__name__}")
    for child in node.children:
        element.append(_composition_to_element(child))
    return element


def _composition_from_element(element: ET.Element) -> CompositionNode:
    if element.tag == "op":
        return OperationRef(
            operation=_require(element, "name"),
            quantity=element.get("quantity", ""),
        )
    children = tuple(_composition_from_element(child) for child in element)
    if element.tag == "seq":
        return Sequence(children)
    if element.tag == "par":
        return Parallel(children)
    raise ProfileError(f"unknown composition element <{element.tag}>")


def action_profile_to_xml(profile: ActionProfile) -> str:
    """Serialize an action profile to XML."""
    root = ET.Element("action_profile", {
        "action": profile.action_name,
        "device_type": profile.device_type,
        "description": profile.description,
    })
    status = ET.SubElement(root, "status_fields")
    for name in profile.status_fields:
        ET.SubElement(status, "field", {"name": name})
    composition = ET.SubElement(root, "composition")
    composition.append(_composition_to_element(profile.composition))
    return ET.tostring(root, encoding="unicode")


def action_profile_from_xml(xml_text: str) -> ActionProfile:
    """Parse an action profile from XML."""
    root = _parse_root(xml_text, "action_profile")
    status = root.find("status_fields")
    status_fields = (
        [_require(el, "name") for el in status.findall("field")]
        if status is not None
        else []
    )
    composition_holder = root.find("composition")
    if composition_holder is None or len(composition_holder) != 1:
        raise ProfileError(
            "action profile needs exactly one <composition> child tree"
        )
    return ActionProfile(
        action_name=_require(root, "action"),
        device_type=_require(root, "device_type"),
        composition=_composition_from_element(composition_holder[0]),
        status_fields=status_fields,
        description=root.get("description", ""),
    )
