"""Atomic-operation cost tables (``atomic_operation_cost.xml``).

An *atomic operation* is the smallest unit of operation a device type
can perform (paper Section 3.1) — e.g. "take a medium photo" on a
camera, "receive an MMS" on a phone, "beep once" on a sensor. The cost
metric is the time in seconds to finish the operation; the paper found
it to be nearly constant across devices of one type, so costs live in a
per-type table rather than per device.

Some operations scale with a quantity (panning a camera head costs time
per degree), so each cost is ``fixed + per_unit * quantity``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.errors import ProfileError


@dataclass(frozen=True)
class AtomicOperationCost:
    """Estimated cost of one atomic operation on a device type."""

    name: str
    #: Constant component, in seconds.
    fixed_seconds: float
    #: Variable component, in seconds per unit of ``unit``.
    per_unit_seconds: float = 0.0
    #: What the variable component scales with (``degrees``, ``bytes`` ...).
    unit: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.fixed_seconds < 0 or self.per_unit_seconds < 0:
            raise ProfileError(f"operation {self.name!r} has a negative cost")
        if self.per_unit_seconds > 0 and not self.unit:
            raise ProfileError(
                f"operation {self.name!r} has a per-unit cost but no unit"
            )

    def estimate(self, quantity: float = 0.0) -> float:
        """Estimated seconds to perform the operation on ``quantity`` units."""
        if quantity < 0:
            raise ProfileError(
                f"operation {self.name!r} estimated with negative quantity"
            )
        return self.fixed_seconds + self.per_unit_seconds * quantity


@dataclass
class CostTable:
    """All atomic-operation costs for one device type."""

    device_type: str
    operations: Dict[str, AtomicOperationCost] = field(default_factory=dict)

    @classmethod
    def from_operations(
        cls, device_type: str, operations: Iterable[AtomicOperationCost]
    ) -> "CostTable":
        """Build a table from an iterable of operations, rejecting dupes."""
        table = cls(device_type)
        for op in operations:
            table.add(op)
        return table

    def add(self, operation: AtomicOperationCost) -> None:
        """Register an operation; duplicate names are an error."""
        if operation.name in self.operations:
            raise ProfileError(
                f"duplicate atomic operation {operation.name!r} for "
                f"{self.device_type!r}"
            )
        self.operations[operation.name] = operation

    def operation(self, name: str) -> AtomicOperationCost:
        """Look up an operation, raising on unknown names."""
        try:
            return self.operations[name]
        except KeyError:
            raise ProfileError(
                f"device type {self.device_type!r} has no atomic operation "
                f"{name!r}"
            ) from None

    def estimate(self, name: str, quantity: float = 0.0) -> float:
        """Estimated seconds for operation ``name`` on ``quantity`` units."""
        return self.operation(name).estimate(quantity)

    def __contains__(self, name: str) -> bool:
        return name in self.operations

    def __len__(self) -> int:
        return len(self.operations)
