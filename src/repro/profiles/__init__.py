"""Device and action profiles (paper Section 3.1).

Profiles are the declarative metadata of Aorta:

* :class:`DeviceCatalog` — the attributes a device type exposes, split
  into *sensory* (acquired live) and *non-sensory* (static) attributes.
* :class:`CostTable` — the ``atomic_operation_cost.xml`` contents: the
  estimated cost of every atomic operation on a device type.
* :class:`ActionProfile` — the composition of an action as sequential
  and/or parallel execution of atomic operations, plus which fields of
  the device's physical status the action depends on.

All three serialize to and from XML (:mod:`repro.profiles.xml_io`), as
in the prototype.
"""

from repro.profiles.action_profile import (
    ActionProfile,
    CompositionNode,
    OperationRef,
    Parallel,
    Sequence,
)
from repro.profiles.cost_table import AtomicOperationCost, CostTable
from repro.profiles.schema import AttributeSpec, DeviceCatalog
from repro.profiles.xml_io import (
    action_profile_from_xml,
    action_profile_to_xml,
    catalog_from_xml,
    catalog_to_xml,
    cost_table_from_xml,
    cost_table_to_xml,
)

__all__ = [
    "ActionProfile",
    "AtomicOperationCost",
    "AttributeSpec",
    "CompositionNode",
    "CostTable",
    "DeviceCatalog",
    "OperationRef",
    "Parallel",
    "Sequence",
    "action_profile_from_xml",
    "action_profile_to_xml",
    "catalog_from_xml",
    "catalog_to_xml",
    "cost_table_from_xml",
    "cost_table_to_xml",
]
