"""Action profiles: declarative composition of atomic operations.

The paper's cost model estimates an action's cost from its *action
profile*, "which specifies the composition of an action in terms of the
sequential and/or parallel execution of a number of atomic operations"
(Section 2.3). A profile is a tree:

* :class:`OperationRef` — leaf; one atomic operation, optionally scaled
  by a named quantity resolved from the device's physical status and the
  action arguments (e.g. ``pan_degrees`` for a camera head move);
* :class:`Sequence` — children run one after another (costs add);
* :class:`Parallel` — children run concurrently (cost is the max).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Set

from repro.errors import ProfileError
from repro.profiles.cost_table import CostTable


class CompositionNode:
    """Base class of action-composition tree nodes."""

    def estimate(self, costs: CostTable, quantities: Mapping[str, float]) -> float:
        """Estimated seconds given a cost table and resolved quantities."""
        raise NotImplementedError

    def operation_names(self) -> Set[str]:
        """All atomic operation names referenced in this subtree."""
        raise NotImplementedError

    def quantity_names(self) -> Set[str]:
        """All quantity names this subtree needs resolved."""
        raise NotImplementedError


@dataclass(frozen=True)
class OperationRef(CompositionNode):
    """Leaf node: one atomic operation, optionally quantity-scaled."""

    operation: str
    #: Name of the quantity (resolved at estimation time) the operation
    #: scales with; empty for fixed-cost operations.
    quantity: str = ""

    def estimate(self, costs: CostTable, quantities: Mapping[str, float]) -> float:
        if self.quantity:
            if self.quantity not in quantities:
                raise ProfileError(
                    f"quantity {self.quantity!r} for operation "
                    f"{self.operation!r} was not resolved"
                )
            return costs.estimate(self.operation, quantities[self.quantity])
        return costs.estimate(self.operation)

    def operation_names(self) -> Set[str]:
        return {self.operation}

    def quantity_names(self) -> Set[str]:
        return {self.quantity} if self.quantity else set()


@dataclass(frozen=True)
class Sequence(CompositionNode):
    """Children execute one after another; costs accumulate."""

    children: tuple[CompositionNode, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise ProfileError("Sequence node needs at least one child")

    def estimate(self, costs: CostTable, quantities: Mapping[str, float]) -> float:
        return sum(child.estimate(costs, quantities) for child in self.children)

    def operation_names(self) -> Set[str]:
        names: Set[str] = set()
        for child in self.children:
            names |= child.operation_names()
        return names

    def quantity_names(self) -> Set[str]:
        names: Set[str] = set()
        for child in self.children:
            names |= child.quantity_names()
        return names


@dataclass(frozen=True)
class Parallel(CompositionNode):
    """Children execute concurrently; cost is the slowest child."""

    children: tuple[CompositionNode, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise ProfileError("Parallel node needs at least one child")

    def estimate(self, costs: CostTable, quantities: Mapping[str, float]) -> float:
        return max(child.estimate(costs, quantities) for child in self.children)

    def operation_names(self) -> Set[str]:
        names: Set[str] = set()
        for child in self.children:
            names |= child.operation_names()
        return names

    def quantity_names(self) -> Set[str]:
        names: Set[str] = set()
        for child in self.children:
            names |= child.quantity_names()
        return names


def seq(*children: CompositionNode) -> Sequence:
    """Convenience constructor for a :class:`Sequence` node."""
    return Sequence(tuple(children))


def par(*children: CompositionNode) -> Parallel:
    """Convenience constructor for a :class:`Parallel` node."""
    return Parallel(tuple(children))


@dataclass
class ActionProfile:
    """The registered profile of one action on one device type."""

    action_name: str
    device_type: str
    composition: CompositionNode
    #: Fields of the device's physical status the action reads (for cost
    #: estimation) and may change (paper: "what kind of device physical
    #: status is concerned ... is specified in the action profile").
    status_fields: List[str] = field(default_factory=list)
    description: str = ""

    def validate_against(self, costs: CostTable) -> None:
        """Check that every referenced atomic operation exists."""
        if costs.device_type != self.device_type:
            raise ProfileError(
                f"profile {self.action_name!r} targets {self.device_type!r} "
                f"but cost table is for {costs.device_type!r}"
            )
        missing = self.composition.operation_names() - set(costs.operations)
        if missing:
            raise ProfileError(
                f"profile {self.action_name!r} references unknown atomic "
                f"operations: {sorted(missing)}"
            )

    def estimate(self, costs: CostTable, quantities: Mapping[str, float]) -> float:
        """Estimated cost in seconds for resolved ``quantities``."""
        return self.composition.estimate(costs, quantities)

    def required_quantities(self) -> Set[str]:
        """Quantity names a resolver must provide for estimation."""
        return self.composition.quantity_names()
