"""On-disk profile store: the prototype's registered XML files.

Aorta's device catalogs, cost tables and action profiles "are generated
and registered to the system" as XML text files (Section 3.1). The
store reads and writes that layout::

    <root>/
      catalogs/<device_type>.xml
      costs/<device_type>.xml
      actions/<action_name>.xml
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.errors import ProfileError
from repro.profiles.action_profile import ActionProfile
from repro.profiles.cost_table import CostTable
from repro.profiles.schema import DeviceCatalog
from repro.profiles.xml_io import (
    action_profile_from_xml,
    action_profile_to_xml,
    catalog_from_xml,
    catalog_to_xml,
    cost_table_from_xml,
    cost_table_to_xml,
)

_SUBDIRS = ("catalogs", "costs", "actions")


class ProfileStore:
    """Reads and writes the XML profile directory layout."""

    def __init__(self, root: str) -> None:
        self.root = root

    def _path(self, kind: str, name: str) -> str:
        if not name.isidentifier():
            raise ProfileError(f"unsafe profile name {name!r}")
        return os.path.join(self.root, kind, f"{name}.xml")

    def _write(self, kind: str, name: str, xml_text: str) -> str:
        path = self._path(kind, name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(xml_text)
        return path

    def _read(self, kind: str, name: str) -> str:
        path = self._path(kind, name)
        if not os.path.exists(path):
            raise ProfileError(f"no {kind[:-1]} profile at {path}")
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def save_catalog(self, catalog: DeviceCatalog) -> str:
        """Persist a device catalog; returns the file path."""
        return self._write("catalogs", catalog.device_type,
                           catalog_to_xml(catalog))

    def save_cost_table(self, table: CostTable) -> str:
        """Persist an atomic-operation cost table."""
        return self._write("costs", table.device_type,
                           cost_table_to_xml(table))

    def save_action_profile(self, profile: ActionProfile) -> str:
        """Persist an action profile."""
        return self._write("actions", profile.action_name,
                           action_profile_to_xml(profile))

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load_catalog(self, device_type: str) -> DeviceCatalog:
        """Load one device catalog by type name."""
        return catalog_from_xml(self._read("catalogs", device_type))

    def load_cost_table(self, device_type: str) -> CostTable:
        """Load one cost table by type name."""
        return cost_table_from_xml(self._read("costs", device_type))

    def load_action_profile(self, action_name: str) -> ActionProfile:
        """Load one action profile by action name."""
        return action_profile_from_xml(self._read("actions", action_name))

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def _names(self, kind: str) -> List[str]:
        directory = os.path.join(self.root, kind)
        if not os.path.isdir(directory):
            return []
        return sorted(
            os.path.splitext(entry)[0]
            for entry in os.listdir(directory)
            if entry.endswith(".xml")
        )

    def catalog_names(self) -> List[str]:
        return self._names("catalogs")

    def cost_table_names(self) -> List[str]:
        return self._names("costs")

    def action_profile_names(self) -> List[str]:
        return self._names("actions")

    def load_all_catalogs(self) -> Dict[str, DeviceCatalog]:
        """All stored catalogs, keyed by device type."""
        return {name: self.load_catalog(name)
                for name in self.catalog_names()}

    def save_builtin_profiles(self) -> List[str]:
        """Persist the shipped device-type and action profiles."""
        from repro.actions.builtins import (
            builtin_definitions,
            sendphoto_definition,
        )
        from repro.profiles.defaults import (
            camera_catalog, camera_cost_table,
            phone_catalog, phone_cost_table,
            sensor_catalog, sensor_cost_table,
        )
        paths = []
        for catalog in (camera_catalog(), sensor_catalog(), phone_catalog()):
            paths.append(self.save_catalog(catalog))
        for table in (camera_cost_table(), sensor_cost_table(),
                      phone_cost_table()):
            paths.append(self.save_cost_table(table))
        for definition in builtin_definitions() + [sendphoto_definition()]:
            paths.append(self.save_action_profile(definition.profile))
        return paths
