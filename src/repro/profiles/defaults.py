"""Built-in profiles for the three device types of the paper's testbed.

The atomic-operation costs here are the "estimated costs ... measured by
our homegrown programs" of Section 3.1 — in this reproduction they are
derived from the device simulators' calibration constants, so estimates
and simulated reality agree by construction (the paper validated its
cost model the same way, against measurements of the real devices).
"""

from __future__ import annotations

from repro.devices.camera import CameraCalibration
from repro.devices.phone import MMS_FIXED_SECONDS, MMS_PER_KB_SECONDS, SMS_SECONDS
from repro.profiles.cost_table import AtomicOperationCost, CostTable
from repro.profiles.schema import AttributeSpec, DeviceCatalog


def camera_catalog() -> DeviceCatalog:
    """The ``camera`` virtual table: identity plus live head pose."""
    return DeviceCatalog(
        device_type="camera",
        model="AXIS 2130 PTZ",
        description="pan/tilt/zoom network camera",
        attributes=[
            AttributeSpec("id", "str", sensory=False,
                          description="device identifier"),
            AttributeSpec("ip", "str", sensory=False,
                          description="management IP address"),
            AttributeSpec("loc_x", "float", sensory=False, unit="m"),
            AttributeSpec("loc_y", "float", sensory=False, unit="m"),
            AttributeSpec("pan", "float", sensory=True, unit="deg",
                          acquisition_method="read_pan"),
            AttributeSpec("tilt", "float", sensory=True, unit="deg",
                          acquisition_method="read_tilt"),
            AttributeSpec("zoom", "float", sensory=True, unit="x",
                          acquisition_method="read_zoom"),
        ],
    )


def camera_cost_table(
    calibration: CameraCalibration | None = None,
) -> CostTable:
    """Atomic-operation costs of the PTZ camera.

    Head-axis operations carry per-degree (per-zoom-unit) costs; the
    photo action profile composes them in parallel, which reproduces
    the slowest-axis-dominates movement time of the real camera.
    """
    cal = calibration or CameraCalibration()
    return CostTable.from_operations("camera", [
        AtomicOperationCost("connect", fixed_seconds=cal.connect_seconds,
                            description="open HTTP control channel"),
        AtomicOperationCost("pan", fixed_seconds=0.0,
                            per_unit_seconds=1.0 / cal.pan_speed,
                            unit="degrees", description="pan the head"),
        AtomicOperationCost("tilt", fixed_seconds=0.0,
                            per_unit_seconds=1.0 / cal.tilt_speed,
                            unit="degrees", description="tilt the head"),
        AtomicOperationCost("zoom", fixed_seconds=0.0,
                            per_unit_seconds=1.0 / cal.zoom_speed,
                            unit="factor", description="change zoom"),
        AtomicOperationCost("capture_small",
                            fixed_seconds=cal.capture_seconds["small"],
                            description="take a small photo"),
        AtomicOperationCost("capture_medium",
                            fixed_seconds=cal.capture_seconds["medium"],
                            description="take a medium photo"),
        AtomicOperationCost("capture_large",
                            fixed_seconds=cal.capture_seconds["large"],
                            description="take a large photo"),
        AtomicOperationCost("store", fixed_seconds=cal.store_seconds,
                            description="store the image file"),
    ])


def sensor_catalog() -> DeviceCatalog:
    """The ``sensor`` virtual table: identity, location, live readings."""
    return DeviceCatalog(
        device_type="sensor",
        model="MICA2 + MTS310CA",
        description="Berkeley mote with sensor board",
        attributes=[
            AttributeSpec("id", "str", sensory=False),
            AttributeSpec("loc_x", "float", sensory=False, unit="m"),
            AttributeSpec("loc_y", "float", sensory=False, unit="m"),
            AttributeSpec("accel_x", "float", sensory=True, unit="mg",
                          acquisition_method="read_accel_x"),
            AttributeSpec("accel_y", "float", sensory=True, unit="mg",
                          acquisition_method="read_accel_y"),
            AttributeSpec("temperature", "float", sensory=True, unit="C",
                          acquisition_method="read_temperature"),
            AttributeSpec("light", "float", sensory=True, unit="lux",
                          acquisition_method="read_light"),
            AttributeSpec("battery", "float", sensory=True, unit="V",
                          acquisition_method="read_battery"),
        ],
    )


def sensor_cost_table() -> CostTable:
    """Atomic-operation costs of a MICA2 mote.

    Connecting costs time per hop: "the depth of a sensor in a
    multi-hop network affects the cost of connecting the sensor"
    (Section 2.3).
    """
    return CostTable.from_operations("sensor", [
        AtomicOperationCost("connect", fixed_seconds=0.0,
                            per_unit_seconds=0.02, unit="hops",
                            description="establish multi-hop route"),
        AtomicOperationCost("read_sample", fixed_seconds=0.01,
                            description="sample all sensors once"),
        AtomicOperationCost("beep", fixed_seconds=0.5,
                            description="sound the buzzer once"),
        AtomicOperationCost("blink", fixed_seconds=0.25,
                            description="flash the LEDs once"),
    ])


def phone_catalog() -> DeviceCatalog:
    """The ``phone`` virtual table: number plus live reachability."""
    return DeviceCatalog(
        device_type="phone",
        model="MMS-capable handset",
        attributes=[
            AttributeSpec("id", "str", sensory=False),
            AttributeSpec("number", "str", sensory=False),
            AttributeSpec("mms_support", "bool", sensory=False),
            AttributeSpec("loc_x", "float", sensory=False, unit="m"),
            AttributeSpec("loc_y", "float", sensory=False, unit="m"),
            AttributeSpec("battery", "float", sensory=True, unit="%",
                          acquisition_method="read_battery"),
            AttributeSpec("in_coverage", "bool", sensory=True,
                          acquisition_method="read_coverage"),
        ],
    )


def phone_cost_table() -> CostTable:
    """Atomic-operation costs of a phone over the carrier network."""
    return CostTable.from_operations("phone", [
        AtomicOperationCost("connect", fixed_seconds=0.3,
                            description="page through the carrier"),
        AtomicOperationCost("receive_sms", fixed_seconds=SMS_SECONDS,
                            description="deliver a text message"),
        AtomicOperationCost("receive_mms", fixed_seconds=MMS_FIXED_SECONDS,
                            per_unit_seconds=MMS_PER_KB_SECONDS,
                            unit="kilobytes",
                            description="deliver a multimedia message"),
    ])


def register_builtin_types(layer) -> None:
    """Register all three built-in device types on a CommunicationLayer."""
    layer.register_device_type(camera_catalog(), camera_cost_table())
    layer.register_device_type(sensor_catalog(), sensor_cost_table())
    layer.register_device_type(phone_catalog(), phone_cost_table())
