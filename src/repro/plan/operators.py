"""Relational operators over virtual device tables.

Operators form trees whose ``rows()`` method is a simulation generator
producing *bindings*: maps from table alias to the
:class:`~repro.comm.tuples.DeviceTuple` bound to it. Scans consume
virtual time (live sensory reads over the network); the relational
operators above them are pure.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import PlanError, QueryError
from repro.comm.scan import ScanOperator
from repro.comm.tuples import DeviceTuple
from repro.query.ast import Expression, Star
from repro.query.expressions import EvaluationContext, evaluate
from repro.query.functions import FunctionRegistry

#: One intermediate row: alias -> device tuple.
Bindings = Dict[str, DeviceTuple]


class Operator:
    """Base class of plan operators."""

    def rows(self) -> Generator[Any, Any, List[Bindings]]:
        """Produce this operator's current output rows."""
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """A one-line-per-operator plan rendering."""
        raise NotImplementedError


class TableScanOp(Operator):
    """Leaf: scan one virtual device table under an alias."""

    def __init__(self, alias: str, scan: ScanOperator) -> None:
        self.alias = alias
        self.scan = scan

    def rows(self) -> Generator[Any, Any, List[Bindings]]:
        tuples = yield from self.scan.scan()
        return [{self.alias: row} for row in tuples]

    def explain(self, indent: int = 0) -> str:
        return " " * indent + (
            f"Scan({self.scan.device_type} AS {self.alias})")


class FilterOp(Operator):
    """Keep the child's rows satisfying a boolean predicate."""

    def __init__(self, child: Operator, predicate: Expression,
                 functions: Optional[FunctionRegistry] = None) -> None:
        self.child = child
        self.predicate = predicate
        self.functions = functions

    def rows(self) -> Generator[Any, Any, List[Bindings]]:
        input_rows = yield from self.child.rows()
        kept = []
        for bindings in input_rows:
            context = EvaluationContext(tuples=bindings,
                                        functions=self.functions)
            value = evaluate(self.predicate, context)
            if not isinstance(value, bool):
                raise QueryError(
                    f"filter predicate {self.predicate} returned "
                    f"{type(value).__name__}, expected bool"
                )
            if value:
                kept.append(bindings)
        return kept

    def explain(self, indent: int = 0) -> str:
        return (" " * indent + f"Filter({self.predicate})\n"
                + self.child.explain(indent + 2))


class JoinOp(Operator):
    """Nested-loop join of two children (cross product; filter above)."""

    def __init__(self, left: Operator, right: Operator) -> None:
        self.left = left
        self.right = right

    def rows(self) -> Generator[Any, Any, List[Bindings]]:
        left_rows = yield from self.left.rows()
        right_rows = yield from self.right.rows()
        joined: List[Bindings] = []
        for left_bindings in left_rows:
            for right_bindings in right_rows:
                overlap = set(left_bindings) & set(right_bindings)
                if overlap:
                    raise PlanError(
                        f"join children share aliases: {sorted(overlap)}"
                    )
                merged = dict(left_bindings)
                merged.update(right_bindings)
                joined.append(merged)
        return joined

    def explain(self, indent: int = 0) -> str:
        return (" " * indent + "Join\n"
                + self.left.explain(indent + 2) + "\n"
                + self.right.explain(indent + 2))


class ProjectOp(Operator):
    """Evaluate the SELECT list; ``*`` expands every bound column.

    Unlike the other operators this one produces value rows, exposed
    via :meth:`result_rows`; :meth:`rows` passes bindings through so it
    can still be composed.
    """

    def __init__(self, child: Operator, items: Tuple[Expression, ...],
                 functions: Optional[FunctionRegistry] = None) -> None:
        self.child = child
        self.items = items
        self.functions = functions

    def rows(self) -> Generator[Any, Any, List[Bindings]]:
        return (yield from self.child.rows())

    def result_rows(self) -> Generator[Any, Any, List[Tuple[Any, ...]]]:
        input_rows = yield from self.child.rows()
        results = []
        for bindings in input_rows:
            context = EvaluationContext(tuples=bindings,
                                        functions=self.functions)
            values: List[Any] = []
            for item in self.items:
                if isinstance(item, Star):
                    for alias in sorted(bindings):
                        values.extend(bindings[alias].values[name]
                                      for name in sorted(
                                          bindings[alias].values))
                else:
                    values.append(evaluate(item, context))
            results.append(tuple(values))
        return results

    def column_labels(self, sample: Optional[Bindings] = None) -> List[str]:
        """Human-readable column names for the projected rows."""
        labels: List[str] = []
        for item in self.items:
            if isinstance(item, Star):
                if sample is None:
                    labels.append("*")
                else:
                    for alias in sorted(sample):
                        labels.extend(f"{alias}.{name}" for name in
                                      sorted(sample[alias].values))
            else:
                labels.append(str(item))
        return labels

    def explain(self, indent: int = 0) -> str:
        items = ", ".join(str(i) for i in self.items)
        return (" " * indent + f"Project({items})\n"
                + self.child.explain(indent + 2))
