"""The shared action operator.

"We make concurrent queries that have the same embedded action ...
share a single action operator in their query plans. We add the query
ID to the input tuples of a query so that the operator knows which
tuples are for which query. Such action operator sharing saves system
resources and facilitates group optimization of actions." (Section 2.3)

Group optimization happens downstream: the dispatcher drains a shared
operator's pending requests as one batch and schedules them together —
this is precisely the "multiple action requests ... appear in the
optimizer at the same time or within a short time interval" scenario
the scheduling algorithms of Section 5 exist for.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.errors import RegistrationError, SchedulingError
from repro.actions.action import ActionDefinition
from repro.actions.request import ActionRequest


class SharedActionOperator:
    """One action operator shared by every query embedding the action."""

    def __init__(self, action: ActionDefinition) -> None:
        self.action = action
        self._attached_queries: Set[str] = set()
        self._pending: List[ActionRequest] = []
        #: Called on every submit, so the dispatcher can wake up.
        self.on_submit: Optional[Callable[[ActionRequest], None]] = None
        #: Lifetime counters for observability.
        self.total_submitted = 0
        self.total_drained = 0

    # ------------------------------------------------------------------
    # Query attachment
    # ------------------------------------------------------------------
    def attach(self, query_id: str) -> None:
        """A query embedding this action starts sharing the operator."""
        if query_id in self._attached_queries:
            raise RegistrationError(
                f"query {query_id!r} already attached to action "
                f"{self.action.name!r}"
            )
        self._attached_queries.add(query_id)

    def detach(self, query_id: str) -> None:
        """A dropped query stops sharing; its pending requests vanish."""
        self._attached_queries.discard(query_id)
        self._pending = [r for r in self._pending if r.query_id != query_id]

    @property
    def attached_queries(self) -> Set[str]:
        return set(self._attached_queries)

    @property
    def shared(self) -> bool:
        """Whether more than one query currently shares this operator."""
        return len(self._attached_queries) > 1

    # ------------------------------------------------------------------
    # Request flow
    # ------------------------------------------------------------------
    def submit(self, request: ActionRequest) -> None:
        """A query hands over one instantiated action request."""
        if request.action_name != self.action.name:
            raise SchedulingError(
                f"request for {request.action_name!r} submitted to the "
                f"{self.action.name!r} operator"
            )
        if request.query_id and request.query_id not in self._attached_queries:
            raise SchedulingError(
                f"query {request.query_id!r} is not attached to action "
                f"{self.action.name!r}"
            )
        self._pending.append(request)
        self.total_submitted += 1
        if self.on_submit is not None:
            self.on_submit(request)

    def drain(self) -> List[ActionRequest]:
        """Take all pending requests (the optimizer's batch)."""
        batch, self._pending = self._pending, []
        self.total_drained += len(batch)
        return batch

    @property
    def pending_count(self) -> int:
        return len(self._pending)
