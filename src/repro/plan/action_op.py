"""The shared action operator.

"We make concurrent queries that have the same embedded action ...
share a single action operator in their query plans. We add the query
ID to the input tuples of a query so that the operator knows which
tuples are for which query. Such action operator sharing saves system
resources and facilitates group optimization of actions." (Section 2.3)

Group optimization happens downstream: the dispatcher drains a shared
operator's pending requests as one batch and schedules them together —
this is precisely the "multiple action requests ... appear in the
optimizer at the same time or within a short time interval" scenario
the scheduling algorithms of Section 5 exist for.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

from repro.errors import QueueFullError, RegistrationError, SchedulingError
from repro.actions.action import ActionDefinition
from repro.actions.request import ActionRequest


def _eviction_key(request: ActionRequest,
                  index: int) -> Tuple[int, float, float, int]:
    """Sort key whose minimum is the least-worth-keeping pending entry.

    Deterministic eviction order for bounded queues: lowest priority
    tier first, then oldest (earliest) deadline — the entry closest to
    expiring, hence least likely to be serviceable — then oldest
    submission. Requests without a deadline sort after any dated one
    within their tier.
    """
    deadline = request.deadline if request.deadline is not None \
        else float("inf")
    return (request.priority, deadline, request.created_at, index)


class SharedActionOperator:
    """One action operator shared by every query embedding the action."""

    def __init__(self, action: ActionDefinition) -> None:
        self.action = action
        self._attached_queries: Set[str] = set()
        self._pending: List[ActionRequest] = []
        #: Called on every submit, so the dispatcher can wake up.
        self.on_submit: Optional[Callable[[ActionRequest], None]] = None
        #: Bounded-queue limit; ``None`` (the default) keeps the queue
        #: unbounded, the pre-overload behaviour. Set by the overload
        #: control plane (repro.overload) when it is configured.
        self.limit: Optional[int] = None
        #: Called with ``(victim, reason)`` when a full queue evicts a
        #: pending request to make room for a more valuable one.
        self.on_evict: Optional[Callable[[ActionRequest, str], None]] = None
        #: Lifetime counters for observability.
        self.total_submitted = 0
        self.total_drained = 0
        self.total_evicted = 0
        self.total_rejected = 0
        #: High-water mark of the pending queue, for overload metrics.
        self.peak_pending = 0

    # ------------------------------------------------------------------
    # Query attachment
    # ------------------------------------------------------------------
    def attach(self, query_id: str) -> None:
        """A query embedding this action starts sharing the operator."""
        if query_id in self._attached_queries:
            raise RegistrationError(
                f"query {query_id!r} already attached to action "
                f"{self.action.name!r}"
            )
        self._attached_queries.add(query_id)

    def detach(self, query_id: str) -> None:
        """A dropped query stops sharing; its pending requests vanish."""
        self._attached_queries.discard(query_id)
        self._pending = [r for r in self._pending if r.query_id != query_id]

    @property
    def attached_queries(self) -> Set[str]:
        return set(self._attached_queries)

    @property
    def shared(self) -> bool:
        """Whether more than one query currently shares this operator."""
        return len(self._attached_queries) > 1

    # ------------------------------------------------------------------
    # Request flow
    # ------------------------------------------------------------------
    def submit(self, request: ActionRequest) -> None:
        """A query hands over one instantiated action request.

        With a bounded queue (``limit`` set), submitting to a full
        operator picks the least-worth-keeping entry among the pending
        requests *and* the incoming one: if a pending entry loses, it
        is evicted (``on_evict`` fires) and the incoming request takes
        its place; if the incoming request itself is the least valuable,
        it is refused with :class:`QueueFullError` — explicit
        backpressure instead of silent unbounded growth.
        """
        if request.action_name != self.action.name:
            raise SchedulingError(
                f"request for {request.action_name!r} submitted to the "
                f"{self.action.name!r} operator"
            )
        if request.query_id and request.query_id not in self._attached_queries:
            raise SchedulingError(
                f"query {request.query_id!r} is not attached to action "
                f"{self.action.name!r}"
            )
        if self.limit is not None and len(self._pending) >= self.limit:
            victim_index = min(
                range(len(self._pending) + 1),
                key=lambda i: _eviction_key(
                    self._pending[i] if i < len(self._pending) else request,
                    i))
            if victim_index == len(self._pending):
                self.total_rejected += 1
                raise QueueFullError(
                    f"operator {self.action.name!r} queue is full "
                    f"({self.limit} pending) and request "
                    f"{request.request_id!r} (tier {request.priority}) "
                    f"is the least valuable; retry later"
                )
            victim = self._pending.pop(victim_index)
            self.total_evicted += 1
            if self.on_evict is not None:
                self.on_evict(victim, "queue-evicted")
        self._pending.append(request)
        self.total_submitted += 1
        self.peak_pending = max(self.peak_pending, len(self._pending))
        if self.on_submit is not None:
            self.on_submit(request)

    def drain(self) -> List[ActionRequest]:
        """Take all pending requests (the optimizer's batch)."""
        batch, self._pending = self._pending, []
        self.total_drained += len(batch)
        return batch

    def pending_snapshot(self) -> List[ActionRequest]:
        """A copy of the pending queue, in submission order."""
        return list(self._pending)

    def discard(self, request: ActionRequest) -> bool:
        """Remove one pending request (the load-shedder's primitive).

        Returns False when the request is no longer pending (drained or
        already removed), so shedding races resolve harmlessly.
        """
        try:
            self._pending.remove(request)
        except ValueError:
            return False
        return True

    @property
    def pending_count(self) -> int:
        return len(self._pending)
