"""The planner: parsed statements to executable plans."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PlanError
from repro.actions.action import ActionDefinition
from repro.actions.registry import ActionRegistry
from repro.comm.layer import CommunicationLayer
from repro.plan.operators import (
    FilterOp,
    JoinOp,
    Operator,
    ProjectOp,
    TableScanOp,
)
from repro.query.ast import (
    BooleanOp,
    ColumnRef,
    Expression,
    FunctionCall,
    SelectQuery,
)
from repro.query.catalog import SchemaCatalog
from repro.query.functions import FunctionRegistry


@dataclass
class ContinuousPlan:
    """The executable form of an action-embedded continuous query.

    Structure of the paper's Figure 1 pattern: one *event table* whose
    scan drives event detection, one *device table* naming the action's
    candidate devices, a partitioned WHERE clause, and the embedded
    action with per-parameter argument expressions.
    """

    query_name: str
    action: ActionDefinition
    #: Alias and device type of the event-producing table (``s``/sensor).
    event_alias: str
    event_table: str
    #: Alias and device type of the candidate-device table (``c``/camera).
    device_alias: str
    device_table: str
    #: Conjuncts referencing only the event alias (``s.accel_x > 500``).
    event_predicate: Optional[Expression]
    #: Conjuncts referencing the device alias (``coverage(c.id, s.loc)``).
    candidate_predicate: Optional[Expression]
    #: Parameter name -> argument expression (device parameters omitted;
    #: the scheduler's choice fills those at execution time).
    argument_expressions: Dict[str, Expression] = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable plan, in the spirit of EXPLAIN."""
        lines = [
            f"ContinuousQuery({self.query_name})",
            f"  EventScan({self.event_table} AS {self.event_alias})",
        ]
        if self.event_predicate is not None:
            lines.append(f"  EventFilter({self.event_predicate})")
        lines.append(
            f"  CandidateScan({self.device_table} AS {self.device_alias})")
        if self.candidate_predicate is not None:
            lines.append(f"  CandidateFilter({self.candidate_predicate})")
        lines.append(f"  SharedAction({self.action.name})")
        return "\n".join(lines)


@dataclass
class SnapshotPlan:
    """A one-shot SELECT over the virtual tables."""

    root: ProjectOp

    def execute(self):
        """Simulation generator yielding the projected result rows."""
        return self.root.result_rows()

    def describe(self) -> str:
        return self.root.explain()


def _conjuncts(expression: Optional[Expression]) -> List[Expression]:
    """Flatten top-level ANDs into a conjunct list."""
    if expression is None:
        return []
    if isinstance(expression, BooleanOp) and expression.op == "AND":
        flattened: List[Expression] = []
        for operand in expression.operands:
            flattened.extend(_conjuncts(operand))
        return flattened
    return [expression]


def _conjoin(conjuncts: List[Expression]) -> Optional[Expression]:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return BooleanOp(op="AND", operands=tuple(conjuncts))


class Planner:
    """Builds continuous and snapshot plans from validated ASTs."""

    def __init__(
        self,
        schema: SchemaCatalog,
        actions: ActionRegistry,
        functions: FunctionRegistry,
        comm: CommunicationLayer,
    ) -> None:
        self.schema = schema
        self.actions = actions
        self.functions = functions
        self.comm = comm

    # ------------------------------------------------------------------
    # Continuous (action-embedded) queries
    # ------------------------------------------------------------------
    def plan_continuous(self, query_name: str,
                        query: SelectQuery) -> ContinuousPlan:
        """Plan a CREATE AQ query of the paper's event->action pattern."""
        self.schema.validate_select(query)
        action_call = self._find_action_call(query)
        action = self.actions.get(action_call.name)

        if len(action_call.args) != len(action.parameters):
            raise PlanError(
                f"action {action.name!r} takes {len(action.parameters)} "
                f"argument(s), the query passes {len(action_call.args)}"
            )

        device_alias = self._resolve_device_alias(query, action, action_call)
        device_table = query.alias_of(device_alias).table

        event_tables = [t for t in query.tables if t.alias != device_alias]
        if len(event_tables) != 1:
            raise PlanError(
                f"an AQ needs exactly one event table besides the "
                f"{action.device_type!r} device table; FROM has "
                f"{[t.alias for t in query.tables]}"
            )
        event_alias = event_tables[0].alias
        event_table = event_tables[0].table

        event_conjuncts: List[Expression] = []
        candidate_conjuncts: List[Expression] = []
        for conjunct in _conjuncts(query.where):
            qualifiers = conjunct.qualifiers()
            if device_alias in qualifiers:
                candidate_conjuncts.append(conjunct)
            else:
                event_conjuncts.append(conjunct)

        argument_expressions: Dict[str, Expression] = {}
        for parameter, arg in zip(action.parameters, action_call.args):
            if parameter.device_attribute:
                continue  # bound from the chosen device at execution
            foreign = arg.qualifiers() - {event_alias}
            if foreign:
                raise PlanError(
                    f"argument {parameter.name!r} of {action.name!r} "
                    f"references non-event aliases {sorted(foreign)}; only "
                    f"the event table and literals may parameterize an "
                    f"action"
                )
            argument_expressions[parameter.name] = arg

        return ContinuousPlan(
            query_name=query_name,
            action=action,
            event_alias=event_alias,
            event_table=event_table,
            device_alias=device_alias,
            device_table=device_table,
            event_predicate=_conjoin(event_conjuncts),
            candidate_predicate=_conjoin(candidate_conjuncts),
            argument_expressions=argument_expressions,
        )

    def _find_action_call(self, query: SelectQuery) -> FunctionCall:
        action_calls = [
            item for item in query.select_items
            if isinstance(item, FunctionCall) and item.name in self.actions
        ]
        if len(action_calls) != 1:
            raise PlanError(
                f"an AQ must SELECT exactly one embedded action; found "
                f"{len(action_calls)}"
            )
        if len(query.select_items) != 1:
            raise PlanError(
                "an AQ's SELECT list holds only the embedded action call"
            )
        return action_calls[0]

    def _resolve_device_alias(
        self, query: SelectQuery, action: ActionDefinition,
        call: FunctionCall,
    ) -> str:
        """Find the FROM alias the action's device parameters bind to."""
        device_aliases = set()
        for parameter, arg in zip(action.parameters, call.args):
            if not parameter.device_attribute:
                continue
            if not isinstance(arg, ColumnRef) or not arg.qualifier:
                raise PlanError(
                    f"argument {parameter.name!r} of {action.name!r} must "
                    f"be a qualified column of the device table "
                    f"(e.g. c.{parameter.device_attribute})"
                )
            device_aliases.add(arg.qualifier)
        if not device_aliases:
            # No device parameter: fall back to the unique FROM table of
            # the action's device type.
            matching = [
                t.alias for t in query.tables
                if self.schema.resolve_alias_type(query, t.alias)
                == action.device_type
            ]
            if len(matching) != 1:
                raise PlanError(
                    f"cannot identify the {action.device_type!r} device "
                    f"table for action {action.name!r}"
                )
            return matching[0]
        if len(device_aliases) > 1:
            raise PlanError(
                f"device parameters of {action.name!r} reference multiple "
                f"aliases: {sorted(device_aliases)}"
            )
        alias = device_aliases.pop()
        alias_type = self.schema.resolve_alias_type(query, alias)
        if alias_type != action.device_type:
            raise PlanError(
                f"action {action.name!r} operates {action.device_type!r} "
                f"but its device argument references {alias!r} of type "
                f"{alias_type!r}"
            )
        return alias

    # ------------------------------------------------------------------
    # Snapshot SELECTs
    # ------------------------------------------------------------------
    def plan_snapshot(self, query: SelectQuery) -> SnapshotPlan:
        """Plan a one-shot SELECT as scans + joins + filter + project."""
        self.schema.validate_select(query)
        for item in query.select_items:
            if isinstance(item, FunctionCall) and item.name in self.actions:
                raise PlanError(
                    f"embedded action {item.name!r} requires CREATE AQ; "
                    f"plain SELECT is a snapshot query"
                )
        root: Operator | None = None
        for table_ref in query.tables:
            scan: Operator = TableScanOp(
                table_ref.alias, self.comm.scan_operator(table_ref.table))
            root = scan if root is None else JoinOp(root, scan)
        assert root is not None  # grammar guarantees >= 1 table
        if query.where is not None:
            root = FilterOp(root, query.where, self.functions)
        project = ProjectOp(root, query.select_items, self.functions)
        return SnapshotPlan(root=project)
