"""Query plans (paper Section 2.3).

Actions are "first-class citizens (query operators) inside query
execution plans". The planner turns a parsed AQ into a
:class:`ContinuousPlan` — event scan, event predicate, candidate
predicate and a shared action operator — and a plain SELECT into a
:class:`SnapshotPlan` of scan/join/filter/project operators over the
virtual device tables.
"""

from repro.plan.action_op import SharedActionOperator
from repro.plan.operators import (
    FilterOp,
    JoinOp,
    Operator,
    ProjectOp,
    TableScanOp,
)
from repro.plan.planner import ContinuousPlan, Planner, SnapshotPlan

__all__ = [
    "ContinuousPlan",
    "FilterOp",
    "JoinOp",
    "Operator",
    "Planner",
    "ProjectOp",
    "SharedActionOperator",
    "SnapshotPlan",
    "TableScanOp",
]
