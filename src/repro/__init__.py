"""Aorta: a pervasive query processing framework.

Reproduction of *Systems Support for Pervasive Query Processing*
(Wenwei Xue, Qiong Luo, Lionel M. Ni - ICDCS 2005). Applications issue
SQL-style action-embedded continuous queries over a network of
heterogeneous simulated devices; the engine provides uniform
communication, device synchronization and cost-based action workload
scheduling.

Quickstart::

    from repro import AortaEngine, Environment, PanTiltZoomCamera, \
        SensorMote, Point

    env = Environment()
    engine = AortaEngine(env)
    engine.add_device(PanTiltZoomCamera(env, "cam1", Point(0, 0)))
    engine.add_device(SensorMote(env, "mote1", Point(5, 5)))
    engine.execute('''CREATE AQ snapshot AS
        SELECT photo(c.ip, s.loc, "photos/admin")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)''')
    engine.start()
    engine.run(until=60.0)
"""

from repro.core.config import EngineConfig, RetryPolicy
from repro.core.engine import AortaEngine
from repro.devices import (
    DeviceHealthTracker,
    HealthPolicy,
    MobilePhone,
    PanTiltZoomCamera,
    SensorMote,
    SensorStimulus,
)
from repro.geometry import Point
from repro.overload import OverloadPolicy, TierRate
from repro.runtime import (
    RealtimeRuntime,
    Runtime,
    VirtualRuntime,
    create_runtime,
)
from repro.shard import (
    DeviceSpec,
    HashPlacement,
    RegionPlacement,
    ShardedEngine,
)
from repro.sim import Environment

__version__ = "1.0.0"

__all__ = [
    "AortaEngine",
    "DeviceHealthTracker",
    "DeviceSpec",
    "EngineConfig",
    "Environment",
    "HashPlacement",
    "HealthPolicy",
    "MobilePhone",
    "OverloadPolicy",
    "PanTiltZoomCamera",
    "Point",
    "RealtimeRuntime",
    "RegionPlacement",
    "RetryPolicy",
    "Runtime",
    "SensorMote",
    "ShardedEngine",
    "SensorStimulus",
    "TierRate",
    "VirtualRuntime",
    "create_runtime",
    "__version__",
]
