"""The uniform data communication layer (paper Section 3).

This layer "handles heterogeneous networking protocols and provides a
dynamic, logical view of networked devices for applications". Its three
components, per the paper:

1. device profiles — registered via
   :meth:`CommunicationLayer.register_device_type`;
2. scan operators over virtual device tables — :class:`ScanOperator`;
3. basic communication methods (``connect/close/send/receive``) —
   :class:`BaseCommunicator` and its per-type adapters.

The probing mechanism of Section 4 also lives here
(:class:`Prober`), since a probe is a communication-layer exchange.

The comm fast path adds two amortization layers on top (see DESIGN.md
decision 10): :class:`ConnectionPool` reuses keep-alive connections
across probes and executions, and :class:`DeviceStatusCache` lets the
dispatcher skip probe exchanges for recently-seen devices under a
per-type freshness TTL.
"""

from repro.comm.adapters import (
    BaseCommunicator,
    CameraCommunicator,
    PhoneCommunicator,
    SensorCommunicator,
)
from repro.comm.layer import CommunicationLayer, DeviceTypeRegistration
from repro.comm.pool import ConnectionPool
from repro.comm.probe import DEFAULT_TIMEOUTS, Prober, ProbeResult
from repro.comm.scan import ScanOperator
from repro.comm.status_cache import DEFAULT_STATUS_TTLS, DeviceStatusCache
from repro.comm.tuples import DeviceTuple

__all__ = [
    "BaseCommunicator",
    "CameraCommunicator",
    "CommunicationLayer",
    "ConnectionPool",
    "DEFAULT_STATUS_TTLS",
    "DEFAULT_TIMEOUTS",
    "DeviceStatusCache",
    "DeviceTuple",
    "DeviceTypeRegistration",
    "PhoneCommunicator",
    "Prober",
    "ProbeResult",
    "ScanOperator",
    "SensorCommunicator",
]
