"""Keep-alive connection pooling for the comm fast path.

The paper's cost tables price the connection handshake as a first-class
line item (Section 3), and every probe exchange of Section 4 pays it
again. Under many continuous queries sharing one device fleet, the
handshake dominates: each batch re-connects to each candidate it
probes, and each poll re-connects to each sensory device it scans.

:class:`ConnectionPool` amortizes that cost. A connection released back
to the pool stays open and is handed to the next caller that asks for
the same device, skipping the handshake entirely. The pool is bounded:

* **idle expiry** — a connection idle longer than ``idle_seconds`` is
  considered gone (NAT mappings and radio sessions do not live forever)
  and is closed on the next checkout attempt;
* **LRU capacity cap** — at most ``capacity`` idle connections are
  retained; inserting beyond that closes the least-recently-released
  one;
* **invalidation** — a communication failure mid-exchange or a health
  breaker opening discards the device's channel, so a dead device never
  serves a stale socket to the next probe.

The pool never owns checkout bookkeeping races: a connection is either
idle (inside the pool) or checked out (held by exactly one caller, who
must :meth:`release` or :meth:`discard` it). Concurrent checkouts for
the same device simply open extra connections; the surplus is closed on
release.

Everything is deterministic: checkout order, expiry and eviction depend
only on virtual time and call order, so pooled runs replay exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator

from repro.errors import CommunicationError
from repro.devices.base import Device
from repro.network.transport import Connection, Transport
from repro.obs.spans import NULL_OBS
from repro.runtime import Runtime

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.spans import Observability


@dataclass
class _IdleEntry:
    """One parked keep-alive connection."""

    connection: Connection
    idle_since: float


class ConnectionPool:
    """Bounded LRU pool of keep-alive device connections."""

    def __init__(
        self,
        env: Runtime,
        transport: Transport,
        *,
        capacity: int = 64,
        idle_seconds: float = 30.0,
        obs: "Observability" = NULL_OBS,
    ) -> None:
        if capacity < 1:
            raise CommunicationError(
                f"pool capacity must be >= 1, got {capacity}")
        if idle_seconds <= 0:
            raise CommunicationError(
                f"pool idle_seconds must be positive, got {idle_seconds}")
        self.env = env
        self.transport = transport
        self.capacity = capacity
        self.idle_seconds = idle_seconds
        self.obs = obs
        #: Idle connections, least-recently-released first.
        self._idle: "OrderedDict[str, _IdleEntry]" = OrderedDict()
        #: Lifetime counters (cheap, always on — statistics/benchmarks
        #: read them whether or not observability is enabled).
        self.hits = 0
        self.misses = 0
        self.expired = 0
        self.evictions = 0
        self.invalidations = 0
        self.discards = 0

    def __len__(self) -> int:
        """Idle connections currently parked."""
        return len(self._idle)

    # ------------------------------------------------------------------
    # Checkout / checkin
    # ------------------------------------------------------------------
    def acquire(
        self, device: Device, timeout: float
    ) -> Generator[Any, Any, Connection]:
        """Check out a channel to ``device``: pooled if warm, else fresh.

        A pool hit returns immediately (no handshake, no virtual-time
        cost). A miss — no idle channel, or an idle channel past its
        expiry — pays the full :meth:`Transport.connect` handshake.
        """
        entry = self._idle.pop(device.device_id, None)
        if entry is not None:
            stale = (entry.connection.closed
                     or self.env.now - entry.idle_since > self.idle_seconds)
            if stale:
                entry.connection.close()
                self.expired += 1
                self.obs.inc("comm.pool.expired",
                             device_type=device.device_type)
            else:
                self.hits += 1
                self.obs.inc("comm.pool.hits",
                             device_type=device.device_type)
                return entry.connection
        self.misses += 1
        self.obs.inc("comm.pool.misses", device_type=device.device_type)
        connection = yield from self.transport.connect(device, timeout)
        return connection

    def release(self, connection: Connection) -> None:
        """Return a healthy channel to the pool for reuse.

        Closed connections are dropped; a surplus channel (another
        holder already parked one for the same device) is closed rather
        than pooled — one keep-alive control channel per device.
        """
        if connection.closed:
            return
        device = connection.device
        if device.device_id in self._idle:
            connection.close()
            self.discards += 1
            self.obs.inc("comm.pool.discarded",
                         device_type=device.device_type)
            return
        self._idle[device.device_id] = _IdleEntry(connection, self.env.now)
        while len(self._idle) > self.capacity:
            _, evicted = self._idle.popitem(last=False)
            evicted.connection.close()
            self.evictions += 1
            self.obs.inc("comm.pool.evictions",
                         device_type=evicted.connection.device.device_type)
        self.obs.set_gauge("comm.pool.size", len(self._idle))

    def discard(self, connection: Connection) -> None:
        """Close a checked-out channel that failed mid-exchange."""
        connection.close()
        self.discards += 1
        self.obs.inc("comm.pool.discarded",
                     device_type=connection.device.device_type)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, device_id: str, reason: str = "") -> None:
        """Drop the device's idle channel (if any) and close it.

        Called on communication failure and when the device's health
        breaker opens: a quarantined device must not hand its stale
        socket to the probation probe that later readmits it.
        """
        entry = self._idle.pop(device_id, None)
        if entry is None:
            return
        entry.connection.close()
        self.invalidations += 1
        self.obs.inc("comm.pool.invalidations",
                     reason=reason if reason else "unspecified")
        self.obs.set_gauge("comm.pool.size", len(self._idle))

    def close_all(self) -> None:
        """Close and drop every idle connection."""
        for entry in self._idle.values():
            entry.connection.close()
        self._idle.clear()
        self.obs.set_gauge("comm.pool.size", 0)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of checkouts served without a handshake."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Lifetime counters, for engine statistics and benchmarks."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "expired": self.expired,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "discards": self.discards,
            "idle": len(self._idle),
        }
