"""The probing mechanism (paper Section 4).

"The probing mechanism is for the optimizer to examine each candidate
before deciding whether it should be included in the device selection
optimization. A probe on a candidate device includes the transmission
of several messages between the optimizer and the device." A
system-provided per-type TIMEOUT breaks probes on unresponsive devices,
which are then excluded from optimization; a successful probe also
returns the device's current physical status for cost estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from repro.errors import CommunicationError, ConnectionTimeoutError, DeviceError
from repro.devices.base import Device
from repro.network.message import Message
from repro.network.transport import Transport
from repro.obs.spans import NULL_OBS
from repro.runtime import Runtime

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.devices.health import DeviceHealthTracker
    from repro.obs.spans import Observability, SpanContext

#: System-provided probe TIMEOUT per device type, in seconds. Cameras
#: answer over the LAN quickly; motes may need radio retries; phones go
#: through the carrier network.
DEFAULT_TIMEOUTS: Dict[str, float] = {
    "camera": 1.0,
    "sensor": 0.5,
    "phone": 2.0,
}

#: Fallback timeout for device types without a registered value.
FALLBACK_TIMEOUT = 1.0


@dataclass
class ProbeResult:
    """Outcome of probing one candidate device."""

    device_id: str
    available: bool
    #: Physical-status snapshot when available, for the cost model.
    status: Dict[str, float] = field(default_factory=dict)
    round_trip_seconds: float = 0.0
    #: On failure: ``"<phase>: <detail>"`` where phase is the exchange
    #: step that broke — ``connect``, ``ping`` or ``status``.
    error: str = ""

    @property
    def failed_phase(self) -> str:
        """The exchange phase that failed (empty when available)."""
        phase, separator, _ = self.error.partition(":")
        return phase if separator else ""


class Prober:
    """Probes candidate devices before device-selection optimization."""

    def __init__(
        self,
        env: Runtime,
        transport: Transport,
        timeouts: Optional[Dict[str, float]] = None,
    ) -> None:
        self.env = env
        self.transport = transport
        self.timeouts = dict(DEFAULT_TIMEOUTS if timeouts is None else timeouts)
        #: Running counters for observability.
        self.probes_sent = 0
        self.probes_failed = 0
        #: Optional circuit-breaker sink: every probe outcome is
        #: reported here so repeated misses quarantine the device.
        self.health: Optional["DeviceHealthTracker"] = None
        #: Metrics + spans (the engine replaces this with its own).
        self.obs: "Observability" = NULL_OBS

    def timeout_for(self, device: Device) -> float:
        """The TIMEOUT that applies to this device's type."""
        return self.timeouts.get(device.device_type, FALLBACK_TIMEOUT)

    def reset_stats(self) -> None:
        """Zero the probe counters, for per-batch/per-run reporting."""
        self.probes_sent = 0
        self.probes_failed = 0

    def probe(
        self, device: Device,
        parent_span: Optional["SpanContext"] = None,
    ) -> Generator[Any, Any, ProbeResult]:
        """Check one candidate's availability and fetch its status.

        The probe is the paper's several-message exchange: a connection
        handshake, a ping, and a status request. Any timeout or
        communication failure marks the device unavailable — it never
        raises, because an unavailable candidate is an expected outcome
        that simply excludes the device from optimization.
        """
        timeout = self.timeout_for(device)
        started = self.env.now
        self.probes_sent += 1
        self.obs.inc("probe.sent", device_type=device.device_type)
        phase = "connect"
        with self.obs.span("probe", parent=parent_span, detached=True,
                           device=device.device_id):
            try:
                # Checkout via Transport.open: a keep-alive pool, when
                # installed, serves the channel without a handshake.
                connection = yield from self.transport.open(device,
                                                            timeout)
                try:
                    phase = "ping"
                    ping = yield from connection.request(Message(
                        kind="ping", device_id=device.device_id), timeout)
                    if not ping.ok:
                        raise CommunicationError(
                            f"ping failed: {ping.error}")
                    phase = "status"
                    status = yield from connection.request(Message(
                        kind="status", device_id=device.device_id),
                        timeout)
                    if not status.ok:
                        raise CommunicationError(
                            f"status failed: {status.error}")
                except BaseException:
                    # A failed exchange poisons the channel: never pool
                    # it (without a pool this is exactly close()).
                    self.transport.discard(connection)
                    raise
                else:
                    self.transport.release(connection)
            except (ConnectionTimeoutError, CommunicationError,
                    DeviceError) as exc:
                self.probes_failed += 1
                self.obs.inc("probe.failed",
                             device_type=device.device_type, phase=phase)
                self.obs.observe("probe.rtt_seconds",
                                 self.env.now - started,
                                 device_type=device.device_type)
                if self.health is not None:
                    self.health.record_failure(device.device_id,
                                               reason=f"probe {phase}")
                return ProbeResult(
                    device_id=device.device_id,
                    available=False,
                    round_trip_seconds=self.env.now - started,
                    error=f"{phase}: {exc}",
                )
            self.obs.observe("probe.rtt_seconds", self.env.now - started,
                             device_type=device.device_type)
            if self.health is not None:
                self.health.record_success(device.device_id)
            return ProbeResult(
                device_id=device.device_id,
                available=True,
                status=status.value,
                round_trip_seconds=self.env.now - started,
            )

    def probe_all(
        self, devices: List[Device],
        parent_span: Optional["SpanContext"] = None,
    ) -> Generator[Any, Any, List[ProbeResult]]:
        """Probe candidates concurrently; results in input order.

        Probing in parallel matters: a single dead mote would otherwise
        stall device selection for its whole TIMEOUT. An empty candidate
        list — routine once the status cache answers for every device in
        a batch — short-circuits without spawning any process.
        """
        if not devices:
            return []
        probes = [self.env.process(
                      self.probe(device, parent_span=parent_span)).defuse()
                  for device in devices]
        results = []
        for probe in probes:
            result = yield probe
            results.append(result)
        return results

    def available_devices(
        self, devices: List[Device]
    ) -> Generator[Any, Any, List[tuple[Device, ProbeResult]]]:
        """Probe all candidates, keeping only the responsive ones.

        "These malfunctioning devices will be automatically excluded in
        the device selection optimization." (Section 4)
        """
        results = yield from self.probe_all(devices)
        return [(device, result)
                for device, result in zip(devices, results)
                if result.available]
