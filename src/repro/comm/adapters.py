"""Basic communication methods and per-type protocol adapters.

"The communication layer implements a common interface that defines a
set of basic communication methods such as connect(), close(), send()
and receive(). ... Each type of devices inherits this interface in its
own communication module." (Section 3.3)

:class:`BaseCommunicator` provides the four basic methods on top of the
simulated transport; the camera/sensor/phone subclasses are the
type-specific communication modules, adding the conveniences their
protocols support.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, Optional

from repro.errors import CommunicationError, DeviceError
from repro.devices.base import Device, OperationOutcome
from repro.network.message import Message, Response
from repro.network.transport import Connection, Transport
from repro.runtime import Runtime
from repro.sim.process import Process


class BaseCommunicator:
    """The common communication interface of Section 3.3.

    One communicator manages one device's control channel. ``send()``
    launches the exchange in the background; ``receive()`` awaits the
    oldest in-flight response, so callers may pipeline requests. The
    composite ``request()`` is the common send-then-receive pattern.
    """

    def __init__(self, env: Runtime, transport: Transport,
                 device: Device, timeout: float) -> None:
        if timeout <= 0:
            raise CommunicationError(f"timeout must be positive, got {timeout}")
        self.env = env
        self.transport = transport
        self.device = device
        self.timeout = timeout
        self._connection: Optional[Connection] = None
        self._in_flight: Deque[Process] = deque()

    # ------------------------------------------------------------------
    # The four basic methods
    # ------------------------------------------------------------------
    def connect(self) -> Generator[Any, Any, None]:
        """Open the control channel (no-op when already open).

        Checkout goes through :meth:`Transport.open`, so when the comm
        fast path installs a keep-alive pool, reconnecting to a
        recently-used device skips the handshake.
        """
        if self._connection is not None and not self._connection.closed:
            return
        self._connection = yield from self.transport.open(
            self.device, self.timeout)

    def close(self) -> None:
        """Release the control channel and drop in-flight exchanges.

        With a pool installed the healthy channel is parked for reuse
        rather than torn down; without one this closes it, exactly as
        before. A channel abandoned with exchanges still in flight is
        never pooled — the next holder must not inherit them.
        """
        if self._connection is not None:
            if self._in_flight:
                self.transport.discard(self._connection)
            else:
                self.transport.release(self._connection)
            self._connection = None
        self._in_flight.clear()

    def send(self, message: Message) -> Generator[Any, Any, None]:
        """Dispatch a request without waiting for its response."""
        connection = self._require_connection()
        exchange = self.env.process(
            connection.request(message, self.timeout))
        exchange.defuse()
        self._in_flight.append(exchange)
        # Sending itself is instantaneous at this abstraction level; the
        # medium latency is accounted inside the exchange.
        return
        yield  # pragma: no cover - generator protocol

    def receive(self) -> Generator[Any, Any, Response]:
        """Await the response to the oldest outstanding send()."""
        if not self._in_flight:
            raise CommunicationError(
                f"receive() on {self.device.device_id!r} with no "
                f"outstanding request"
            )
        exchange = self._in_flight.popleft()
        try:
            response = yield exchange
        except CommunicationError:
            # The channel failed mid-exchange: it must never be pooled
            # for reuse. (Without a pool this just closes it early.)
            if self._connection is not None:
                self.transport.discard(self._connection)
                self._connection = None
            raise
        return response

    def request(self, message: Message) -> Generator[Any, Any, Response]:
        """Send one message and await its response."""
        yield from self.send(message)
        return (yield from self.receive())

    def _require_connection(self) -> Connection:
        if self._connection is None or self._connection.closed:
            raise CommunicationError(
                f"not connected to {self.device.device_id!r}; call connect()"
            )
        return self._connection

    @property
    def connected(self) -> bool:
        """Whether the control channel is currently open."""
        return self._connection is not None and not self._connection.closed

    # ------------------------------------------------------------------
    # Conveniences shared by every device type
    # ------------------------------------------------------------------
    def acquire(self, attribute: str) -> Generator[Any, Any, Any]:
        """Read one sensory attribute from the live device."""
        response = yield from self.request(Message(
            kind="read_attribute", device_id=self.device.device_id,
            payload={"name": attribute}))
        if not response.ok:
            raise DeviceError(
                f"reading {attribute!r} on {self.device.device_id!r} "
                f"failed: {response.error}"
            )
        return response.value

    def status(self) -> Generator[Any, Any, Dict[str, float]]:
        """Fetch the device's physical-status snapshot."""
        response = yield from self.request(Message(
            kind="status", device_id=self.device.device_id))
        if not response.ok:
            raise DeviceError(
                f"status of {self.device.device_id!r} failed: {response.error}"
            )
        return response.value

    def execute(self, operation: str,
                **params: Any) -> Generator[Any, Any, OperationOutcome]:
        """Run one atomic operation on the device, returning its outcome."""
        response = yield from self.request(Message(
            kind="execute", device_id=self.device.device_id,
            payload={"operation": operation, "params": params}))
        if not response.ok:
            raise DeviceError(
                f"operation {operation!r} on {self.device.device_id!r} "
                f"failed: {response.error}"
            )
        return response.value


class CameraCommunicator(BaseCommunicator):
    """HTTP-over-LAN protocol module for PTZ network cameras."""

    def move_head(self, target: Any) -> Generator[Any, Any, OperationOutcome]:
        """Slew the camera head to a :class:`HeadPosition`."""
        return (yield from self.execute("move_head", target=target))

    def capture(self, size: str = "medium") -> Generator[Any, Any, OperationOutcome]:
        """Expose one frame of the given size."""
        return (yield from self.execute(f"capture_{size}"))


class SensorCommunicator(BaseCommunicator):
    """Multi-hop radio protocol module for MICA2 motes."""

    def read_sample(self) -> Generator[Any, Any, OperationOutcome]:
        """Sample all sensory attributes in one radio exchange."""
        return (yield from self.execute("read_sample"))


class PhoneCommunicator(BaseCommunicator):
    """Carrier-network protocol module for phones."""

    def deliver_sms(self, sender: str, body: str
                    ) -> Generator[Any, Any, OperationOutcome]:
        """Deliver a text message to the phone."""
        return (yield from self.execute("receive_sms", sender=sender, body=body))

    def deliver_mms(self, sender: str, body: str, attachment: str,
                    size_kb: float = 100.0
                    ) -> Generator[Any, Any, OperationOutcome]:
        """Deliver a multimedia message to the phone."""
        return (yield from self.execute(
            "receive_mms", sender=sender, body=body,
            attachment=attachment, size_kb=size_kb))


#: Adapter class per built-in device type.
ADAPTER_CLASSES = {
    "camera": CameraCommunicator,
    "sensor": SensorCommunicator,
    "phone": PhoneCommunicator,
}
