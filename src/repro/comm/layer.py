"""The communication layer facade.

Ties together the registry of devices, the per-type profiles (catalog +
cost table + probe timeout), the transport, scan operators and the
prober. "This layer ensures that the Aorta system, not the individual
applications, is responsible for monitoring and tuning the current
network infrastructure and the physical status of the devices."
(Section 2.1)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.errors import ProfileError, RegistrationError
from repro.devices.base import Device, OperationOutcome
from repro.devices.registry import DeviceRegistry
from repro.comm.adapters import ADAPTER_CLASSES, BaseCommunicator
from repro.comm.probe import DEFAULT_TIMEOUTS, Prober, ProbeResult
from repro.comm.scan import ScanOperator
from repro.network.link import LinkModel
from repro.network.transport import Transport
from repro.profiles.cost_table import CostTable
from repro.profiles.schema import DeviceCatalog
from repro.runtime import Runtime


@dataclass
class DeviceTypeRegistration:
    """Everything the layer knows about one device type."""

    catalog: DeviceCatalog
    cost_table: CostTable
    probe_timeout: float

    def __post_init__(self) -> None:
        if self.catalog.device_type != self.cost_table.device_type:
            raise ProfileError(
                f"catalog is for {self.catalog.device_type!r} but cost "
                f"table is for {self.cost_table.device_type!r}"
            )
        if self.probe_timeout <= 0:
            raise ProfileError("probe timeout must be positive")

    @property
    def device_type(self) -> str:
        return self.catalog.device_type


class CommunicationLayer:
    """Uniform access to a network of heterogeneous devices."""

    def __init__(
        self,
        env: Runtime,
        *,
        registry: Optional[DeviceRegistry] = None,
        links: Optional[Dict[str, LinkModel]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.env = env
        self.registry = registry or DeviceRegistry()
        self.transport = Transport(env, links=links, rng=rng)
        self._types: Dict[str, DeviceTypeRegistration] = {}
        self.prober = Prober(env, self.transport, timeouts={})

    # ------------------------------------------------------------------
    # Device-type registration (profiles)
    # ------------------------------------------------------------------
    def register_device_type(
        self,
        catalog: DeviceCatalog,
        cost_table: CostTable,
        *,
        probe_timeout: Optional[float] = None,
    ) -> DeviceTypeRegistration:
        """Register a device type's profiles with the system."""
        device_type = catalog.device_type
        if device_type in self._types:
            raise RegistrationError(
                f"device type {device_type!r} is already registered"
            )
        timeout = probe_timeout if probe_timeout is not None else (
            DEFAULT_TIMEOUTS.get(device_type, 1.0))
        registration = DeviceTypeRegistration(
            catalog=catalog, cost_table=cost_table, probe_timeout=timeout)
        self._types[device_type] = registration
        self.prober.timeouts[device_type] = timeout
        return registration

    def registration(self, device_type: str) -> DeviceTypeRegistration:
        """Profiles of one device type, raising on unknown types."""
        try:
            return self._types[device_type]
        except KeyError:
            raise ProfileError(
                f"device type {device_type!r} is not registered"
            ) from None

    def catalog(self, device_type: str) -> DeviceCatalog:
        """The device catalog (= virtual-table schema) of a type."""
        return self.registration(device_type).catalog

    def cost_table(self, device_type: str) -> CostTable:
        """The atomic-operation cost table of a type."""
        return self.registration(device_type).cost_table

    def registered_types(self) -> List[str]:
        """Sorted names of all registered device types."""
        return sorted(self._types)

    # ------------------------------------------------------------------
    # Device membership
    # ------------------------------------------------------------------
    def add_device(self, device: Device) -> None:
        """Admit a device whose type has been registered."""
        if device.device_type not in self._types:
            raise RegistrationError(
                f"register device type {device.device_type!r} before "
                f"adding device {device.device_id!r}"
            )
        self.registry.add(device)

    def remove_device(self, device_id: str) -> Device:
        """Remove a device that left the network."""
        return self.registry.remove(device_id)

    def devices_of_type(self, device_type: str) -> List[Device]:
        """Online devices of a type (the current virtual-table extent)."""
        return self.registry.online_of_type(device_type)

    # ------------------------------------------------------------------
    # Scan operators
    # ------------------------------------------------------------------
    def scan_operator(self, device_type: str) -> ScanOperator:
        """A scan operator over the type's virtual table."""
        registration = self.registration(device_type)
        return ScanOperator(
            self.env, self.transport, self.registry, registration.catalog,
            timeout=registration.probe_timeout)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe(self, device: Device) -> Generator[Any, Any, ProbeResult]:
        """Probe one device (availability + physical status)."""
        return (yield from self.prober.probe(device))

    def probe_candidates(
        self, devices: List[Device]
    ) -> Generator[Any, Any, List[tuple[Device, ProbeResult]]]:
        """Probe candidates in parallel, returning the available ones."""
        return (yield from self.prober.available_devices(devices))

    # ------------------------------------------------------------------
    # Operation execution
    # ------------------------------------------------------------------
    def communicator(self, device: Device) -> BaseCommunicator:
        """The type-specific protocol adapter for one device."""
        if device.device_type not in self._types:
            raise ProfileError(
                f"device type {device.device_type!r} is not registered"
            )
        adapter_class = ADAPTER_CLASSES.get(device.device_type,
                                            BaseCommunicator)
        timeout = self._types[device.device_type].probe_timeout
        return adapter_class(self.env, self.transport, device, timeout)

    def execute(
        self, device: Device, operation: str, **params: Any
    ) -> Generator[Any, Any, OperationOutcome]:
        """Run one atomic operation over a fresh connection."""
        communicator = self.communicator(device)
        yield from communicator.connect()
        try:
            outcome = yield from communicator.execute(operation, **params)
        finally:
            communicator.close()
        return outcome
