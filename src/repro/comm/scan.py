"""Scan operators over virtual device tables (paper Section 3.2).

"The communication layer abstracts each type of devices into a virtual
relational table. It then provides special 'scan operators' as simple
interfaces for the query engine to acquire device data tuples from
these virtual tables." Sensory attributes are acquired live over the
network; non-sensory attributes come from static catalog data.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.errors import (
    CommunicationError,
    ConnectionTimeoutError,
    DeviceError,
)
from repro.devices.base import Device
from repro.devices.registry import DeviceRegistry
from repro.comm.adapters import ADAPTER_CLASSES, BaseCommunicator
from repro.comm.tuples import DeviceTuple
from repro.network.transport import Transport
from repro.profiles.schema import DeviceCatalog
from repro.runtime import Runtime


class ScanOperator:
    """Produces the current rows of one virtual device table.

    Each scan generates tuples on-the-fly: static columns from the
    device registry, sensory columns via live network reads. Devices
    that fail to answer contribute no row (they are unreachable, so the
    query engine must not see stale data for them) — the scan records
    them in :attr:`skipped` for observability.
    """

    def __init__(
        self,
        env: Runtime,
        transport: Transport,
        registry: DeviceRegistry,
        catalog: DeviceCatalog,
        *,
        timeout: float = 1.0,
    ) -> None:
        self.env = env
        self.transport = transport
        self.registry = registry
        self.catalog = catalog
        self.timeout = timeout
        #: Device IDs skipped in the most recent scan, with reasons.
        self.skipped: List[tuple[str, str]] = []
        #: Total tuples produced over this operator's lifetime.
        self.tuples_produced = 0

    @property
    def device_type(self) -> str:
        """The virtual table this operator scans."""
        return self.catalog.device_type

    def _communicator(self, device: Device) -> BaseCommunicator:
        adapter_class = ADAPTER_CLASSES.get(device.device_type, BaseCommunicator)
        return adapter_class(self.env, self.transport, device, self.timeout)

    def _acquire_row(
        self, device: Device
    ) -> Generator[Any, Any, DeviceTuple]:
        """Build one tuple: static columns free, sensory columns live."""
        values = {}
        static = device.static_attributes()
        for attr in self.catalog.non_sensory_attributes:
            if attr.name not in static:
                raise DeviceError(
                    f"device {device.device_id!r} provides no static "
                    f"attribute {attr.name!r}"
                )
            values[attr.name] = static[attr.name]
        sensory = self.catalog.sensory_attributes
        if sensory:
            communicator = self._communicator(device)
            yield from communicator.connect()
            try:
                for attr in sensory:
                    values[attr.name] = yield from communicator.acquire(attr.name)
            finally:
                communicator.close()
        return DeviceTuple(
            device_type=self.device_type,
            device_id=device.device_id,
            values=values,
            acquired_at=self.env.now,
        )

    def scan(self) -> Generator[Any, Any, List[DeviceTuple]]:
        """Acquire the table's current rows from all online devices."""
        self.skipped = []
        rows: List[DeviceTuple] = []
        acquisitions = [
            (device, self.env.process(self._acquire_row(device)).defuse())
            for device in self.registry.online_of_type(self.device_type)
        ]
        for device, acquisition in acquisitions:
            try:
                row = yield acquisition
            except (ConnectionTimeoutError, CommunicationError,
                    DeviceError):
                # One retry: radio links lose packets routinely and the
                # MAC layer retransmits; a device that fails twice in a
                # row is skipped as unreachable.
                try:
                    row = yield from self._acquire_row(device)
                except (ConnectionTimeoutError, CommunicationError,
                        DeviceError) as exc:
                    self.skipped.append((device.device_id, str(exc)))
                    continue
            rows.append(row)
            self.tuples_produced += 1
        return rows

    def scan_device(
        self, device_id: str
    ) -> Generator[Any, Any, Optional[DeviceTuple]]:
        """Acquire a single device's row, or None if it is unreachable."""
        device = self.registry.get(device_id)
        if not device.online:
            return None
        try:
            row = yield from self._acquire_row(device)
        except (ConnectionTimeoutError, CommunicationError, DeviceError):
            return None
        self.tuples_produced += 1
        return row
