"""TTL-bounded device-status cache for the comm fast path.

Section 4 makes every batch pay a full probe exchange (connect + ping +
status) per candidate before device-selection optimization. When many
continuous queries share one fleet, most candidates were probed moments
ago by the previous batch and their physical status has not changed —
re-probing them buys nothing but round trips.

:class:`DeviceStatusCache` keeps the last probed status per device with
a per-type freshness TTL, so the dispatcher can skip the probe exchange
for recently-seen devices and cost-estimate from the cached snapshot.
Correctness rests entirely on invalidation, because the paper's cost
model is sequence-dependent — "the execution of a photo() action moves
the head of the camera to a new position, which in turn affects the
cost of the subsequent photo() action" (Section 2.3). An entry is
dropped:

* after **any action execution** on the device (the status the cache
  holds is the pre-execution status — provably stale);
* on **probe failure** (the device is unreachable; nothing about it may
  be assumed);
* on **quarantine transitions** of the health breaker (an OPEN or
  probation device must be re-examined, never served from cache);
* on **TTL expiry**, bounding how long an untouched device's drift
  (battery, coverage, ambient readings) can skew cost estimation.

TTLs are per device type: a PTZ camera's head position only changes
when Aorta moves it, so its status stays valid long; a phone's carrier
coverage churns on its own, so its snapshot goes stale fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import CommunicationError
from repro.devices.base import Device
from repro.obs.spans import NULL_OBS
from repro.runtime import Runtime

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.spans import Observability

#: Default per-type freshness TTLs, in virtual seconds. Camera status
#: (head position) only changes under Aorta's own actions, so it keeps
#: long; sensor readings drift with the environment; phone coverage is
#: the most volatile of the three.
DEFAULT_STATUS_TTLS: Dict[str, float] = {
    "camera": 10.0,
    "sensor": 3.0,
    "phone": 5.0,
}


@dataclass
class _CacheEntry:
    """One cached status snapshot."""

    status: Dict[str, float]
    stored_at: float
    device_type: str


class DeviceStatusCache:
    """Last-probed physical status per device, with bounded freshness."""

    def __init__(
        self,
        env: Runtime,
        *,
        default_ttl: float = 5.0,
        ttls: Optional[Dict[str, float]] = None,
        obs: "Observability" = NULL_OBS,
    ) -> None:
        if default_ttl <= 0:
            raise CommunicationError(
                f"status-cache default_ttl must be positive, "
                f"got {default_ttl}")
        self.default_ttl = default_ttl
        self.ttls = dict(DEFAULT_STATUS_TTLS if ttls is None else ttls)
        for device_type, ttl in self.ttls.items():
            if ttl <= 0:
                raise CommunicationError(
                    f"status TTL for {device_type!r} must be positive, "
                    f"got {ttl}")
        self.env = env
        self.obs = obs
        self._entries: Dict[str, _CacheEntry] = {}
        #: Called on every explicit invalidation with (device_id,
        #: reason) — whether or not an entry was cached, because the
        #: *cause* (execution, probe failure, quarantine) says the
        #: device's state changed regardless of cache occupancy. The
        #: incremental dispatch path hooks this to seed its dirty set.
        self.invalidation_listeners: List[Callable[[str, str], None]] = []
        #: Lifetime counters (always on; statistics/benchmarks read
        #: them whether or not observability is enabled).
        self.hits = 0
        self.misses = 0
        self.expired = 0
        self.stores = 0
        self.invalidations = 0

    def __len__(self) -> int:
        """Entries currently cached (fresh or not yet swept)."""
        return len(self._entries)

    def ttl_for(self, device_type: str) -> float:
        """The freshness window that applies to this device type."""
        return self.ttls.get(device_type, self.default_ttl)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def lookup(self, device: Device) -> Optional[Dict[str, float]]:
        """The device's status if cached and fresh, else ``None``.

        Returns a copy: callers hand statuses into cost estimation and
        schedulers, which must never mutate the cached snapshot.
        """
        entry = self._entries.get(device.device_id)
        if entry is None:
            self.misses += 1
            self.obs.inc("probe.cache.misses",
                         device_type=device.device_type)
            return None
        if self.env.now - entry.stored_at > self.ttl_for(entry.device_type):
            del self._entries[device.device_id]
            self.expired += 1
            self.misses += 1
            self.obs.inc("probe.cache.expired",
                         device_type=device.device_type)
            self.obs.inc("probe.cache.misses",
                         device_type=device.device_type)
            return None
        self.hits += 1
        self.obs.inc("probe.cache.hits", device_type=device.device_type)
        return dict(entry.status)

    def store(self, device: Device, status: Dict[str, float]) -> None:
        """Record a freshly probed status snapshot."""
        self._entries[device.device_id] = _CacheEntry(
            status=dict(status),
            stored_at=self.env.now,
            device_type=device.device_type,
        )
        self.stores += 1
        self.obs.inc("probe.cache.stores", device_type=device.device_type)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, device_id: str, reason: str = "") -> None:
        """Drop the device's entry (listeners fire even when absent)."""
        for listener in self.invalidation_listeners:
            listener(device_id, reason)
        if self._entries.pop(device_id, None) is None:
            return
        self.invalidations += 1
        self.obs.inc("probe.cache.invalidations",
                     reason=reason if reason else "unspecified")

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Lifetime counters, for engine statistics and benchmarks."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "expired": self.expired,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "entries": len(self._entries),
        }
