"""Tuples of the virtual device tables.

"Each tuple of a virtual device table (e.g., the sensor table) is from
a specific device of the corresponding type; it is generated on-the-fly
when requested by the query engine." (Section 3.2)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.errors import ProfileError, QueryError
from repro.profiles.schema import DeviceCatalog


@dataclass
class DeviceTuple:
    """One row of a virtual device table."""

    device_type: str
    device_id: str
    values: Dict[str, Any] = field(default_factory=dict)
    #: Virtual time at which the sensory values were acquired.
    acquired_at: float = 0.0

    def __getitem__(self, name: str) -> Any:
        try:
            return self.values[name]
        except KeyError:
            raise QueryError(
                f"tuple of {self.device_type!r} has no attribute {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def get(self, name: str, default: Any = None) -> Any:
        """Attribute value or ``default`` when absent."""
        return self.values.get(name, default)

    def validate(self, catalog: DeviceCatalog) -> None:
        """Check this tuple against the catalog schema.

        Every catalog attribute must be present with a value of the
        declared type (ints are acceptable where floats are declared,
        mirroring SQL numeric coercion).
        """
        if catalog.device_type != self.device_type:
            raise ProfileError(
                f"tuple of {self.device_type!r} validated against catalog "
                f"of {catalog.device_type!r}"
            )
        for attr in catalog.attributes:
            if attr.name not in self.values:
                raise ProfileError(
                    f"tuple of {self.device_type!r} is missing attribute "
                    f"{attr.name!r}"
                )
            value = self.values[attr.name]
            expected = attr.python_type
            if expected is float and isinstance(value, int) \
                    and not isinstance(value, bool):
                continue
            if expected is bool:
                if not isinstance(value, bool):
                    raise ProfileError(
                        f"attribute {attr.name!r} expected bool, got "
                        f"{type(value).__name__}"
                    )
                continue
            if not isinstance(value, expected) or isinstance(value, bool) \
                    and expected is not bool:
                raise ProfileError(
                    f"attribute {attr.name!r} expected "
                    f"{expected.__name__}, got {type(value).__name__}"
                )
