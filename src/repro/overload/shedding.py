"""Priority load-shedding with deadlines and hysteresis.

A periodic shedder process sweeps the shared operators' pending
queues. Every pass first sheds requests whose service deadline has
already expired (a late answer has no value, whatever the tier), then
applies pressure shedding with hysteresis: when total pending work
rises above the high watermark, the worst requests — lowest tier
first, then earliest deadline, then oldest — are dropped until the
backlog falls to the low watermark. The two distinct watermarks make
the start and stop of shedding deterministic edges instead of
per-request flapping around a single threshold.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Sequence, Tuple

from repro.actions.request import ActionRequest
from repro.plan.action_op import SharedActionOperator
from repro.runtime import Runtime

#: Machine-readable shed reasons (also used as trace/metric tags).
REASON_DEADLINE = "deadline-expired"
REASON_PRESSURE = "load-shed"
REASON_EVICTED = "queue-evicted"


def _shed_key(
    entry: Tuple[int, int, ActionRequest],
) -> Tuple[int, float, float, int, int]:
    """Worst-first order over (operator index, queue index, request)."""
    op_index, queue_index, request = entry
    deadline = request.deadline if request.deadline is not None \
        else float("inf")
    return (request.priority, deadline, request.created_at,
            op_index, queue_index)


class LoadShedder:
    """The shedder process and its deterministic shedding passes."""

    def __init__(
        self,
        env: Runtime,
        policy: Any,
        operators: Callable[[], Sequence[SharedActionOperator]],
        shed: Callable[[ActionRequest, str], None],
        tracer: Any,
    ) -> None:
        self.env = env
        self.policy = policy
        self._operators = operators
        self._shed = shed
        self.tracer = tracer
        #: Hysteresis state: True between the start and stop edges.
        self.active = False
        self.shed_passes = 0
        self.deadline_shed_total = 0
        self.pressure_shed_total = 0
        self._started = False

    def start(self) -> None:
        """Launch the periodic shedder as a simulation process."""
        if self._started:
            return
        self._started = True
        self.env.process(self._run())

    def _run(self) -> Generator[Any, Any, None]:
        while True:
            yield self.env.timeout(self.policy.shed_interval)
            self.pass_once()

    # ------------------------------------------------------------------
    # One pass: deadline sweep, then hysteresis pressure shedding
    # ------------------------------------------------------------------
    def pass_once(self) -> int:
        """Run one shedding pass; returns the number of requests shed."""
        self.shed_passes += 1
        now = self.env.now
        shed = 0
        operators = list(self._operators())
        for operator in operators:
            for request in operator.pending_snapshot():
                if request.deadline_expired(now) and \
                        operator.discard(request):
                    self._shed(request, REASON_DEADLINE)
                    self.deadline_shed_total += 1
                    shed += 1

        pending = sum(op.pending_count for op in operators)
        if not self.active and pending > self.policy.shed_high_watermark:
            self.active = True
            self.tracer.record(now, "shedding_started", pending=pending,
                               watermark=self.policy.shed_high_watermark)
        if self.active:
            shed += self._shed_to_low_watermark(operators, pending)
            remaining = sum(op.pending_count for op in operators)
            if remaining <= self.policy.shed_low_watermark:
                self.active = False
                self.tracer.record(
                    self.env.now, "shedding_stopped", pending=remaining,
                    watermark=self.policy.shed_low_watermark)
        return shed

    def _shed_to_low_watermark(
        self, operators: List[SharedActionOperator], pending: int,
    ) -> int:
        """Drop worst-first until the backlog reaches the low watermark.

        Tiers at or above ``shed_protect_tier`` are exempt — pressure
        shedding may leave the backlog above the watermark when only
        protected work remains, in which case shedding stays active.
        """
        excess = pending - self.policy.shed_low_watermark
        if excess <= 0:
            return 0
        sheddable = [
            (op_index, queue_index, request)
            for op_index, operator in enumerate(operators)
            for queue_index, request in enumerate(
                operator.pending_snapshot())
            if request.priority < self.policy.shed_protect_tier]
        sheddable.sort(key=_shed_key)
        shed = 0
        for op_index, _, request in sheddable[:excess]:
            if operators[op_index].discard(request):
                self._shed(request, REASON_PRESSURE)
                self.pressure_shed_total += 1
                shed += 1
        return shed
