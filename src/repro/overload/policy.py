"""Overload-control policy knobs.

One frozen dataclass collects every tunable of the overload plane —
admission rate limits, the fleet-capacity window, bounded-queue limits
and the load-shedding hysteresis thresholds — so an engine run is fully
described by ``EngineConfig(overload=True, overload_policy=...)`` and
replays deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import AortaError


@dataclass(frozen=True)
class TierRate:
    """Token-bucket parameters for one priority tier.

    ``rate`` is sustained requests per virtual second; ``burst`` is the
    bucket depth (how far above the sustained rate a short spike may
    go). A tier without a :class:`TierRate` is not rate limited.
    """

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise AortaError("tier rate must be positive")
        if self.burst < 1:
            raise AortaError("tier burst must be >= 1")


@dataclass(frozen=True)
class OverloadPolicy:
    """Every tunable of the overload-control plane.

    The defaults are deliberately permissive: no per-tier rate limits,
    a generous queue bound, and shedding watermarks sized for hundreds
    of pending requests — an engine that is *not* overloaded behaves
    identically whether the plane is on or off (the invariant the
    hypothesis suite pins).
    """

    # ------------------------------------------------------------------
    # Admission: token buckets + fleet-capacity window
    # ------------------------------------------------------------------
    #: Per-priority-tier request rate limits. A tier absent from the
    #: mapping is unlimited; ``None`` disables rate limiting entirely.
    tier_rates: Optional[Dict[int, TierRate]] = None
    #: Rate limits applied at AQ *registration* (standing queries as
    #: first-class admission units). Same semantics as ``tier_rates``.
    registration_rates: Optional[Dict[int, TierRate]] = None
    #: Length of one capacity-accounting window, in virtual seconds.
    #: Admission commits each admitted request's estimated service
    #: seconds against ``fleet_size * horizon * utilization_cap``
    #: device-seconds per window.
    capacity_horizon: float = 10.0
    #: Fraction of fleet device-seconds admission may commit per
    #: window; the remainder absorbs estimate error and retries.
    utilization_cap: float = 0.9
    #: Tiers at or above this value bypass the capacity gate (rate
    #: limits, when configured, still apply).
    capacity_protect_tier: int = 3
    #: Service-seconds charged for a request whose cost cannot be
    #: estimated (unknown device, estimation failure).
    default_service_seconds: float = 1.0

    # ------------------------------------------------------------------
    # Bounded queues
    # ------------------------------------------------------------------
    #: Pending-queue bound installed on every shared action operator.
    #: ``None`` keeps queues unbounded (admission/shedding still run).
    queue_limit: Optional[int] = 256

    # ------------------------------------------------------------------
    # Load shedding
    # ------------------------------------------------------------------
    #: Seconds between shedder passes (deadline expiry + hysteresis).
    shed_interval: float = 0.5
    #: Total pending requests (across operators) above which shedding
    #: activates.
    shed_high_watermark: int = 192
    #: Once active, shedding drops worst-first until total pending
    #: falls to this level, then deactivates (hysteresis: strictly
    #: below the high watermark so shedding starts and stops
    #: deterministically instead of flapping).
    shed_low_watermark: int = 128
    #: Tiers at or above this value are never pressure-shed (deadline
    #: expiry still sheds them — a late answer has no value).
    shed_protect_tier: int = 3

    def __post_init__(self) -> None:
        if self.capacity_horizon <= 0:
            raise AortaError("capacity_horizon must be positive")
        if not 0.0 < self.utilization_cap <= 1.0:
            raise AortaError("utilization_cap must be in (0, 1]")
        if self.default_service_seconds <= 0:
            raise AortaError("default_service_seconds must be positive")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise AortaError("queue_limit must be >= 1")
        if self.shed_interval <= 0:
            raise AortaError("shed_interval must be positive")
        if self.shed_low_watermark < 0 or self.shed_high_watermark < 1:
            raise AortaError("shed watermarks must be non-negative")
        if self.shed_low_watermark >= self.shed_high_watermark:
            raise AortaError(
                "shed_low_watermark must be strictly below "
                "shed_high_watermark (hysteresis)")
