"""Admission control: token buckets and the fleet-capacity window.

Two independent gates, both deterministic on the virtual clock:

* **Rate limits** — one lazily refilled token bucket per priority tier
  (and a separate set for AQ registrations, so standing queries are
  first-class admission units, not just the requests they emit).
* **Capacity** — each admitted request commits its cost-oracle service
  estimate against the fleet's available device-seconds for the
  current accounting window (``fleet_size * horizon * utilization_cap``);
  once the window is fully committed, further requests are refused
  until the next window opens.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.overload.policy import OverloadPolicy, TierRate

#: Machine-readable rejection reasons (also used as trace/metric tags).
REASON_RATE = "admission-rate"
REASON_CAPACITY = "admission-capacity"


class TokenBucket:
    """A virtual-time token bucket, refilled lazily on each take.

    No background process: the refill is computed from the elapsed
    virtual time at the moment of the take, so behaviour is a pure
    function of the (now, take) call sequence — identical on the
    virtual and realtime backends.
    """

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._updated = 0.0
        self.granted = 0
        self.refused = 0

    def try_take(self, now: float) -> bool:
        """Take one token if available; refill for elapsed time first."""
        if now > self._updated:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._updated)
                               * self.rate)
            self._updated = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.granted += 1
            return True
        self.refused += 1
        return False


class CapacityLedger:
    """Windowed fleet-capacity accounting, shareable across shards.

    Commitments are keyed by window index (``now // horizon``) instead
    of a single "current window" cursor, so the ledger tolerates reads
    at non-monotonic times: shards of a fleet advance their clocks
    independently (a lockstep round steps them one after another), and
    a shard sampling window *k* must not wipe the commitments another
    shard just charged to window *k+1*. For a single engine on one
    monotonic clock the arithmetic is identical to the pre-ledger
    cursor implementation.
    """

    def __init__(self, policy: OverloadPolicy,
                 fleet_size: Callable[[], int]) -> None:
        self.policy = policy
        self._fleet_size = fleet_size
        #: Service-seconds committed, keyed by capacity-window index.
        self._committed: Dict[int, float] = {}

    def _window(self, now: float) -> int:
        return int(now // self.policy.capacity_horizon)

    def available(self, now: float) -> float:
        """Uncommitted device-seconds in ``now``'s capacity window."""
        budget = (self._fleet_size() * self.policy.capacity_horizon
                  * self.policy.utilization_cap)
        return budget - self._committed.get(self._window(now), 0.0)

    def commit(self, now: float, seconds: float) -> None:
        """Charge ``seconds`` of admitted work to ``now``'s window."""
        window = self._window(now)
        self._committed[window] = self._committed.get(window, 0.0) + seconds


class AdmissionController:
    """The two admission gates, shared by registration and ingestion."""

    def __init__(self, policy: OverloadPolicy,
                 fleet_size: Callable[[], int],
                 capacity: Optional[CapacityLedger] = None) -> None:
        self.policy = policy
        #: The capacity ledger this controller charges. Per-controller
        #: by default; a sharded fleet replaces it with one shared
        #: ledger so every shard's admissions draw from the same
        #: fleet-wide budget.
        self.capacity = capacity if capacity is not None \
            else CapacityLedger(policy, fleet_size)
        self._request_buckets = self._build_buckets(policy.tier_rates)
        self._registration_buckets = self._build_buckets(
            policy.registration_rates)
        self.admitted_queries = 0
        self.rejected_queries = 0
        self.admitted_requests = 0
        self.rejected_requests = 0

    @staticmethod
    def _build_buckets(
        rates: Optional[Dict[int, TierRate]],
    ) -> Dict[int, TokenBucket]:
        if not rates:
            return {}
        return {tier: TokenBucket(spec.rate, spec.burst)
                for tier, spec in sorted(rates.items())}

    # ------------------------------------------------------------------
    # The gates
    # ------------------------------------------------------------------
    def admit_query(self, priority: int, now: float) -> Optional[str]:
        """Gate one AQ registration; ``None`` = admitted, else reason."""
        bucket = self._registration_buckets.get(priority)
        if bucket is not None and not bucket.try_take(now):
            self.rejected_queries += 1
            return REASON_RATE
        self.admitted_queries += 1
        return None

    def admit_request(self, priority: int, estimated_seconds: float,
                      now: float) -> Optional[str]:
        """Gate one action request; ``None`` = admitted, else reason.

        Admitting commits ``estimated_seconds`` against the current
        capacity window. Tiers at or above ``capacity_protect_tier``
        bypass the capacity gate (their load is still accounted, so
        lower tiers see it).
        """
        bucket = self._request_buckets.get(priority)
        if bucket is not None and not bucket.try_take(now):
            self.rejected_requests += 1
            return REASON_RATE
        available = self.capacity.available(now)
        if (priority < self.policy.capacity_protect_tier
                and estimated_seconds > available):
            self.rejected_requests += 1
            return REASON_CAPACITY
        self.capacity.commit(now, estimated_seconds)
        self.admitted_requests += 1
        return None
