"""Admission control: token buckets and the fleet-capacity window.

Two independent gates, both deterministic on the virtual clock:

* **Rate limits** — one lazily refilled token bucket per priority tier
  (and a separate set for AQ registrations, so standing queries are
  first-class admission units, not just the requests they emit).
* **Capacity** — each admitted request commits its cost-oracle service
  estimate against the fleet's available device-seconds for the
  current accounting window (``fleet_size * horizon * utilization_cap``);
  once the window is fully committed, further requests are refused
  until the next window opens.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.overload.policy import OverloadPolicy, TierRate

#: Machine-readable rejection reasons (also used as trace/metric tags).
REASON_RATE = "admission-rate"
REASON_CAPACITY = "admission-capacity"


class TokenBucket:
    """A virtual-time token bucket, refilled lazily on each take.

    No background process: the refill is computed from the elapsed
    virtual time at the moment of the take, so behaviour is a pure
    function of the (now, take) call sequence — identical on the
    virtual and realtime backends.
    """

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._updated = 0.0
        self.granted = 0
        self.refused = 0

    def try_take(self, now: float) -> bool:
        """Take one token if available; refill for elapsed time first."""
        if now > self._updated:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._updated)
                               * self.rate)
            self._updated = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.granted += 1
            return True
        self.refused += 1
        return False


class AdmissionController:
    """The two admission gates, shared by registration and ingestion."""

    def __init__(self, policy: OverloadPolicy,
                 fleet_size: Callable[[], int]) -> None:
        self.policy = policy
        self._fleet_size = fleet_size
        self._request_buckets = self._build_buckets(policy.tier_rates)
        self._registration_buckets = self._build_buckets(
            policy.registration_rates)
        #: Capacity window accounting: index of the window last charged
        #: and service-seconds committed within it.
        self._window_index = -1
        self._committed_seconds = 0.0
        self.admitted_queries = 0
        self.rejected_queries = 0
        self.admitted_requests = 0
        self.rejected_requests = 0

    @staticmethod
    def _build_buckets(
        rates: Optional[Dict[int, TierRate]],
    ) -> Dict[int, TokenBucket]:
        if not rates:
            return {}
        return {tier: TokenBucket(spec.rate, spec.burst)
                for tier, spec in sorted(rates.items())}

    # ------------------------------------------------------------------
    # Capacity window
    # ------------------------------------------------------------------
    def _window_available(self, now: float) -> float:
        """Uncommitted device-seconds in the current window."""
        horizon = self.policy.capacity_horizon
        index = int(now // horizon)
        if index != self._window_index:
            self._window_index = index
            self._committed_seconds = 0.0
        budget = (self._fleet_size() * horizon
                  * self.policy.utilization_cap)
        return budget - self._committed_seconds

    # ------------------------------------------------------------------
    # The gates
    # ------------------------------------------------------------------
    def admit_query(self, priority: int, now: float) -> Optional[str]:
        """Gate one AQ registration; ``None`` = admitted, else reason."""
        bucket = self._registration_buckets.get(priority)
        if bucket is not None and not bucket.try_take(now):
            self.rejected_queries += 1
            return REASON_RATE
        self.admitted_queries += 1
        return None

    def admit_request(self, priority: int, estimated_seconds: float,
                      now: float) -> Optional[str]:
        """Gate one action request; ``None`` = admitted, else reason.

        Admitting commits ``estimated_seconds`` against the current
        capacity window. Tiers at or above ``capacity_protect_tier``
        bypass the capacity gate (their load is still accounted, so
        lower tiers see it).
        """
        bucket = self._request_buckets.get(priority)
        if bucket is not None and not bucket.try_take(now):
            self.rejected_requests += 1
            return REASON_RATE
        available = self._window_available(now)
        if (priority < self.policy.capacity_protect_tier
                and estimated_seconds > available):
            self.rejected_requests += 1
            return REASON_CAPACITY
        self._committed_seconds += estimated_seconds
        self.admitted_requests += 1
        return None
