"""Overload control: admission, bounded queues, priority shedding.

Opt-in via ``EngineConfig(overload=True)``; the default-off engine is
byte-identical to one built before this subsystem existed (the golden
traces pin it). See DESIGN.md decision 12 for the policy rationale.
"""

from repro.overload.admission import (
    AdmissionController,
    CapacityLedger,
    TokenBucket,
)
from repro.overload.plane import OverloadControlPlane
from repro.overload.policy import OverloadPolicy, TierRate
from repro.overload.shedding import LoadShedder

__all__ = [
    "AdmissionController",
    "CapacityLedger",
    "LoadShedder",
    "OverloadControlPlane",
    "OverloadPolicy",
    "TierRate",
    "TokenBucket",
]
