"""The overload-control plane facade.

One object ties the three mechanisms together for the engine:

* admission control (:mod:`repro.overload.admission`) gates AQ
  registration and every request offered to a shared operator, with
  service-second estimates drawn from the engine cost oracle;
* bounded queues (``SharedActionOperator.limit``) are configured on
  every operator the dispatcher creates, with evictions routed back
  through the uniform shed-accounting path;
* the load shedder (:mod:`repro.overload.shedding`) runs as a periodic
  process over the dispatcher's operators.

The plane also owns the overload accounting surfaced by
``engine.statistics()`` and ``python -m repro metrics --overload``:
admitted/rejected/shed per priority tier, per-query shed counts and
the peak pending depth per operator.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from repro.errors import AortaError, QueueFullError
from repro.actions.request import ActionRequest
from repro.cost.model import CostModel
from repro.devices.base import Device
from repro.obs.spans import NULL_OBS, Observability
from repro.overload.admission import AdmissionController
from repro.overload.policy import OverloadPolicy
from repro.overload.shedding import LoadShedder
from repro.plan.action_op import SharedActionOperator
from repro.runtime import Runtime

#: Backpressure rejection reason (queue full, incoming request worst).
REASON_QUEUE_FULL = "queue-full"


class OverloadControlPlane:
    """Admission + bounded queues + shedding behind one interface."""

    def __init__(
        self,
        env: Runtime,
        policy: OverloadPolicy,
        cost_model: CostModel,
        device_lookup: Callable[[str], Device],
        fleet_size: Callable[[], int],
        *,
        tracer: Any,
        obs: Optional[Observability] = None,
    ) -> None:
        self.env = env
        self.policy = policy
        self.cost_model = cost_model
        self._device_lookup = device_lookup
        self.tracer = tracer
        self.obs = obs if obs is not None else NULL_OBS
        self.admission = AdmissionController(policy, fleet_size)
        self._shedder: Optional[LoadShedder] = None
        #: Accounting, keyed by priority tier / reason / query id.
        self.admitted_by_tier: Dict[int, int] = {}
        self.rejected_by_tier: Dict[int, int] = {}
        self.shed_by_tier: Dict[int, int] = {}
        self.rejected_by_reason: Dict[str, int] = {}
        self.shed_by_reason: Dict[str, int] = {}
        self.shed_by_query: Dict[str, int] = {}
        self.admitted_total = 0
        self.rejected_total = 0
        self.shed_total = 0

    # ------------------------------------------------------------------
    # Wiring (called by the dispatcher/engine during construction)
    # ------------------------------------------------------------------
    def bind(
        self,
        operators: Callable[[], Sequence[SharedActionOperator]],
        shed: Callable[[ActionRequest, str], None],
    ) -> None:
        """Attach the dispatcher's operator table and shed callback."""
        self._shedder = LoadShedder(self.env, self.policy, operators,
                                    shed, self.tracer)

    def configure_operator(
        self, operator: SharedActionOperator,
        on_evict: Callable[[ActionRequest, str], None],
    ) -> None:
        """Install the bounded-queue limit on a new shared operator."""
        operator.limit = self.policy.queue_limit
        operator.on_evict = on_evict

    def start(self) -> None:
        """Launch the periodic shedder process."""
        if self._shedder is None:
            raise AortaError("overload plane started before bind()")
        self._shedder.start()

    # ------------------------------------------------------------------
    # The ingestion gate
    # ------------------------------------------------------------------
    def estimate_service_seconds(self, request: ActionRequest) -> float:
        """Cost-oracle service estimate for the capacity gate.

        Uses the first candidate's live status as the representative
        cost; estimation failures (unknown device, unprofiled action)
        fall back to the policy's default charge rather than letting
        unestimable work bypass capacity accounting.
        """
        if not request.candidates:
            return self.policy.default_service_seconds
        try:
            device = self._device_lookup(request.candidates[0])
            estimate = self.cost_model.estimate(
                request.action_name, device, request.arguments)
        except AortaError:
            return self.policy.default_service_seconds
        return estimate.seconds

    def offer(self, operator: SharedActionOperator,
              request: ActionRequest) -> bool:
        """Admission-gate one request and submit it to its operator.

        Returns True when the request entered the pending queue; False
        when it was rejected (admission or backpressure), in which case
        the request is marked REJECTED and accounted.
        """
        now = self.env.now
        estimated = self.estimate_service_seconds(request)
        reason = self.admission.admit_request(request.priority, estimated,
                                              now)
        if reason is None:
            try:
                operator.submit(request)
            except QueueFullError:
                reason = REASON_QUEUE_FULL
        if reason is not None:
            self.note_rejected(request, reason)
            return False
        self.admitted_total += 1
        self.admitted_by_tier[request.priority] = \
            self.admitted_by_tier.get(request.priority, 0) + 1
        if self.obs.enabled:
            self.obs.inc("overload.admitted", tier=request.priority)
            self.obs.set_gauge("overload.pending_requests",
                               operator.pending_count,
                               action=operator.action.name)
        return True

    # ------------------------------------------------------------------
    # Accounting sinks
    # ------------------------------------------------------------------
    def note_rejected(self, request: ActionRequest, reason: str) -> None:
        """Account one refused request (admission or backpressure)."""
        request.mark_rejected(self.env.now, reason)
        self.rejected_total += 1
        self.rejected_by_tier[request.priority] = \
            self.rejected_by_tier.get(request.priority, 0) + 1
        self.rejected_by_reason[reason] = \
            self.rejected_by_reason.get(reason, 0) + 1
        self.tracer.record(
            self.env.now, "request_rejected", request=request.request_id,
            action=request.action_name, query=request.query_id,
            priority=request.priority, reason=reason)
        if self.obs.enabled:
            self.obs.inc("overload.rejected", tier=request.priority,
                         reason=reason)

    def note_shed(self, request: ActionRequest, reason: str) -> None:
        """Account one shed request (the dispatcher already marked it)."""
        self.shed_total += 1
        self.shed_by_tier[request.priority] = \
            self.shed_by_tier.get(request.priority, 0) + 1
        self.shed_by_reason[reason] = \
            self.shed_by_reason.get(reason, 0) + 1
        if request.query_id:
            self.shed_by_query[request.query_id] = \
                self.shed_by_query.get(request.query_id, 0) + 1
        if self.obs.enabled:
            self.obs.inc("overload.shed", tier=request.priority,
                         reason=reason)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def shedder(self) -> LoadShedder:
        if self._shedder is None:
            raise AortaError("overload plane not bound to a dispatcher")
        return self._shedder

    def stats(self) -> Dict[str, Any]:
        """Overload accounting for engine.statistics() / the CLI."""
        shedder = self._shedder
        return {
            "admitted_requests": self.admitted_total,
            "rejected_requests": self.rejected_total,
            "shed_requests": self.shed_total,
            "admitted_queries": self.admission.admitted_queries,
            "rejected_queries": self.admission.rejected_queries,
            "admitted_by_tier": dict(sorted(
                self.admitted_by_tier.items())),
            "rejected_by_tier": dict(sorted(
                self.rejected_by_tier.items())),
            "shed_by_tier": dict(sorted(self.shed_by_tier.items())),
            "rejected_by_reason": dict(sorted(
                self.rejected_by_reason.items())),
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "shed_by_query": dict(sorted(self.shed_by_query.items())),
            "shed_passes": shedder.shed_passes if shedder else 0,
            "shedding_active": bool(shedder.active) if shedder else False,
        }
