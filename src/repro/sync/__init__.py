"""Device synchronization (paper Section 4).

Two mechanisms protect action atomicity on unreliable physical devices:
the **locking** mechanism (one action at a time per device, implemented
here) and the **probing** mechanism (availability checks, implemented in
:mod:`repro.comm.probe` since a probe is a communication exchange).
"""

from repro.sync.locks import DeviceLockManager, LockToken

__all__ = ["DeviceLockManager", "LockToken"]
