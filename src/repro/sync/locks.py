"""The device locking mechanism.

"When a device has been selected to execute an action, the optimizer
will lock it until it finishes executing the action ... Subsequent
actions on this device cannot start before the device is unlocked."
(Section 4)

Locks are per-device and FIFO, built on the simulation-time
:class:`~repro.sim.resources.SimLock` so waiting for a busy device costs
virtual time — which is exactly how queueing delay enters the makespan.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional, Set

from repro.errors import SchedulingError
from repro.obs.spans import NULL_OBS
from repro.runtime import Runtime
from repro.sim import SimLock

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.spans import Observability

_token_counter = itertools.count(1)


@dataclass(frozen=True)
class LockToken:
    """Identifies one lock-holding activity (usually one action request)."""

    holder: str
    serial: int = field(default_factory=lambda: next(_token_counter))


class DeviceLockManager:
    """Per-device mutual exclusion for action execution."""

    def __init__(self, env: Runtime,
                 obs: Optional["Observability"] = None) -> None:
        self.env = env
        self.obs = obs if obs is not None else NULL_OBS
        self._locks: Dict[str, SimLock] = {}
        #: Total lock acquisitions, for utilization reporting.
        self.acquisitions = 0
        #: Total acquisitions that had to queue behind a holder.
        self.contended_acquisitions = 0
        #: Total forced releases (lease expiry or explicit recovery).
        self.recoveries = 0
        #: Tokens evicted by recovery whose owner has not released yet;
        #: their eventual release() is a silent no-op, not an error.
        self._recovered_tokens: Set[LockToken] = set()

    def _lock_for(self, device_id: str) -> SimLock:
        if device_id not in self._locks:
            self._locks[device_id] = SimLock(self.env, name=f"lock:{device_id}")
        return self._locks[device_id]

    def acquire(
        self, device_id: str, token: LockToken,
        lease_seconds: Optional[float] = None,
    ) -> Generator[Any, Any, LockToken]:
        """Lock ``device_id`` on behalf of ``token``; waits if busy.

        With ``lease_seconds``, the grant is a lease: if the token still
        holds the lock that long after acquisition — its executor died
        mid-action on a crashed device — the lock is forcibly recovered
        so FIFO waiters proceed instead of deadlocking.
        """
        lock = self._lock_for(device_id)
        if lock.locked:
            self.contended_acquisitions += 1
            self.obs.inc("lock.contended", device=device_id)
        self.acquisitions += 1
        self.obs.inc("lock.acquisitions", device=device_id)
        waited_from = self.env.now
        yield lock.acquire(token)
        self.obs.observe("lock.wait_seconds", self.env.now - waited_from,
                         device=device_id)
        if lease_seconds is not None:
            self.env.process(self._lease_watchdog(device_id, token,
                                                  lease_seconds))
        return token

    def _lease_watchdog(
        self, device_id: str, token: LockToken, lease_seconds: float
    ) -> Generator[Any, Any, None]:
        yield self.env.timeout(lease_seconds)
        if self._lock_for(device_id).holder is token:
            self.recover(device_id)

    def try_acquire(self, device_id: str, token: LockToken) -> bool:
        """Non-blocking acquire: True and locked, or False untouched.

        The optimizer uses this to skip a busy device instead of
        queueing on it ("the system will not assign a new request to a
        camera that is busy serving another request", Section 6.2).
        """
        lock = self._lock_for(device_id)
        if lock.locked or lock.queue_length:
            return False
        grant = lock.acquire(token)
        if not grant.triggered:  # pragma: no cover - defensive
            raise SchedulingError("uncontended acquire did not grant")
        self.acquisitions += 1
        self.obs.inc("lock.acquisitions", device=device_id)
        return True

    def release(self, device_id: str, token: LockToken) -> None:
        """Unlock ``device_id``; the next FIFO waiter proceeds.

        Releasing a token whose lock was already recovered (lease
        expiry) is a no-op: the executor outlived its lease but did
        eventually finish, and the lock has moved on without it.
        """
        if token in self._recovered_tokens:
            self._recovered_tokens.discard(token)
            return
        self._lock_for(device_id).release(token)

    def recover(self, device_id: str) -> Optional[LockToken]:
        """Forcibly release a dead holder's lock; waiters proceed FIFO.

        The fault-tolerance path for a device whose executor crashed
        while holding the lock: rather than deadlocking every queued
        action, the lease recovery evicts the holder and hands the lock
        to the next waiter. Returns the evicted token (None if the lock
        was free).
        """
        evicted = self._lock_for(device_id).force_release()
        if evicted is not None:
            self.recoveries += 1
            self.obs.inc("lock.recoveries", device=device_id)
            self._recovered_tokens.add(evicted)
        return evicted

    def cancel(self, device_id: str, token: LockToken) -> bool:
        """Withdraw a queued acquire (e.g. the request was rescheduled)."""
        return self._lock_for(device_id).cancel(token)

    def is_locked(self, device_id: str) -> bool:
        """Whether the device is currently executing an action."""
        return self._lock_for(device_id).locked

    def queue_length(self, device_id: str) -> int:
        """Number of actions waiting for this device."""
        return self._lock_for(device_id).queue_length
