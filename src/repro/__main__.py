"""Command-line entry point: ``python -m repro``.

Prints the library banner and optionally runs the built-in demo (the
paper's Figure 1 scenario, same as ``examples/quickstart.py``).
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro import (
    AortaEngine,
    Environment,
    PanTiltZoomCamera,
    Point,
    SensorMote,
    SensorStimulus,
)

BANNER = f"""Aorta {repro.__version__} — pervasive query processing
Reproduction of Xue, Luo, Ni: "Systems Support for Pervasive Query
Processing" (ICDCS 2005). See README.md, DESIGN.md, EXPERIMENTS.md.
"""


def run_demo() -> int:
    """The Figure 1 snapshot query in one shot."""
    env = Environment()
    engine = AortaEngine(env)
    engine.add_device(PanTiltZoomCamera(env, "cam1", Point(0, 0)))
    engine.add_device(PanTiltZoomCamera(env, "cam2", Point(20, 0),
                                        facing=180.0))
    mote = SensorMote(env, "mote1", Point(5, 3), noise_amplitude=0.0)
    engine.add_device(mote)
    engine.execute('''CREATE AQ snapshot AS
        SELECT photo(c.ip, s.loc, "photos/admin")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)''')
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=3.0,
                               magnitude=850.0))
    engine.start()
    engine.run(until=30.0)
    print("Trace of the run:")
    print(engine.tracer.tail())
    request = engine.completed_requests[0]
    print(f"\nPhoto stored at {request.result.pathname} "
          f"({request.completion_seconds:.2f}s after the event)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=BANNER,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--demo", action="store_true",
                        help="run the Figure 1 demo scenario")
    parser.add_argument("--version", action="store_true",
                        help="print the version and exit")
    args = parser.parse_args(argv)
    if args.version:
        print(repro.__version__)
        return 0
    print(BANNER)
    if args.demo:
        return run_demo()
    print("Run with --demo for the Figure 1 scenario, or see examples/.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
