"""Command-line entry point: ``python -m repro``.

Prints the library banner and optionally runs the built-in demo (the
paper's Figure 1 scenario, same as ``examples/quickstart.py``). The
``metrics`` subcommand runs the same scenario with observability
enabled and exports its metrics and span tree.
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro import (
    AortaEngine,
    DeviceSpec,
    EngineConfig,
    PanTiltZoomCamera,
    Point,
    RegionPlacement,
    SensorMote,
    SensorStimulus,
    ShardedEngine,
)
from repro.core.config import PARALLEL_BACKENDS
from repro.obs import metrics_to_json, metrics_to_text, span_tree_text
from repro.runtime import RUNTIME_NAMES

DEMO_AQ = '''CREATE AQ snapshot AS
    SELECT photo(c.ip, s.loc, "photos/admin")
    FROM sensor s, camera c
    WHERE s.accel_x > 500 AND coverage(c.id, s.loc)'''

BANNER = f"""Aorta {repro.__version__} — pervasive query processing
Reproduction of Xue, Luo, Ni: "Systems Support for Pervasive Query
Processing" (ICDCS 2005). See README.md, DESIGN.md, EXPERIMENTS.md.
"""


def _demo_engine(*, observability: bool = False,
                 runtime: str = "virtual",
                 time_scale: float = 1.0,
                 fastpath: bool = False,
                 overload: bool = False) -> AortaEngine:
    """The Figure 1 scenario, built but not yet run.

    ``runtime="realtime"`` paces the same scenario against the wall
    clock: ``time_scale=1.0`` replays its 30 runtime seconds in 30 real
    seconds; ``time_scale=0`` fires timers immediately, reproducing the
    virtual run exactly. ``fastpath`` switches on the comm fast path
    (connection pool + status cache + concurrent dispatch).
    ``overload`` switches on the overload-control plane and additionally
    injects a deterministic request storm so the admission, bounded
    queue and shedding counters have something to report.
    """
    policy = None
    if overload:
        from repro.overload import OverloadPolicy, TierRate
        policy = OverloadPolicy(
            tier_rates={1: TierRate(rate=1.0, burst=2.0)},
            queue_limit=8,
            shed_high_watermark=6, shed_low_watermark=2)
    config = EngineConfig(observability=observability,
                          runtime=runtime, time_scale=time_scale,
                          connection_pool=fastpath,
                          status_cache=fastpath,
                          concurrent_dispatch=fastpath,
                          overload=overload, overload_policy=policy)
    engine = AortaEngine(config=config)
    env = engine.env
    engine.add_device(PanTiltZoomCamera(env, "cam1", Point(0, 0)))
    engine.add_device(PanTiltZoomCamera(env, "cam2", Point(20, 0),
                                        facing=180.0))
    mote = SensorMote(env, "mote1", Point(5, 3), noise_amplitude=0.0)
    engine.add_device(mote)
    engine.execute(DEMO_AQ)
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=3.0,
                               magnitude=850.0))
    if overload:
        _inject_demo_storm(engine)
    engine.start()
    engine.run(until=30.0)
    return engine


def _demo_fleet(shards: int, *,
                observability: bool = False,
                parallel: bool = False,
                parallel_backend: str = "process") -> ShardedEngine:
    """The Figure 1 scenario replicated across ``shards`` regions.

    Each region (= shard, via explicit region placement) gets the
    paper's two ceiling cameras and one sensor mote; every region's
    mote fires at a staggered time so each shard services one photo of
    its own. Built and run, like :func:`_demo_engine`. Device factories
    are :class:`~repro.DeviceSpec` values so ``parallel=True`` can
    replay them inside worker processes.
    """
    regions = {
        f"region{index:02d}": [f"cam{index:02d}a", f"cam{index:02d}b",
                               f"mote{index:02d}"]
        for index in range(shards)
    }
    fleet = ShardedEngine(
        config=EngineConfig(observability=observability, shards=shards,
                            parallel=parallel,
                            parallel_backend=parallel_backend),
        placement=RegionPlacement.from_regions(regions), seed=0)
    for index in range(shards):
        tag = f"{index:02d}"
        fleet.add_device(f"cam{tag}a", DeviceSpec(
            PanTiltZoomCamera, f"cam{tag}a", Point(0, 0),
            ip_address=f"10.0.{index}.1"))
        fleet.add_device(f"cam{tag}b", DeviceSpec(
            PanTiltZoomCamera, f"cam{tag}b", Point(20, 0),
            facing=180.0, ip_address=f"10.0.{index}.2"))
        fleet.add_device(f"mote{tag}", DeviceSpec(
            SensorMote, f"mote{tag}", Point(5, 3), noise_amplitude=0.0))
    fleet.execute(DEMO_AQ)
    for index in range(shards):
        fleet.inject(f"mote{index:02d}",
                     SensorStimulus("accel_x", start=2.0 + index,
                                    duration=3.0, magnitude=850.0))
    fleet.start()
    fleet.run(until=30.0 + shards)
    return fleet


def run_sharded_demo(shards: int, *, parallel: bool = False,
                     parallel_backend: str = "process") -> int:
    """The Figure 1 scenario fanned out across ``shards`` regions."""
    fleet = _demo_fleet(shards, parallel=parallel,
                        parallel_backend=parallel_backend)
    mode = (f"{parallel_backend} workers" if fleet.parallel
            else "serial lockstep")
    print(f"Fleet of {fleet.n_shards} shards "
          f"(region placement, one region per shard, {mode})")
    for index, stats in enumerate(fleet.shard_statistics()):
        print(f"  shard {index}: {stats['devices']} devices, "
              f"{stats['requests_serviced']} serviced")
    stats = fleet.statistics()
    print(f"Fleet total: {stats['devices']} devices, "
          f"{stats['requests_serviced']} serviced, "
          f"{stats['queries']} AQ registrations")
    for request in fleet.completed_requests:
        print(f"  {request.request_id}: {request.result.pathname} "
              f"({request.completion_seconds:.2f}s after the event)")
    breakdown = fleet.round_breakdown()
    if breakdown is not None:
        waits = ", ".join(
            f"s{entry['shard']}={entry['barrier_wait_s']:.2f}s"
            for entry in breakdown["per_shard"])
        print(f"{breakdown['rounds']} lockstep rounds in "
              f"{breakdown['wall_s']:.2f}s wall; barrier waits: {waits}")
    fleet.close()
    return 0


def _inject_demo_storm(engine: AortaEngine) -> None:
    """A small deterministic photo storm for ``metrics --overload``."""
    from repro.actions.request import ActionRequest
    from repro.devices.failures import FailureInjector

    operator = engine.dispatcher.operator_for(engine.actions.get("photo"))
    candidates = ("cam1", "cam2")

    def make_request(index: int, now: float) -> ActionRequest:
        tier = 3 if index % 4 == 0 else (2 if index % 4 == 1 else 1)
        deadline = None if tier == 3 else now + (3.0 if tier == 2 else 8.0)
        return ActionRequest(
            action_name="photo",
            arguments={"target": Point(10.0 + index, 5.0),
                       "directory": "photos/storm"},
            created_at=now, candidates=candidates,
            request_id=f"storm{index:02d}", priority=tier,
            deadline=deadline)

    injector = FailureInjector(engine.env)
    injector.schedule_request_storm(
        lambda request: engine.dispatcher.submit(operator, request),
        make_request, start=1.0, duration=2.0, rate=10.0)


def _print_query_listing(report: list[dict]) -> None:
    """The query-catalog table: one line per registered AQ."""
    print("registered queries:")
    if not report:
        print("  (none)")
        return
    header = (f"  {'name':<16} {'state':<9} {'events':>7} "
              f"{'emitted':>8} {'rejected':>9} {'uncovered':>10}")
    print(header)
    for entry in report:
        print(f"  {entry['name']:<16} {entry['state']:<9} "
              f"{entry['events_detected']:>7} "
              f"{entry['requests_emitted']:>8} "
              f"{entry['requests_rejected']:>9} "
              f"{entry['uncovered_events']:>10}")


def run_demo(*, runtime: str = "virtual",
             time_scale: float = 1.0) -> int:
    """The Figure 1 snapshot query in one shot."""
    engine = _demo_engine(runtime=runtime, time_scale=time_scale)
    print(f"Runtime backend: {engine.env.backend_name}")
    print("Trace of the run:")
    print(engine.tracer.tail())
    request = engine.completed_requests[0]
    print(f"\nPhoto stored at {request.result.pathname} "
          f"({request.completion_seconds:.2f}s after the event)")
    print()
    _print_query_listing(engine.query_report())
    return 0


def run_sharded_metrics(shards: int, *, as_json: bool = False,
                        queries: bool = False,
                        parallel: bool = False,
                        parallel_backend: str = "process") -> int:
    """Run the sharded demo with observability; print labeled metrics.

    Every series carries a ``shard=<i>`` label, so per-shard activity
    stays distinguishable in the merged fleet snapshot (a parallel
    fleet additionally reports its ``shard.round.*`` wall-clock
    series). ``queries`` appends the fleet-wide query-catalog listing
    (per-shard counters merged by query name).
    """
    fleet = _demo_fleet(shards, observability=True, parallel=parallel,
                        parallel_backend=parallel_backend)
    snapshot = fleet.shard_labeled_metrics()
    if as_json:
        print(metrics_to_json(snapshot))
    else:
        print(metrics_to_text(snapshot))
        if queries:
            print()
            _print_query_listing(fleet.query_report())
    fleet.close()
    return 0


def run_metrics(*, as_json: bool = False, spans: bool = False,
                fastpath: bool = False, overload: bool = False,
                queries: bool = False) -> int:
    """Run the demo with observability on; export what it measured.

    With ``fastpath`` the comm fast path is enabled, so the snapshot
    additionally carries the ``comm.pool.*`` and ``probe.cache.*``
    counter families, and the text form appends a one-line summary of
    each (JSON output stays pure metrics). With ``overload`` the
    overload-control plane is enabled against an injected request
    storm, and the text form appends admitted/rejected/shed counts per
    priority tier plus the peak pending-queue depth per operator. With
    ``queries`` the text form appends the query-catalog listing (name,
    state, per-query event and request counters).
    """
    engine = _demo_engine(observability=True, fastpath=fastpath,
                          overload=overload)
    snapshot = engine.metrics()
    if as_json:
        print(metrics_to_json(snapshot))
    else:
        print(metrics_to_text(snapshot))
        if queries:
            print()
            _print_query_listing(engine.query_report())
        if engine.pool is not None:
            pool = engine.pool.stats()
            print(f"\nconnection pool: {pool['hits']:.0f} hits / "
                  f"{pool['misses']:.0f} misses "
                  f"(hit rate {pool['hit_rate']:.0%}), "
                  f"{pool['idle']:.0f} idle")
        if engine.status_cache is not None:
            cache = engine.status_cache.stats()
            print(f"status cache: {cache['hits']:.0f} hits / "
                  f"{cache['misses']:.0f} misses "
                  f"(hit rate {cache['hit_rate']:.0%}), "
                  f"{cache['invalidations']:.0f} invalidations")
        if engine.overload is not None:
            stats = engine.overload.stats()
            tiers = sorted(set(stats["admitted_by_tier"])
                           | set(stats["rejected_by_tier"])
                           | set(stats["shed_by_tier"]))
            print("\noverload control (per priority tier):")
            for tier in tiers:
                print(f"  tier {tier}: "
                      f"{stats['admitted_by_tier'].get(tier, 0)} admitted"
                      f", {stats['rejected_by_tier'].get(tier, 0)} "
                      f"rejected, {stats['shed_by_tier'].get(tier, 0)} "
                      f"shed")
            print(f"  queries: {stats['admitted_queries']} admitted, "
                  f"{stats['rejected_queries']} rejected; "
                  f"{stats['shed_passes']} shedder passes")
            for name, operator in sorted(
                    engine.dispatcher._operators.items()):
                print(f"  peak queue depth [{name}]: "
                      f"{operator.peak_pending}"
                      + (f" (limit {operator.limit})"
                         if operator.limit is not None else ""))
    if spans:
        print("\nspan tree:")
        print(span_tree_text(engine.tracer))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=BANNER,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--demo", action="store_true",
                        help="run the Figure 1 demo scenario")
    parser.add_argument("--runtime", choices=RUNTIME_NAMES,
                        default="virtual",
                        help="runtime backend for --demo: virtual "
                             "(instant) or realtime (wall-clock paced)")
    parser.add_argument("--time-scale", type=float, default=1.0,
                        help="realtime pacing: wall seconds per runtime "
                             "second (0 = fire timers immediately; "
                             "default 1.0)")
    parser.add_argument("--shards", type=int, default=1,
                        help="partition the demo fleet across N engine "
                             "shards (region placement, one Figure 1 "
                             "region per shard; default 1 = the plain "
                             "engine)")
    parser.add_argument("--parallel", action="store_true",
                        help="run each demo shard in its own worker "
                             "(true parallel lockstep; needs "
                             "--shards >= 2)")
    parser.add_argument("--parallel-backend", choices=PARALLEL_BACKENDS,
                        default="process",
                        help="worker backend for --parallel: process "
                             "(spawned interpreters) or thread "
                             "(portable fallback)")
    parser.add_argument("--version", action="store_true",
                        help="print the version and exit")
    subcommands = parser.add_subparsers(dest="command")
    metrics = subcommands.add_parser(
        "metrics",
        help="run the demo scenario with observability enabled and "
             "print its metrics")
    metrics.add_argument("--json", action="store_true",
                         help="export machine-readable JSON instead of "
                              "the text table")
    metrics.add_argument("--spans", action="store_true",
                         help="also print the virtual-time span tree")
    metrics.add_argument("--fastpath", action="store_true",
                         help="enable the comm fast path (connection "
                              "pool + status cache + concurrent "
                              "dispatch) and report its counters")
    metrics.add_argument("--overload", action="store_true",
                         help="enable the overload-control plane, "
                              "inject a request storm, and report "
                              "per-tier admission/shedding counters "
                              "and peak queue depths")
    metrics.add_argument("--queries", action="store_true",
                         help="append the query-catalog listing: one "
                              "line per registered AQ with its state "
                              "and per-query event/request counters")
    metrics.add_argument("--shards", type=int, default=1,
                         help="run the sharded demo fleet and print "
                              "shard-labeled fleet metrics (default 1 "
                              "= the plain engine snapshot)")
    metrics.add_argument("--parallel", action="store_true",
                         help="run the sharded metrics demo with "
                              "parallel workers (needs --shards >= 2)")
    metrics.add_argument("--parallel-backend",
                         choices=PARALLEL_BACKENDS, default="process",
                         help="worker backend for --parallel")
    args = parser.parse_args(argv)
    if args.version:
        print(repro.__version__)
        return 0
    if args.command == "metrics":
        if args.shards > 1:
            return run_sharded_metrics(
                args.shards, as_json=args.json, queries=args.queries,
                parallel=args.parallel,
                parallel_backend=args.parallel_backend)
        return run_metrics(as_json=args.json, spans=args.spans,
                           fastpath=args.fastpath,
                           overload=args.overload,
                           queries=args.queries)
    print(BANNER)
    if args.demo:
        if args.shards > 1:
            return run_sharded_demo(
                args.shards, parallel=args.parallel,
                parallel_backend=args.parallel_backend)
        return run_demo(runtime=args.runtime, time_scale=args.time_scale)
    print("Run with --demo for the Figure 1 scenario, or see examples/.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
