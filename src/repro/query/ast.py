"""Abstract syntax tree of the Aorta SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Set, Tuple


class Node:
    """Base class of all AST nodes."""


class Expression(Node):
    """Base class of evaluable expressions."""

    def column_refs(self) -> Set["ColumnRef"]:
        """All column references in this subtree."""
        return set()

    def qualifiers(self) -> Set[str]:
        """All table aliases referenced in this subtree."""
        return {ref.qualifier for ref in self.column_refs() if ref.qualifier}


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string or boolean."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly qualified) column reference, e.g. ``s.accel_x``."""

    qualifier: str
    name: str

    def column_refs(self) -> Set["ColumnRef"]:
        return {self}

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A function or action invocation, e.g. ``coverage(c.id, s.loc)``."""

    name: str
    args: Tuple[Expression, ...]

    def column_refs(self) -> Set[ColumnRef]:
        refs: Set[ColumnRef] = set()
        for arg in self.args:
            refs |= arg.column_refs()
        return refs

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Arithmetic(Expression):
    """A binary arithmetic expression: ``left op right``, op in + - * /."""

    op: str
    left: Expression
    right: Expression

    def column_refs(self) -> Set[ColumnRef]:
        return self.left.column_refs() | self.right.column_refs()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Negate(Expression):
    """Unary minus."""

    operand: Expression

    def column_refs(self) -> Set[ColumnRef]:
        return self.operand.column_refs()

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison: ``left op right`` with op in > < >= <= = <>."""

    op: str
    left: Expression
    right: Expression

    def column_refs(self) -> Set[ColumnRef]:
        return self.left.column_refs() | self.right.column_refs()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BooleanOp(Expression):
    """An AND/OR over two or more operands."""

    op: str  # "AND" | "OR"
    operands: Tuple[Expression, ...]

    def column_refs(self) -> Set[ColumnRef]:
        refs: Set[ColumnRef] = set()
        for operand in self.operands:
            refs |= operand.column_refs()
        return refs

    def __str__(self) -> str:
        joined = f" {self.op} ".join(str(o) for o in self.operands)
        return f"({joined})"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation."""

    operand: Expression

    def column_refs(self) -> Set[ColumnRef]:
        return self.operand.column_refs()

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class Star(Expression):
    """``SELECT *``."""

    def __str__(self) -> str:
        return "*"


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

class Statement(Node):
    """Base class of executable statements."""


@dataclass(frozen=True)
class TableRef(Node):
    """A FROM-clause entry: table name plus optional alias."""

    table: str
    alias: str

    def __str__(self) -> str:
        return f"{self.table} {self.alias}" if self.alias != self.table \
            else self.table


@dataclass(frozen=True)
class SelectQuery(Statement):
    """``SELECT items FROM tables [WHERE condition]``."""

    select_items: Tuple[Expression, ...]
    tables: Tuple[TableRef, ...]
    where: Optional[Expression] = None

    def alias_of(self, name: str) -> Optional[TableRef]:
        """The table bound to alias ``name``, or None."""
        for table in self.tables:
            if table.alias == name:
                return table
        return None

    def __str__(self) -> str:
        items = ", ".join(str(i) for i in self.select_items)
        tables = ", ".join(str(t) for t in self.tables)
        where = f" WHERE {self.where}" if self.where is not None else ""
        return f"SELECT {items} FROM {tables}{where}"


@dataclass(frozen=True)
class ActionParameterDecl(Node):
    """One ``Type name`` pair in a CREATE ACTION signature."""

    type_name: str
    name: str


@dataclass(frozen=True)
class CreateActionStatement(Statement):
    """``CREATE ACTION name(...) AS "lib" PROFILE "profile"``."""

    name: str
    parameters: Tuple[ActionParameterDecl, ...]
    library_path: str
    profile_path: str


@dataclass(frozen=True)
class CreateAQStatement(Statement):
    """``CREATE AQ name AS SELECT ...`` — an action-embedded
    continuous query, as in the paper's Figure 1."""

    name: str
    query: SelectQuery


@dataclass(frozen=True)
class DropAQStatement(Statement):
    """``DROP AQ name`` — deregister a continuous query."""

    name: str


@dataclass(frozen=True)
class ExplainStatement(Statement):
    """``EXPLAIN <statement>`` — show the plan without executing."""

    target: Statement
