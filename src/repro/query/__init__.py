"""The declarative application interface (paper Section 2.2).

An extended-SQL dialect covering the paper's command set:

* ``CREATE ACTION name(Type param, ...) AS "lib/..." PROFILE "..."``
* ``CREATE AQ name AS SELECT ... FROM ... WHERE ...``
* ``DROP AQ name``
* plain ``SELECT`` over the virtual device tables (one-shot snapshots)

The pipeline is classic: :mod:`tokens` lexes, :mod:`parser` builds the
:mod:`ast`, :mod:`expressions` evaluates bound expressions over device
tuples, :mod:`catalog` resolves table/column references and
:mod:`functions` hosts built-in predicates like ``coverage()``.
"""

from repro.query.ast import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    CreateActionStatement,
    CreateAQStatement,
    DropAQStatement,
    ExplainStatement,
    FunctionCall,
    Literal,
    Negate,
    Not,
    SelectQuery,
    Star,
    Statement,
    TableRef,
)
from repro.query.bands import Band, BandForm, compile_event_predicate
from repro.query.catalog import SchemaCatalog
from repro.query.expressions import (
    EvaluationContext,
    compare_values,
    evaluate,
)
from repro.query.functions import FunctionRegistry
from repro.query.parser import parse, parse_expression
from repro.query.predicate_index import AttributeIndex, PredicateIndex
from repro.query.query_catalog import QueryCatalog, RegisteredQuery
from repro.query.tokens import Token, TokenKind, tokenize

__all__ = [
    "Arithmetic",
    "AttributeIndex",
    "Band",
    "BandForm",
    "BooleanOp",
    "ColumnRef",
    "Comparison",
    "CreateActionStatement",
    "CreateAQStatement",
    "DropAQStatement",
    "EvaluationContext",
    "ExplainStatement",
    "FunctionCall",
    "FunctionRegistry",
    "Literal",
    "Negate",
    "Not",
    "PredicateIndex",
    "QueryCatalog",
    "RegisteredQuery",
    "SchemaCatalog",
    "SelectQuery",
    "Star",
    "Statement",
    "TableRef",
    "Token",
    "TokenKind",
    "compare_values",
    "compile_event_predicate",
    "evaluate",
    "parse",
    "parse_expression",
    "tokenize",
]
