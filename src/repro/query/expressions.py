"""Expression evaluation over device tuples."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import BindingError, QueryError
from repro.geometry import Point
from repro.comm.tuples import DeviceTuple
from repro.query.ast import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
    Negate,
    Not,
    Star,
)
from repro.query.functions import FunctionRegistry

#: Pseudo-column: ``alias.loc`` combines loc_x/loc_y into a Point. The
#: paper's queries pass ``s.loc`` to actions and to coverage().
LOCATION_PSEUDO_COLUMN = "loc"


@dataclass
class EvaluationContext:
    """Bindings for one evaluation: alias -> tuple, plus functions."""

    tuples: Dict[str, DeviceTuple] = field(default_factory=dict)
    functions: Optional[FunctionRegistry] = None

    def bind(self, alias: str, row: DeviceTuple) -> "EvaluationContext":
        """A new context with one more alias bound."""
        merged = dict(self.tuples)
        merged[alias] = row
        return EvaluationContext(tuples=merged, functions=self.functions)


def _resolve_column(ref: ColumnRef, context: EvaluationContext) -> Any:
    if ref.qualifier:
        if ref.qualifier not in context.tuples:
            raise BindingError(
                f"unknown table alias {ref.qualifier!r} in "
                f"{ref.qualifier}.{ref.name}"
            )
        candidates = {ref.qualifier: context.tuples[ref.qualifier]}
    else:
        candidates = {
            alias: row for alias, row in context.tuples.items()
            if ref.name in row or (
                ref.name == LOCATION_PSEUDO_COLUMN
                and "loc_x" in row and "loc_y" in row)
        }
        if len(candidates) > 1:
            raise BindingError(
                f"ambiguous column {ref.name!r}: present in aliases "
                f"{sorted(candidates)}"
            )
        if not candidates:
            raise BindingError(f"unknown column {ref.name!r}")
    alias, row = next(iter(candidates.items()))
    if ref.name == LOCATION_PSEUDO_COLUMN and ref.name not in row:
        return Point(row["loc_x"], row["loc_y"])
    return row[ref.name]


_NUMERIC = (int, float)


def compare_values(op: str, left: Any, right: Any) -> bool:
    """Compare two values with SQL comparison semantics.

    The exact comparison the evaluator applies to ``left op right``:
    ``=``/``<>`` are Python equality; ordering requires both sides
    numeric or both strings and raises :class:`QueryError` otherwise.
    Public so the predicate index's band checks share one definition
    of comparison with the scan-all evaluator.
    """
    return _compare(op, left, right)


def _compare(op: str, left: Any, right: Any) -> bool:
    if op in ("=", "<>"):
        equal = left == right
        return equal if op == "=" else not equal
    comparable = (
        (isinstance(left, _NUMERIC) and isinstance(right, _NUMERIC))
        or (isinstance(left, str) and isinstance(right, str))
    )
    if not comparable:
        raise QueryError(
            f"cannot compare {type(left).__name__} with "
            f"{type(right).__name__} using {op!r}"
        )
    if op == ">":
        return left > right
    if op == "<":
        return left < right
    if op == ">=":
        return left >= right
    if op == "<=":
        return left <= right
    raise QueryError(f"unknown comparison operator {op!r}")


def _arithmetic(op: str, left: Any, right: Any) -> Any:
    if op == "+" and isinstance(left, str) and isinstance(right, str):
        return left + right  # SQL-ish string concatenation
    for operand in (left, right):
        if not isinstance(operand, _NUMERIC) or isinstance(operand, bool):
            raise QueryError(
                f"arithmetic {op!r} needs numbers, got "
                f"{type(operand).__name__}"
            )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise QueryError("division by zero in query expression")
        return left / right
    raise QueryError(f"unknown arithmetic operator {op!r}")


def evaluate(expression: Expression, context: EvaluationContext) -> Any:
    """Evaluate an expression against bound tuples.

    Booleans short-circuit; functions dispatch through the context's
    registry. ``Star`` has no value — the projection layer expands it.
    """
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        return _resolve_column(expression, context)
    if isinstance(expression, Comparison):
        left = evaluate(expression.left, context)
        right = evaluate(expression.right, context)
        return _compare(expression.op, left, right)
    if isinstance(expression, Arithmetic):
        left = evaluate(expression.left, context)
        right = evaluate(expression.right, context)
        return _arithmetic(expression.op, left, right)
    if isinstance(expression, Negate):
        value = evaluate(expression.operand, context)
        if not isinstance(value, _NUMERIC) or isinstance(value, bool):
            raise QueryError(
                f"cannot negate a {type(value).__name__}"
            )
        return -value
    if isinstance(expression, BooleanOp):
        if expression.op == "AND":
            return all(_as_bool(operand, context)
                       for operand in expression.operands)
        return any(_as_bool(operand, context)
                   for operand in expression.operands)
    if isinstance(expression, Not):
        return not _as_bool(expression.operand, context)
    if isinstance(expression, FunctionCall):
        if context.functions is None:
            raise BindingError(
                f"no function registry available to call "
                f"{expression.name!r}"
            )
        args = [evaluate(arg, context) for arg in expression.args]
        return context.functions.call(expression.name, args)
    if isinstance(expression, Star):
        raise QueryError("'*' is only legal as a SELECT item")
    raise QueryError(f"cannot evaluate {type(expression).__name__}")


def _as_bool(expression: Expression, context: EvaluationContext) -> bool:
    value = evaluate(expression, context)
    if not isinstance(value, bool):
        raise QueryError(
            f"expected a boolean condition, {expression} evaluated to "
            f"{type(value).__name__}"
        )
    return value
