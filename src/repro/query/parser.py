"""Recursive-descent parser for the Aorta SQL dialect.

Grammar (precedence low to high): OR, AND, NOT, comparison, primary.

::

    statement      := create_action | create_aq | drop_aq | select
    create_action  := CREATE ACTION ident '(' [param (',' param)*] ')'
                      AS string PROFILE string
    param          := ident ident               -- Type name
    create_aq      := CREATE AQ ident AS select
    drop_aq        := DROP AQ ident
    select         := SELECT select_item (',' select_item)*
                      FROM table_ref (',' table_ref)* [WHERE expr]
    select_item    := '*' | expr
    table_ref      := ident [ident]              -- table [alias]
    expr           := or_expr
    or_expr        := and_expr (OR and_expr)*
    and_expr       := not_expr (AND not_expr)*
    not_expr       := NOT not_expr | comparison
    comparison     := primary [op primary]
    primary        := literal | func_call | column_ref | '(' expr ')'
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.query.ast import (
    ActionParameterDecl,
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Negate,
    CreateActionStatement,
    CreateAQStatement,
    DropAQStatement,
    ExplainStatement,
    Expression,
    FunctionCall,
    Literal,
    Not,
    SelectQuery,
    Star,
    Statement,
    TableRef,
)
from repro.query.tokens import Token, TokenKind, tokenize

_COMPARISON_OPS = {">", "<", ">=", "<=", "=", "<>", "!="}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.END:
            self._position += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self.current
        found = token.text or "end of input"
        return ParseError(f"{message}, found {found!r}",
                          line=token.line, column=token.column)

    def _expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self._error(f"expected {word}")
        return self._advance()

    def _expect_identifier(self) -> str:
        if self.current.kind is not TokenKind.IDENTIFIER:
            raise self._error("expected an identifier")
        return self._advance().text

    def _expect_punct(self, char: str) -> None:
        if not (self.current.kind is TokenKind.PUNCTUATION
                and self.current.text == char):
            raise self._error(f"expected {char!r}")
        self._advance()

    def _expect_string(self) -> str:
        if self.current.kind is not TokenKind.STRING:
            raise self._error("expected a string literal")
        return self._advance().text

    def _at_punct(self, char: str) -> bool:
        return (self.current.kind is TokenKind.PUNCTUATION
                and self.current.text == char)

    def _accept_punct(self, char: str) -> bool:
        if self._at_punct(char):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> Statement:
        if self.current.is_keyword("EXPLAIN"):
            self._advance()
            return ExplainStatement(target=self.parse_statement())
        if self.current.is_keyword("CREATE"):
            self._advance()
            if self.current.is_keyword("ACTION"):
                return self._create_action()
            if self.current.is_keyword("AQ"):
                return self._create_aq()
            raise self._error("expected ACTION or AQ after CREATE")
        if self.current.is_keyword("DROP"):
            self._advance()
            self._expect_keyword("AQ")
            return DropAQStatement(name=self._expect_identifier())
        if self.current.is_keyword("SELECT"):
            return self._select()
        raise self._error("expected CREATE, DROP or SELECT")

    def finish(self, statement: Statement) -> Statement:
        self._accept_punct(";")
        if self.current.kind is not TokenKind.END:
            raise self._error("unexpected trailing input")
        return statement

    def _create_action(self) -> CreateActionStatement:
        self._expect_keyword("ACTION")
        name = self._expect_identifier()
        self._expect_punct("(")
        parameters: List[ActionParameterDecl] = []
        if not self._at_punct(")"):
            while True:
                type_name = self._expect_identifier()
                param_name = self._expect_identifier()
                parameters.append(ActionParameterDecl(type_name, param_name))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        self._expect_keyword("AS")
        library_path = self._expect_string()
        self._expect_keyword("PROFILE")
        profile_path = self._expect_string()
        return CreateActionStatement(
            name=name, parameters=tuple(parameters),
            library_path=library_path, profile_path=profile_path)

    def _create_aq(self) -> CreateAQStatement:
        self._expect_keyword("AQ")
        name = self._expect_identifier()
        self._expect_keyword("AS")
        return CreateAQStatement(name=name, query=self._select())

    def _select(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        items: List[Expression] = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())
        self._expect_keyword("FROM")
        tables: List[TableRef] = [self._table_ref()]
        while self._accept_punct(","):
            tables.append(self._table_ref())
        where: Optional[Expression] = None
        if self.current.is_keyword("WHERE"):
            self._advance()
            where = self.parse_expression()
        aliases = [t.alias for t in tables]
        duplicates = {a for a in aliases if aliases.count(a) > 1}
        if duplicates:
            raise ParseError(
                f"duplicate table alias(es): {sorted(duplicates)}")
        return SelectQuery(select_items=tuple(items), tables=tuple(tables),
                           where=where)

    def _select_item(self) -> Expression:
        if self._at_punct("*"):
            self._advance()
            return Star()
        return self.parse_expression()

    def _table_ref(self) -> TableRef:
        table = self._expect_identifier()
        if self.current.kind is TokenKind.IDENTIFIER:
            alias = self._advance().text
        else:
            alias = table
        return TableRef(table=table, alias=alias)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        operands = [self._and_expr()]
        while self.current.is_keyword("OR"):
            self._advance()
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp(op="OR", operands=tuple(operands))

    def _and_expr(self) -> Expression:
        operands = [self._not_expr()]
        while self.current.is_keyword("AND"):
            self._advance()
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp(op="AND", operands=tuple(operands))

    def _not_expr(self) -> Expression:
        if self.current.is_keyword("NOT"):
            self._advance()
            return Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        if (self.current.kind is TokenKind.OPERATOR
                and self.current.text in _COMPARISON_OPS):
            op = self._advance().text
            if op == "!=":
                op = "<>"
            right = self._additive()
            return Comparison(op=op, left=left, right=right)
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while (self.current.kind is TokenKind.OPERATOR
               and self.current.text in ("+", "-")):
            op = self._advance().text
            left = Arithmetic(op=op, left=left,
                              right=self._multiplicative())
        return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while ((self.current.kind is TokenKind.OPERATOR
                and self.current.text == "/")
               or self._at_punct("*")):
            op = "*" if self._at_punct("*") else "/"
            self._advance()
            left = Arithmetic(op=op, left=left, right=self._unary())
        return left

    def _unary(self) -> Expression:
        if (self.current.kind is TokenKind.OPERATOR
                and self.current.text == "-"):
            self._advance()
            return Negate(self._unary())
        return self._primary()

    def _primary(self) -> Expression:
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            is_float = "." in token.text or "e" in token.text \
                or "E" in token.text
            return Literal(float(token.text) if is_float
                           else int(token.text))
        if token.kind is TokenKind.STRING:
            self._advance()
            return Literal(token.text)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if self._accept_punct("("):
            inner = self.parse_expression()
            self._expect_punct(")")
            return inner
        if token.kind is TokenKind.IDENTIFIER:
            name = self._advance().text
            if self._accept_punct("("):
                args: List[Expression] = []
                if not self._at_punct(")"):
                    args.append(self.parse_expression())
                    while self._accept_punct(","):
                        args.append(self.parse_expression())
                self._expect_punct(")")
                return FunctionCall(name=name, args=tuple(args))
            if self._accept_punct("."):
                column = self._expect_identifier()
                return ColumnRef(qualifier=name, name=column)
            return ColumnRef(qualifier="", name=name)
        raise self._error("expected an expression")


def parse(text: str) -> Statement:
    """Parse one statement (optionally ``;``-terminated)."""
    parser = _Parser(tokenize(text))
    return parser.finish(parser.parse_statement())


def parse_expression(text: str) -> Expression:
    """Parse a standalone expression (for tests and tooling)."""
    parser = _Parser(tokenize(text))
    expression = parser.parse_expression()
    if parser.current.kind is not TokenKind.END:
        raise parser._error("unexpected trailing input")
    return expression
