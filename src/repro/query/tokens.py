"""Tokenizer for the Aorta SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ParseError

#: Reserved words, matched case-insensitively and normalized to upper.
KEYWORDS = frozenset({
    "CREATE", "DROP", "ACTION", "AQ", "AS", "PROFILE",
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT",
    "TRUE", "FALSE", "EXPLAIN",
})


class TokenKind(enum.Enum):
    """Lexical categories of the dialect."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"      # > < >= <= = <> !=
    PUNCTUATION = "punct"      # ( ) , . * ;
    END = "end"


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (1-based line/column)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word.upper()


_OPERATORS = (">=", "<=", "<>", "!=", ">", "<", "=", "+", "-", "/")
_PUNCTUATION = "(),.;*"


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens, ending with an END sentinel."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    line, column = 1, 1
    index = 0
    length = len(text)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]
        if char.isspace():
            advance(1)
            continue
        if char == "-" and text[index:index + 2] == "--":
            # SQL line comment.
            while index < length and text[index] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token(TokenKind.KEYWORD, upper, start_line, start_column)
            else:
                yield Token(TokenKind.IDENTIFIER, word, start_line,
                            start_column)
            advance(end - index)
            continue
        if char.isdigit() or (char == "." and index + 1 < length
                              and text[index + 1].isdigit()):
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit()
                                    or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # A dot not followed by a digit is punctuation
                    # (e.g. ``1.`` is illegal, ``s.loc`` never gets here).
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            # Optional exponent: 1e6, 6.1e-05, 2E+3.
            if end < length and text[end] in "eE":
                exponent = end + 1
                if exponent < length and text[exponent] in "+-":
                    exponent += 1
                if exponent < length and text[exponent].isdigit():
                    end = exponent
                    while end < length and text[end].isdigit():
                        end += 1
            number = text[index:end]
            yield Token(TokenKind.NUMBER, number, start_line, start_column)
            advance(end - index)
            continue
        if char in "'\"":
            quote = char
            end = index + 1
            while end < length and text[end] != quote:
                if text[end] == "\n":
                    raise ParseError("unterminated string literal",
                                     line=start_line, column=start_column)
                end += 1
            if end >= length:
                raise ParseError("unterminated string literal",
                                 line=start_line, column=start_column)
            value = text[index + 1:end]
            yield Token(TokenKind.STRING, value, start_line, start_column)
            advance(end - index + 1)
            continue
        matched_operator = next(
            (op for op in _OPERATORS if text.startswith(op, index)), None)
        if matched_operator is not None:
            yield Token(TokenKind.OPERATOR, matched_operator, start_line,
                        start_column)
            advance(len(matched_operator))
            continue
        if char in _PUNCTUATION:
            yield Token(TokenKind.PUNCTUATION, char, start_line, start_column)
            advance(1)
            continue
        raise ParseError(f"unexpected character {char!r}",
                         line=start_line, column=start_column)
    yield Token(TokenKind.END, "", line, column)
