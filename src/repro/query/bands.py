"""Normalized band form of continuous-query event predicates.

An AQ's event predicate is a conjunction over one event alias; the
indexable part of that conjunction is a set of *bands* — per-attribute
interval or point constraints of the shape ``s.attr op literal``.
:func:`compile_event_predicate` splits a predicate into

* one :class:`Band` per constrained attribute (same-attribute
  constraints intersect at compile time, so ``x > 3 AND x < 9`` is one
  band and ``x > 5 AND x < 3`` is recognized as unsatisfiable), and
* a *residual* expression holding every conjunct the band form cannot
  express (ORs, NOT, function calls, cross-column comparisons, string
  ordering) — evaluated per candidate tuple exactly like the scan-all
  executor would.

The band form is the unit the predicate index routes on; its
``matches`` method is the exact (non-superset) membership test, reusing
:func:`~repro.query.expressions.compare_values` so banded conjuncts
keep the comparison semantics of the expression evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.comm.tuples import DeviceTuple
from repro.profiles.schema import DeviceCatalog
from repro.query.ast import (
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
)
from repro.query.expressions import (
    LOCATION_PSEUDO_COLUMN,
    EvaluationContext,
    compare_values,
    evaluate,
)

_INF = float("inf")

#: Comparison operator seen from the column's side when the literal is
#: on the left (``5 < s.x`` reads as ``s.x > 5``).
_FLIPPED_OPS = {">": "<", "<": ">", ">=": "<=", "<=": ">=", "=": "="}

_NUMERIC_TYPES = (int, float)


@dataclass(frozen=True)
class Band:
    """One attribute's conjunctive constraint: an interval or a point.

    A *point* band (``has_point``) is an equality constraint keyed by
    dictionary lookup in the index; an *interval* band is a numeric
    range with per-end strictness (``low_strict`` means ``value >
    low``, inclusive otherwise). Unused ends stay at +/-infinity.
    """

    attribute: str
    point: Any = None
    has_point: bool = False
    low: float = -_INF
    high: float = _INF
    low_strict: bool = False
    high_strict: bool = False

    def admits(self, value: Any) -> bool:
        """Whether ``value`` satisfies this band.

        Delegates to :func:`compare_values`, so type errors (e.g. a
        string value against a numeric interval) raise the same
        :class:`~repro.errors.QueryError` the scan-all evaluator would.
        """
        if self.has_point:
            return compare_values("=", value, self.point)
        if self.low != -_INF and not compare_values(
                ">" if self.low_strict else ">=", value, self.low):
            return False
        if self.high != _INF and not compare_values(
                "<" if self.high_strict else "<=", value, self.high):
            return False
        return True

    def intersect(self, other: "Band") -> Optional["Band"]:
        """The conjunction of two same-attribute bands.

        Returns ``None`` when the conjunction is unsatisfiable (empty
        interval, contradictory points, or a point outside the other
        band's range).
        """
        if self.has_point and other.has_point:
            return self if self.point == other.point else None
        if self.has_point or other.has_point:
            point, ranged = ((self, other) if self.has_point
                             else (other, self))
            if not isinstance(point.point, _NUMERIC_TYPES):
                # A non-numeric point can never satisfy a numeric
                # interval — the conjunction is empty, exactly as the
                # scan-all evaluator's short-circuiting ``=`` would
                # report False before the interval conjunct errors.
                return None
            return point if ranged.admits(point.point) else None
        low, low_strict = self.low, self.low_strict
        if other.low > low or (other.low == low and other.low_strict):
            low, low_strict = other.low, other.low_strict
        high, high_strict = self.high, self.high_strict
        if other.high < high or (other.high == high and other.high_strict):
            high, high_strict = other.high, other.high_strict
        if low > high or (low == high and (low_strict or high_strict)):
            return None
        return Band(self.attribute, low=low, high=high,
                    low_strict=low_strict, high_strict=high_strict)

    def __str__(self) -> str:
        if self.has_point:
            return f"{self.attribute} = {self.point!r}"
        left = "" if self.low == -_INF else \
            f"{self.low} {'<' if self.low_strict else '<='} "
        right = "" if self.high == _INF else \
            f" {'<' if self.high_strict else '<='} {self.high}"
        return f"{left}{self.attribute}{right}"


@dataclass(frozen=True)
class BandForm:
    """The normalized form of one event predicate.

    ``bands`` are conjunctive per-attribute constraints (at most one
    per attribute); ``residual`` is the conjunction of everything the
    band form cannot express, or ``None``. An empty form (no bands, no
    residual) matches every tuple — the shape of a WHERE-less AQ. An
    ``unsatisfiable`` form matches nothing.
    """

    bands: Tuple[Band, ...] = ()
    residual: Optional[Expression] = None
    unsatisfiable: bool = False

    @property
    def indexable(self) -> bool:
        """Whether at least one band exists to route index lookups on."""
        return bool(self.bands)

    @property
    def primary(self) -> Optional[Band]:
        """The band index lookups route on (first constrained attribute)."""
        return self.bands[0] if self.bands else None

    def matches(self, row: DeviceTuple,
                context: EvaluationContext) -> bool:
        """Exact membership: every band admits, the residual holds.

        ``context`` must already have the event alias bound to ``row``
        for residual evaluation.
        """
        if self.unsatisfiable:
            return False
        for band in self.bands:
            if not band.admits(row[band.attribute]):
                return False
        if self.residual is not None:
            return bool(evaluate(self.residual, context))
        return True


def conjuncts_of(expression: Optional[Expression]) -> List[Expression]:
    """Flatten nested ANDs into their conjunct list."""
    if expression is None:
        return []
    if isinstance(expression, BooleanOp) and expression.op == "AND":
        flattened: List[Expression] = []
        for operand in expression.operands:
            flattened.extend(conjuncts_of(operand))
        return flattened
    return [expression]


def conjoin(conjuncts: List[Expression]) -> Optional[Expression]:
    """Rebuild a conjunction from a conjunct list (None when empty)."""
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return BooleanOp("AND", tuple(conjuncts))


def _band_of(conjunct: Expression, event_alias: str,
             catalog: DeviceCatalog) -> Optional[Band]:
    """The band one conjunct expresses, or None if non-indexable."""
    if not isinstance(conjunct, Comparison):
        return None
    if isinstance(conjunct.left, ColumnRef) \
            and isinstance(conjunct.right, Literal):
        ref, literal, op = conjunct.left, conjunct.right, conjunct.op
    elif isinstance(conjunct.right, ColumnRef) \
            and isinstance(conjunct.left, Literal):
        ref, literal = conjunct.right, conjunct.left
        op = _FLIPPED_OPS.get(conjunct.op, "")
    else:
        return None
    if op not in _FLIPPED_OPS:
        return None  # <> (and anything exotic) stays residual
    if ref.qualifier and ref.qualifier != event_alias:
        return None
    if ref.name == LOCATION_PSEUDO_COLUMN \
            or not catalog.has_attribute(ref.name):
        return None
    value = literal.value
    if op == "=":
        # Point bands hold any literal: dict-bucket lookup agrees with
        # ``=`` for every literal type (1 == 1.0 == True included).
        return Band(ref.name, point=value, has_point=True)
    # Ordering ops band only when both sides are numeric; a string
    # column (or string literal against a numeric column) would make
    # the comparison row-dependent on errors, so it stays residual.
    if catalog.attribute(ref.name).python_type not in _NUMERIC_TYPES:
        return None
    if not isinstance(value, _NUMERIC_TYPES):
        return None
    bound = float(value)
    if op == ">":
        return Band(ref.name, low=bound, low_strict=True)
    if op == ">=":
        return Band(ref.name, low=bound)
    if op == "<":
        return Band(ref.name, high=bound, high_strict=True)
    return Band(ref.name, high=bound)


def compile_event_predicate(predicate: Optional[Expression],
                            event_alias: str,
                            catalog: DeviceCatalog) -> BandForm:
    """Split an event predicate into bands plus a residual.

    Top-level conjuncts of the shape ``alias.attr op literal`` (either
    orientation; the alias may be implicit) become bands; same-attribute
    bands intersect, and a contradictory intersection yields an
    unsatisfiable form. Everything else is re-conjoined into the
    residual in its original order, preserving the evaluator's AND
    short-circuit behaviour among residual conjuncts.
    """
    if predicate is None:
        return BandForm()
    bands: Dict[str, Band] = {}
    residual: List[Expression] = []
    for conjunct in conjuncts_of(predicate):
        band = _band_of(conjunct, event_alias, catalog)
        if band is None:
            residual.append(conjunct)
            continue
        existing = bands.get(band.attribute)
        merged = band if existing is None else existing.intersect(band)
        if merged is None:
            return BandForm(unsatisfiable=True)
        bands[band.attribute] = merged
    return BandForm(tuple(bands.values()), conjoin(residual))
