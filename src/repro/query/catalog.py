"""The schema catalog: virtual device tables visible to queries."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import BindingError, RegistrationError
from repro.profiles.schema import DeviceCatalog
from repro.query.ast import ColumnRef, SelectQuery
from repro.query.expressions import LOCATION_PSEUDO_COLUMN


class SchemaCatalog:
    """Maps table names to device catalogs and resolves column refs.

    Each registered device type contributes one virtual table whose
    schema is its device catalog; tables with ``loc_x``/``loc_y``
    additionally expose the ``loc`` pseudo-column of Location type.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, DeviceCatalog] = {}

    def register_table(self, catalog: DeviceCatalog) -> None:
        """Expose a device type as a queryable virtual table."""
        if catalog.device_type in self._tables:
            raise RegistrationError(
                f"table {catalog.device_type!r} already registered"
            )
        self._tables[catalog.device_type] = catalog

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> DeviceCatalog:
        """The catalog backing a table, raising on unknown names."""
        try:
            return self._tables[name]
        except KeyError:
            raise BindingError(f"unknown table {name!r}") from None

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def has_column(self, table: str, column: str) -> bool:
        """Whether a table exposes ``column`` (including pseudo-columns)."""
        catalog = self.table(table)
        if catalog.has_attribute(column):
            return True
        return (column == LOCATION_PSEUDO_COLUMN
                and catalog.has_attribute("loc_x")
                and catalog.has_attribute("loc_y"))

    # ------------------------------------------------------------------
    # Semantic validation of SELECT queries
    # ------------------------------------------------------------------
    def validate_select(self, query: SelectQuery) -> None:
        """Check tables exist and every column reference resolves.

        Function names are resolved later (planner/engine), since the
        function registry is engine state.
        """
        for table_ref in query.tables:
            if not self.has_table(table_ref.table):
                raise BindingError(
                    f"unknown table {table_ref.table!r} in FROM clause"
                )
        refs: set[ColumnRef] = set()
        for item in query.select_items:
            if hasattr(item, "column_refs"):
                refs |= item.column_refs()
        if query.where is not None:
            refs |= query.where.column_refs()
        for ref in refs:
            self._validate_ref(ref, query)

    def _validate_ref(self, ref: ColumnRef, query: SelectQuery) -> None:
        if ref.qualifier:
            table_ref = query.alias_of(ref.qualifier)
            if table_ref is None:
                raise BindingError(
                    f"unknown table alias {ref.qualifier!r} in "
                    f"{ref.qualifier}.{ref.name}"
                )
            if not self.has_column(table_ref.table, ref.name):
                raise BindingError(
                    f"table {table_ref.table!r} has no column {ref.name!r}"
                )
            return
        matches = [t for t in query.tables
                   if self.has_column(t.table, ref.name)]
        if not matches:
            raise BindingError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            raise BindingError(
                f"ambiguous column {ref.name!r}: matches tables "
                f"{sorted(t.table for t in matches)}"
            )

    def resolve_alias_type(self, query: SelectQuery,
                           alias: str) -> Optional[str]:
        """The device type behind an alias, or None if unknown."""
        table_ref = query.alias_of(alias)
        if table_ref is None or not self.has_table(table_ref.table):
            return None
        return self.table(table_ref.table).device_type
