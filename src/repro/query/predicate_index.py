"""Event→AQ predicate index: route a tuple to the queries it matches.

One :class:`PredicateIndex` serves one event table. Each registered
query contributes its :class:`~repro.query.bands.BandForm`; the index
files the form under its *primary* band's attribute — a point band
lands in a hash bucket keyed by the literal, an interval band lands in
a segment tree over the elementary pieces of all interval endpoints.
Forms with no bands at all (WHERE-less or fully residual predicates)
live on a scan-always list, and unsatisfiable forms are filed nowhere.

A lookup stabs every attribute structure with the tuple's value for
that attribute, unions the scan-always list, and post-filters each
candidate exactly (every band re-checked numerically, the residual
expression evaluated) — the structures only need to return supersets,
so endpoint strictness and tombstoned entries are resolved in the
post-filter, never in the tree.

Incremental maintenance: new intervals buffer in an *overflow* list
(scanned linearly at lookup) and removals tombstone tree entries
(filtered by a liveness check). Rebuilds are lazy: the next *lookup*
that finds either buffer above an eighth of the live population folds
everything into a fresh tree — a bulk registration of 100k queries
pays zero rebuilds, the first scan afterwards pays exactly one, and
interleaved add/drop/lookup traffic stays amortized O(log n) per
operation.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.comm.tuples import DeviceTuple
from repro.query.ast import Expression
from repro.query.bands import Band, BandForm

#: Overflow/tombstone count below which a rebuild is never triggered —
#: small indexes just scan the buffer.
MIN_REBUILD_THRESHOLD = 64

#: Exact membership test for one candidate's residual expression, given
#: the query's event alias: ``residual_test(alias, expression)``.
ResidualTest = Callable[[str, Expression], bool]

_NUMERIC = (int, float)
_INF = float("inf")


class _IndexEntry:
    """One registered query's slot in the index."""

    __slots__ = ("name", "seq", "alias", "form")

    def __init__(self, name: str, seq: int, alias: str,
                 form: BandForm) -> None:
        self.name = name
        self.seq = seq
        self.alias = alias
        self.form = form


class _IntervalTree:
    """Static segment tree over the elementary pieces of the endpoints.

    The value line is cut at every distinct finite endpoint ``b`` into
    pieces ``(..., b0) [b0] (b0, b1) [b1] ...`` — ``2n + 1`` pieces for
    ``n`` endpoints. Each interval covers a contiguous piece range and
    is stored on the O(log n) canonical nodes of an implicit array
    tree; a stab walks one leaf-to-root path and unions the node lists.
    Nodes live in a dict so the (mostly empty) array is never
    materialized. Strictness is ignored here — closed-piece coverage
    yields a superset the caller's band re-check tightens.
    """

    __slots__ = ("_bounds", "_size", "_nodes")

    def __init__(self, entries: List[_IndexEntry]) -> None:
        bounds = set()
        for entry in entries:
            band = entry.form.bands[0]
            if band.low != -_INF:
                bounds.add(band.low)
            if band.high != _INF:
                bounds.add(band.high)
        self._bounds = sorted(bounds)
        pieces = 2 * len(self._bounds) + 1
        size = 1
        while size < pieces:
            size <<= 1
        self._size = size
        self._nodes: Dict[int, List[_IndexEntry]] = {}
        for entry in entries:
            band = entry.form.bands[0]
            left = 0 if band.low == -_INF else self._piece(band.low)
            right = pieces - 1 if band.high == _INF \
                else self._piece(band.high)
            lo, hi = left + size, right + size + 1
            while lo < hi:
                if lo & 1:
                    self._nodes.setdefault(lo, []).append(entry)
                    lo += 1
                if hi & 1:
                    hi -= 1
                    self._nodes.setdefault(hi, []).append(entry)
                lo >>= 1
                hi >>= 1

    def _piece(self, value: float) -> int:
        index = bisect_left(self._bounds, value)
        if index < len(self._bounds) and self._bounds[index] == value:
            return 2 * index + 1
        return 2 * index

    def stab(self, value: float) -> List[_IndexEntry]:
        """Every stored interval whose closed hull contains ``value``."""
        out: List[_IndexEntry] = []
        nodes = self._nodes
        index = self._piece(value) + self._size
        while index:
            bucket = nodes.get(index)
            if bucket:
                out.extend(bucket)
            index >>= 1
        return out


class AttributeIndex:
    """All primary bands of one (event-table, attribute) pair."""

    __slots__ = ("_points", "_live", "_tree", "_overflow", "_dead",
                 "rebuilds")

    def __init__(self) -> None:
        #: Point bands, bucketed by literal value.
        self._points: Dict[Any, List[_IndexEntry]] = {}
        #: Live interval entries by query name (the liveness oracle for
        #: tombstoned tree slots).
        self._live: Dict[str, _IndexEntry] = {}
        self._tree: Optional[_IntervalTree] = None
        #: Interval entries added since the last rebuild.
        self._overflow: List[_IndexEntry] = []
        #: Tree entries dropped since the last rebuild.
        self._dead = 0
        self.rebuilds = 0

    def __len__(self) -> int:
        return len(self._live) + sum(
            len(bucket) for bucket in self._points.values())

    def add(self, entry: _IndexEntry) -> None:
        band = entry.form.bands[0]
        if band.has_point:
            self._points.setdefault(band.point, []).append(entry)
            return
        self._live[entry.name] = entry
        self._overflow.append(entry)

    def remove(self, entry: _IndexEntry) -> None:
        band = entry.form.bands[0]
        if band.has_point:
            bucket = self._points.get(band.point, [])
            if entry in bucket:
                bucket.remove(entry)
                if not bucket:
                    del self._points[band.point]
            return
        self._live.pop(entry.name, None)
        if entry in self._overflow:
            self._overflow.remove(entry)
        else:
            self._dead += 1

    def _rebuild_threshold(self) -> int:
        return max(MIN_REBUILD_THRESHOLD, len(self._live) // 8)

    def _rebuild(self) -> None:
        entries = list(self._live.values())
        self._tree = _IntervalTree(entries) if entries else None
        self._overflow = []
        self._dead = 0
        self.rebuilds += 1

    def collect(self, value: Any, out: List[_IndexEntry]) -> None:
        """Append every candidate entry for one attribute value."""
        try:
            bucket = self._points.get(value)
        except TypeError:  # unhashable value cannot equal any literal
            bucket = None
        if bucket:
            out.extend(bucket)
        if not self._live:
            return
        # Interval bands exist only for numeric attributes; a
        # non-numeric value (ill-typed row) matches none of them and
        # must not reach the tree's bisect.
        if not isinstance(value, _NUMERIC):
            return
        # Lazy amortized rebuild: fold overflow adds and tombstoned
        # drops into a fresh tree once either outgrows an eighth of
        # the live population (bulk registrations pay one rebuild on
        # the first lookup, not one per threshold crossing).
        threshold = self._rebuild_threshold()
        if len(self._overflow) > threshold or self._dead > threshold:
            self._rebuild()
        if self._tree is not None:
            live = self._live
            for entry in self._tree.stab(value):
                if live.get(entry.name) is entry:
                    out.append(entry)
        out.extend(self._overflow)


class PredicateIndex:
    """The event→AQ index of one event table."""

    def __init__(self, table: str) -> None:
        self.table = table
        self._attributes: Dict[str, AttributeIndex] = {}
        #: Band-less forms, brute-forced per tuple (insertion order).
        self._scan_always: Dict[str, _IndexEntry] = {}
        self._entries: Dict[str, _IndexEntry] = {}
        self.lookups = 0
        self.candidates_examined = 0
        self.matches = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def add(self, name: str, seq: int, alias: str,
            form: BandForm) -> None:
        """File one registered query under its band form."""
        entry = _IndexEntry(name, seq, alias, form)
        self._entries[name] = entry
        if form.unsatisfiable:
            return  # matches nothing; filed nowhere
        primary = form.primary
        if primary is None:
            self._scan_always[name] = entry
            return
        attribute = self._attributes.get(primary.attribute)
        if attribute is None:
            attribute = self._attributes[primary.attribute] = \
                AttributeIndex()
        attribute.add(entry)

    def remove(self, name: str) -> None:
        """Unfile a dropped query (no-op for unknown names)."""
        entry = self._entries.pop(name, None)
        if entry is None:
            return
        if entry.form.unsatisfiable:
            return
        primary = entry.form.primary
        if primary is None:
            self._scan_always.pop(name, None)
            return
        attribute = self._attributes.get(primary.attribute)
        if attribute is not None:
            attribute.remove(entry)
            if not len(attribute):
                del self._attributes[primary.attribute]

    def match(self, row: DeviceTuple, residual_test: ResidualTest,
              admit: Optional[Callable[[str], bool]] = None,
              ) -> List[Tuple[int, str]]:
        """Exactly the queries whose predicate admits ``row``.

        Returns ``(seq, name)`` pairs (registration order is the seq
        order). ``admit`` pre-filters candidates by name before any
        predicate work — the executor passes the enabled check, so
        disabled queries cost nothing and see no evaluation, exactly
        like the scan-all path.
        """
        self.lookups += 1
        candidates: List[_IndexEntry] = []
        for name, attribute in self._attributes.items():
            if name in row:
                attribute.collect(row[name], candidates)
        candidates.extend(self._scan_always.values())
        out: List[Tuple[int, str]] = []
        for entry in candidates:
            self.candidates_examined += 1
            if admit is not None and not admit(entry.name):
                continue
            form = entry.form
            admitted = True
            for band in form.bands:
                if not band.admits(row[band.attribute]):
                    admitted = False
                    break
            if not admitted:
                continue
            if form.residual is not None \
                    and not residual_test(entry.alias, form.residual):
                continue
            self.matches += 1
            out.append((entry.seq, entry.name))
        return out

    def stats(self) -> Dict[str, int]:
        """Size and traffic counters for statistics() reporting."""
        indexed = sum(
            0 if entry.form.unsatisfiable or entry.form.primary is None
            else 1 for entry in self._entries.values())
        return {
            "queries": len(self._entries),
            "indexed_queries": indexed,
            "residual_only_queries": len(self._scan_always),
            "unsatisfiable_queries": sum(
                1 for entry in self._entries.values()
                if entry.form.unsatisfiable),
            "lookups": self.lookups,
            "candidates_examined": self.candidates_examined,
            "matches": self.matches,
            "rebuilds": sum(attribute.rebuilds for attribute
                            in self._attributes.values()),
        }
