"""The live catalog of registered continuous queries.

:class:`QueryCatalog` owns registered-query lifecycle — the name →
query map, the per-event-table reader lists, per-query counters and
the event-edge memory — so the executor, engine facade, sharded
coordinator and CLI all read one structure instead of ad-hoc dicts.

Edge-trigger memory lives here as (query, device) keys: per query, the
set of event devices whose predicate held at the last poll. Both
detection paths share it — the scan-all executor writes one entry per
scanned row, the indexed path writes matches and prunes the scanned
non-matches — so membership is identical however detection ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Set

from repro.query.bands import BandForm

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.plan.planner import ContinuousPlan


@dataclass
class RegisteredQuery:
    """One live continuous query and its per-query statistics."""

    plan: "ContinuousPlan"
    enabled: bool = True
    events_detected: int = 0
    requests_emitted: int = 0
    #: Events whose candidate set was empty (e.g. no camera covers the
    #: sensor's location) — nothing to schedule.
    uncovered_events: int = 0
    #: Priority tier stamped on every request this query emits (only
    #: meaningful with overload control on; larger = more important).
    priority: int = 1
    #: Relative service deadline for emitted requests, in virtual
    #: seconds from emission; ``None`` = no deadline.
    deadline_seconds: Optional[float] = None
    #: Requests refused by admission control or queue backpressure
    #: (stays zero with overload control off).
    requests_rejected: int = 0
    #: The normalized band form of the event predicate; compiled only
    #: when the engine's predicate index is on.
    band_form: Optional[BandForm] = None
    #: Registration sequence number, catalog-assigned and monotone —
    #: sorting by seq recovers registration order.
    seq: int = -1

    @property
    def name(self) -> str:
        return self.plan.query_name


class QueryCatalog:
    """Registered queries, reader lists per table, and edge memory."""

    def __init__(self) -> None:
        #: Query name -> query, in registration order.
        self.queries: Dict[str, RegisteredQuery] = {}
        #: Event table -> queries reading it, maintained at
        #: register/drop time so each poll walks an index instead of
        #: rebuilding the table set from every registered query. A
        #: table whose last reader is dropped loses its entry.
        self.by_table: Dict[str, List[RegisteredQuery]] = {}
        #: Query name -> event devices where the predicate held at the
        #: last poll (the edge-trigger memory).
        self._edge: Dict[str, Set[str]] = {}
        #: Event table -> queries with non-empty edge memory, so the
        #: indexed path can clear stale edges without walking every
        #: registered query.
        self._held: Dict[str, Dict[str, RegisteredQuery]] = {}
        self._next_seq = 0
        self.registered_total = 0
        self.dropped_total = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def register(self, query: RegisteredQuery) -> RegisteredQuery:
        """Admit one query (the caller has already validated it)."""
        query.seq = self._next_seq
        self._next_seq += 1
        self.queries[query.name] = query
        self.by_table.setdefault(query.plan.event_table, []).append(query)
        self.registered_total += 1
        return query

    def drop(self, name: str) -> RegisteredQuery:
        """Remove one query and every trace of its edge memory."""
        query = self.queries.pop(name)
        table = query.plan.event_table
        readers = self.by_table.get(table, [])
        if query in readers:
            readers.remove(query)
            if not readers:
                del self.by_table[table]
        self._edge.pop(name, None)
        held = self._held.get(table)
        if held is not None:
            held.pop(name, None)
            if not held:
                del self._held[table]
        self.dropped_total += 1
        return query

    def get(self, name: str) -> Optional[RegisteredQuery]:
        return self.queries.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self.queries

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterable[RegisteredQuery]:
        return iter(self.queries.values())

    def set_enabled(self, name: str, enabled: bool) -> RegisteredQuery:
        """Pause or resume a query; raises KeyError on unknown names."""
        query = self.queries[name]
        query.enabled = enabled
        return query

    def readers(self, table: str) -> List[RegisteredQuery]:
        """The queries reading one event table, registration order."""
        return self.by_table.get(table, [])

    # ------------------------------------------------------------------
    # Edge-trigger memory
    # ------------------------------------------------------------------
    def edge_state(self, name: str, device_id: str) -> bool:
        """Whether the query's predicate held for this device last poll."""
        held = self._edge.get(name)
        return held is not None and device_id in held

    def set_edge(self, query: RegisteredQuery, device_id: str,
                 holds: bool) -> None:
        """Record one (query, device) predicate outcome."""
        held = self._edge.get(query.name)
        if holds:
            if held is None:
                held = self._edge[query.name] = set()
            if not held:
                self._held.setdefault(
                    query.plan.event_table, {})[query.name] = query
            held.add(device_id)
        elif held is not None and device_id in held:
            held.remove(device_id)
            if not held:
                self._forget_held(query)

    def held_queries(self, table: str) -> List[RegisteredQuery]:
        """Queries on this table with non-empty edge memory."""
        return list(self._held.get(table, {}).values())

    def prune_edges(self, query: RegisteredQuery, seen: Set[str],
                    matched: Set[str]) -> None:
        """Forget held devices that were scanned but no longer match.

        Devices outside ``seen`` keep their edge state — an unscanned
        device carries no new information, matching the scan-all path
        which only updates state for rows the scan returned.
        """
        held = self._edge.get(query.name)
        if not held:
            return
        stale = [device_id for device_id in held
                 if device_id in seen and device_id not in matched]
        for device_id in stale:
            held.remove(device_id)
        if not held:
            self._forget_held(query)

    def _forget_held(self, query: RegisteredQuery) -> None:
        held = self._held.get(query.plan.event_table)
        if held is not None:
            held.pop(query.name, None)
            if not held:
                del self._held[query.plan.event_table]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> List[Dict[str, Any]]:
        """Per-query listing in registration order (CLI / coordinator)."""
        return [
            {
                "name": query.name,
                "state": "enabled" if query.enabled else "disabled",
                "event_table": query.plan.event_table,
                "action": query.plan.action.name,
                "priority": query.priority,
                "events_detected": query.events_detected,
                "requests_emitted": query.requests_emitted,
                "requests_rejected": query.requests_rejected,
                "uncovered_events": query.uncovered_events,
            }
            for query in sorted(self.queries.values(),
                                key=lambda query: query.seq)
        ]
