"""Registry of built-in scalar/boolean functions for queries.

The paper's example uses the "system-provided Boolean function
coverage(camera_id, location)". Function implementations need engine
context (the device registry, geometry), so the engine registers them
as closures; this module provides the registry plumbing plus the
context-free built-ins.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import BindingError, QueryError, RegistrationError
from repro.geometry import Point

#: Function implementation: positional evaluated-argument call.
FunctionImpl = Callable[..., Any]


class FunctionRegistry:
    """Named functions callable from query expressions."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionImpl] = {}
        self._arity: Dict[str, Optional[int]] = {}

    def register(self, name: str, implementation: FunctionImpl,
                 arity: Optional[int] = None) -> None:
        """Register a function; ``arity=None`` means variadic."""
        if not name.isidentifier():
            raise RegistrationError(
                f"function name {name!r} is not an identifier")
        if name in self._functions:
            raise RegistrationError(f"function {name!r} already registered")
        self._functions[name] = implementation
        self._arity[name] = arity

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> List[str]:
        """Sorted names of all registered functions."""
        return sorted(self._functions)

    def call(self, name: str, args: List[Any]) -> Any:
        """Invoke a registered function on evaluated arguments."""
        if name not in self._functions:
            raise BindingError(f"unknown function {name!r}")
        arity = self._arity[name]
        if arity is not None and len(args) != arity:
            raise QueryError(
                f"function {name!r} takes {arity} argument(s), "
                f"got {len(args)}"
            )
        return self._functions[name](*args)


def distance(a: Any, b: Any) -> float:
    """Euclidean distance between two locations, in metres."""
    return Point(a.x, a.y).distance_to(Point(b.x, b.y))


def install_standard_functions(registry: FunctionRegistry) -> None:
    """Register the context-free standard functions."""
    registry.register("distance", distance, arity=2)
    registry.register("abs", lambda value: abs(value), arity=1)
    registry.register("min", lambda *values: min(values))
    registry.register("max", lambda *values: max(values))
