"""Runtime-time span tracing over the engine tracer.

A span measures one named stretch of *runtime* time — a dispatch batch,
a probe exchange, an action execution — read from whatever runtime
backend the engine runs on (``runtime.now``): virtual seconds on the
discrete-event backend, paced seconds on the realtime backend. Each
span carries labels, a deterministic id, and a parent link to the
innermost span open when it started. Spans
ride on :class:`~repro.core.tracing.EngineTracer`: closing a span emits
one ordinary ``"span"`` trace record, so every existing trace consumer
(filters, tails, the golden harness) sees spans with no new plumbing.

Because the clock is virtual and ids come from a per-engine counter,
span trees are bit-reproducible across runs — which is what lets the
golden-trace harness diff them.

The whole layer sits behind :class:`Observability`, the single object
the engine threads through its components. Disabled (the default), every
entry point returns immediately — no records, no metrics, no RNG, no
virtual-time effects — so the off path is byte-identical to an
uninstrumented engine.

Parenting has two modes. A span opened plainly is *nested*: its parent
is the innermost open nested span and it joins that stack — right for
sequential structure (engine run, dispatch batch, scheduling). A span
opened with an explicit ``parent=`` is *detached*: it records the given
parent but never joins the stack — right for concurrent work (probes,
per-device executions) where dynamic nesting would misparent
interleaved siblings under one another.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.errors import AortaError
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.tracing import EngineTracer
    from repro.runtime import Runtime

#: Trace-record field names a span emits; label keys must not collide.
RESERVED_SPAN_FIELDS = frozenset({"span", "parent", "name", "start"})


class _NullSpan:
    """The shared no-op context manager of a disabled Observability."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class SpanContext:
    """One open span; closes (and records) on context-manager exit."""

    __slots__ = ("_obs", "span_id", "name", "labels", "started_at",
                 "parent_id", "_nested")

    def __init__(self, obs: "Observability", span_id: int, name: str,
                 labels: Dict[str, str], parent_id: int,
                 nested: bool) -> None:
        self._obs = obs
        self.span_id = span_id
        self.name = name
        self.labels = labels
        self.parent_id = parent_id
        self._nested = nested
        self.started_at = obs.env.now

    def __enter__(self) -> "SpanContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._obs._close_span(self)


class Observability:
    """Metrics + spans behind one enable switch.

    The engine creates one instance and hands it to the dispatcher,
    prober, transport, lock manager, health tracker and continuous
    executor. Components call :meth:`span`, :meth:`inc`,
    :meth:`observe` and :meth:`set_gauge` unconditionally; when
    ``enabled`` is False each call is a guard test and a return.
    """

    def __init__(
        self,
        env: Optional["Runtime"] = None,
        tracer: Optional["EngineTracer"] = None,
        registry: Optional[MetricsRegistry] = None,
        enabled: bool = False,
    ) -> None:
        if enabled and (env is None or tracer is None):
            raise AortaError(
                "enabled observability needs an environment and a tracer")
        self.env = env
        self.tracer = tracer
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.enabled = enabled
        #: Innermost-last stack of open spans (dynamic nesting).
        self._open: List[SpanContext] = []
        self._next_span_id = 1

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, *,
             parent: Optional["SpanContext"] = None,
             detached: bool = False, **labels: Any):
        """Open a span; use as ``with obs.span("dispatch.batch", ...):``.

        ``parent=`` pins the parent explicitly and keeps the span off
        the nesting stack; ``detached=True`` takes the parent from the
        stack but also stays off it. Both exist for spans whose
        lifetime interleaves with concurrent processes (see module
        docstring); plain calls nest.
        """
        if not self.enabled:
            return _NULL_SPAN
        rendered = {str(k): str(v) for k, v in labels.items()}
        collisions = RESERVED_SPAN_FIELDS.intersection(rendered)
        if collisions:
            raise AortaError(
                f"span label(s) {sorted(collisions)} collide with "
                f"reserved span fields")
        span_id = self._next_span_id
        self._next_span_id += 1
        if isinstance(parent, SpanContext):
            parent_id = parent.span_id
            nested = False
        else:
            parent_id = self._open[-1].span_id if self._open else 0
            nested = not detached
        context = SpanContext(self, span_id, name, rendered, parent_id,
                              nested)
        if nested:
            self._open.append(context)
        return context

    def _close_span(self, context: SpanContext) -> None:
        if context._nested:
            # Remove by identity: interleaved sim processes may close
            # spans out of stack order.
            for index in range(len(self._open) - 1, -1, -1):
                if self._open[index] is context:
                    del self._open[index]
                    break
        now = self.env.now
        self.tracer.record(
            now, "span", span=context.span_id, parent=context.parent_id,
            name=context.name, start=context.started_at, **context.labels)
        self.registry.histogram(
            "span.seconds", name=context.name).observe(
                now - context.started_at)

    # ------------------------------------------------------------------
    # Metrics pass-through (guarded)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, /,
            **labels: Any) -> None:
        if self.enabled:
            self.registry.counter(name, **labels).inc(amount)

    def observe(self, name: str, value: float, /,
                **labels: Any) -> None:
        if self.enabled:
            self.registry.histogram(name, **labels).observe(value)

    def set_gauge(self, name: str, value: float, /,
                  **labels: Any) -> None:
        if self.enabled:
            self.registry.gauge(name, **labels).set(value)


#: Shared disabled instance: the default for components constructed
#: without an engine (bare DeviceLockManager, Transport, ...).
NULL_OBS = Observability()
