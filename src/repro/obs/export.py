"""Exporters: stable JSON and human-readable text for metrics and spans.

JSON output is fully stable — sorted keys, sorted series — so two dumps
of the same run diff clean, and the golden-trace harness can compare
them byte for byte. The text renderings are for terminals: the metrics
report groups series by type, the span view renders the parent links as
an indented virtual-time tree.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from repro.obs.metrics import MetricsRegistry


def _snapshot_of(source: Union[MetricsRegistry, Dict[str, Any]],
                 ) -> Dict[str, Any]:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def metrics_to_json(source: Union[MetricsRegistry, Dict[str, Any]]) -> str:
    """The snapshot as deterministic, diff-friendly JSON."""
    return json.dumps(_snapshot_of(source), indent=1, sort_keys=True) + "\n"


def metrics_to_text(source: Union[MetricsRegistry, Dict[str, Any]]) -> str:
    """The snapshot as an aligned human-readable report."""
    snapshot = _snapshot_of(source)
    lines: List[str] = []
    for section in ("counters", "gauges"):
        entries = snapshot.get(section, {})
        if not entries:
            continue
        lines.append(f"{section}:")
        width = max(len(key) for key in entries)
        for key, value in entries.items():
            rendered = (f"{value:g}" if isinstance(value, float)
                        else str(value))
            lines.append(f"  {key.ljust(width)}  {rendered}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for key, data in histograms.items():
            mean = data["sum"] / data["count"] if data["count"] else 0.0
            lines.append(
                f"  {key}  count={data['count']} sum={data['sum']:g} "
                f"min={data['min']:g} max={data['max']:g} mean={mean:g}"
                if data["count"] else f"  {key}  count=0")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Spans (from trace records)
# ----------------------------------------------------------------------
def span_records(tracer) -> List[Dict[str, Any]]:
    """Every closed span as a plain dict, in close order.

    Each entry carries ``id``, ``parent`` (0 = root), ``name``,
    ``start``, ``end``, ``duration`` and the span's labels.
    """
    spans = []
    for record in tracer.of_kind("span"):
        fields = dict(record.fields)
        span = {
            "id": fields.pop("span"),
            "parent": fields.pop("parent"),
            "name": fields.pop("name"),
            "start": fields.pop("start"),
            "end": record.at,
        }
        span["duration"] = span["end"] - span["start"]
        span["labels"] = fields
        spans.append(span)
    return spans


def span_tree_text(tracer) -> str:
    """The span forest as an indented, start-time-ordered text tree."""
    spans = span_records(tracer)
    children: Dict[int, List[Dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span["parent"], []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s["start"], s["id"]))

    lines: List[str] = []

    def render(span: Dict[str, Any], depth: int) -> None:
        labels = "".join(f" {k}={v}"
                         for k, v in sorted(span["labels"].items()))
        lines.append(
            f"{'  ' * depth}[{span['start']:10.3f}s +{span['duration']:.3f}s]"
            f" {span['name']}{labels}")
        for child in children.get(span["id"], ()):
            render(child, depth + 1)

    for root in children.get(0, ()):
        render(root, 0)
    return "\n".join(lines) + ("\n" if lines else "")


def spans_to_json(tracer) -> str:
    """The span list as deterministic JSON (close order preserved)."""
    return json.dumps(span_records(tracer), indent=1, sort_keys=True) + "\n"
