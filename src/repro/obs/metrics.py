"""Deterministic metrics primitives: counters, gauges, histograms.

Metrics are keyed by name plus a label tuple (``("device", "cam1")``
pairs, sorted), so one registry holds e.g. a per-device-type family of
round-trip histograms. Everything is built for determinism: snapshots
render in stable sorted order, histogram buckets are fixed at creation,
and merge is pointwise arithmetic — associative and commutative for
counters and histograms — so sharded registries can be combined in any
order and still agree byte-for-byte.

Values that measure the host clock (not virtual time) must carry
``wallclock`` in the metric name: the golden-trace harness excludes
them from reproducibility comparisons by that convention.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import AortaError

#: Default histogram bucket upper bounds, in (virtual) seconds. An
#: implicit +inf bucket catches everything above the last bound.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0)

_NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_.]*$")

#: A metric key: (name, ((label, value), ...)) with labels sorted.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def metric_key(name: str, labels: Dict[str, Any]) -> MetricKey:
    """The canonical registry key of one (name, labels) series."""
    if not _NAME_PATTERN.match(name):
        raise AortaError(
            f"invalid metric name {name!r}: use lowercase dotted names")
    return name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_key(key: MetricKey) -> str:
    """``name{a=1,b=2}`` rendering used by snapshots and exporters."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{label}={value}" for label, value in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise AortaError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, open breakers, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """A fixed-bucket distribution of observed values.

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot
    is the implicit +inf bucket. Bounds are fixed at creation so two
    histograms of the same series always merge exactly.
    """

    __slots__ = ("buckets", "counts", "total", "count", "min", "max")

    def __init__(self, buckets: Optional[Iterable[float]] = None) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise AortaError(
                "histogram buckets must be non-empty and strictly "
                "increasing")
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (same buckets required)."""
        if other.buckets != self.buckets:
            raise AortaError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.count += other.count
        for bound_name in ("min", "max"):
            mine = getattr(self, bound_name)
            theirs = getattr(other, bound_name)
            if theirs is None:
                continue
            if mine is None:
                setattr(self, bound_name, theirs)
            else:
                pick = min if bound_name == "min" else max
                setattr(self, bound_name, pick(mine, theirs))


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """All metric series of one engine (or one shard of a fleet).

    Series are created lazily on first touch and typed forever: asking
    for ``dispatch.batches`` as a counter and later as a gauge is an
    error, not a silent overwrite.
    """

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, Metric] = {}

    def _series(self, kind: type, name: str, labels: Dict[str, Any],
                **kwargs: Any) -> Metric:
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind(**kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, kind):
            raise AortaError(
                f"metric {render_key(key)!r} is a "
                f"{type(metric).__name__}, not a {kind.__name__}")
        return metric

    # ``name``/``buckets`` are positional-only so a label may be called
    # ``name`` (e.g. ``span.seconds{name=...}``) without colliding.
    def counter(self, name: str, /, **labels: Any) -> Counter:
        return self._series(Counter, name, labels)

    def gauge(self, name: str, /, **labels: Any) -> Gauge:
        return self._series(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Optional[Iterable[float]] = None,
                  /, **labels: Any) -> Histogram:
        return self._series(Histogram, name, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def clear(self) -> None:
        self._metrics.clear()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A deterministic, JSON-able copy of every series.

        Stable under repetition: two snapshots with no activity in
        between are equal, and key order is sorted — the golden-trace
        harness and the exporters rely on both.
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            rendered = render_key(key)
            if isinstance(metric, Counter):
                counters[rendered] = metric.value
            elif isinstance(metric, Gauge):
                gauges[rendered] = metric.value
            else:
                histograms[rendered] = {
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "sum": metric.total,
                    "count": metric.count,
                    "min": metric.min,
                    "max": metric.max,
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def relabeled(self, **labels: Any) -> "MetricsRegistry":
        """A deep copy of this registry with extra labels on every series.

        Built for sharded fleets: each shard's registry stays unlabeled
        (so a 1-shard fleet is byte-identical to a plain engine), and
        the coordinator stamps ``shard=<i>`` onto copies at render time
        before merging them into one fleet view. A series that already
        carries one of the new labels is an error — silently
        overwriting would alias two different series.
        """
        copy = MetricsRegistry()
        for (name, existing), metric in self._metrics.items():
            for label in labels:
                if any(label == key for key, _ in existing):
                    raise AortaError(
                        f"metric {render_key((name, existing))!r} already "
                        f"carries label {label!r}; cannot relabel")
            combined = dict(existing)
            combined.update(labels)
            if isinstance(metric, Counter):
                mine = copy._series(Counter, name, combined)
                mine.value = metric.value
            elif isinstance(metric, Gauge):
                mine = copy._series(Gauge, name, combined)
                mine.value = metric.value
            else:
                mine = copy._series(Histogram, name, combined,
                                    buckets=metric.buckets)
                mine.merge(metric)
        return copy

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters and histogram contents add; gauges combine by
        pointwise maximum (the only order-independent choice for a
        level) — so merging shard registries is associative and
        commutative, and ``a.merge(b)`` equals ``b.merge(a)`` snapshot
        for snapshot.
        """
        for key, metric in other._metrics.items():
            if isinstance(metric, Counter):
                mine = self._series(Counter, key[0], dict(key[1]))
                mine.value += metric.value
            elif isinstance(metric, Gauge):
                mine = self._series(Gauge, key[0], dict(key[1]))
                mine.value = max(mine.value, metric.value)
            else:
                mine = self._series(Histogram, key[0], dict(key[1]),
                                    buckets=metric.buckets)
                mine.merge(metric)
