"""Normalized engine dumps: the reproducibility artifact of one run.

The simulation clock is virtual and every RNG is seeded, so a scenario
run is a pure function of the code: the engine trace, the statistics
dict, the serviced-request set and (with observability on) the metric
snapshot are all bit-reproducible. :func:`dump_engine` turns a
finished engine into a normalized JSON-able dump and
:func:`diff_dumps` renders the differences between two of them — the
primitives behind the golden-trace harness (``tests/obs/golden.py``),
the sharding benchmark's identity gates, and the parallel fleet's
``dump`` worker command (a worker process dumps its own shard
in-process and ships the JSON-able result back over its pipe).

Normalization: auto-assigned request ids (``req<N>`` from the global
counter) depend on how many requests earlier scenarios created in the
same process — and, in a parallel fleet, on which worker process the
shard ran in — so dumps renumber them ``R1, R2, ...`` in order of
first appearance. Metrics whose name contains ``wallclock`` are
dropped: they measure host time, not virtual time, and are not
reproducible.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List

#: Auto-assigned request ids (actions/request.py global counter).
_AUTO_REQUEST_ID = re.compile(r"^req\d+$")

#: Metric-name fragment marking host-clock measurements to exclude.
_WALLCLOCK = "wallclock"


# ----------------------------------------------------------------------
# Dumping
# ----------------------------------------------------------------------
def _json_safe(value: Any) -> Any:
    """A deterministic JSON-able rendering of one trace field value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


class _RequestIdNormalizer:
    """Renumbers auto-assigned request ids in first-appearance order."""

    def __init__(self) -> None:
        self._mapping: Dict[str, str] = {}

    def __call__(self, value: Any) -> Any:
        if isinstance(value, str) and _AUTO_REQUEST_ID.match(value):
            if value not in self._mapping:
                self._mapping[value] = f"R{len(self._mapping) + 1}"
            return self._mapping[value]
        return value


def dump_engine(engine: Any) -> Dict[str, Any]:
    """A normalized, JSON-able dump of one finished scenario run.

    Contains the full trace log, the engine statistics dict, the sorted
    serviced-request id list and, when the engine has observability
    enabled, the deterministic metric snapshot (wall-clock metrics
    excluded).
    """
    normalize = _RequestIdNormalizer()
    trace: List[Dict[str, Any]] = []
    for record in engine.tracer:
        trace.append({
            "at": record.at,
            "kind": record.kind,
            "fields": {
                key: normalize(_json_safe(value))
                for key, value in sorted(record.fields.items())
            },
        })
    serviced = sorted(
        normalize(request.request_id)
        for request in engine.completed_requests
        if request.state.value == "serviced"
    )
    dump: Dict[str, Any] = {
        "trace": trace,
        "statistics": _json_safe(engine.statistics()),
        "serviced": serviced,
    }
    obs = getattr(engine, "obs", None)
    if obs is not None and getattr(obs, "enabled", False):
        snapshot = obs.registry.snapshot()
        dump["metrics"] = {
            section: {
                key: value for key, value in sorted(entries.items())
                if _WALLCLOCK not in key
            }
            for section, entries in snapshot.items()
        }
    return dump


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
def diff_dumps(expected: Any, actual: Any, *, limit: int = 25) -> List[str]:
    """Human-readable differences between two dumps, path by path.

    Empty when the dumps are identical. Collection size mismatches are
    reported once per container; leaf mismatches as
    ``path: golden <x> != actual <y>``. At most ``limit`` lines, with a
    trailing ``... and N more`` marker when truncated.
    """
    differences: List[str] = []

    def walk(path: str, left: Any, right: Any) -> None:
        if isinstance(left, dict) and isinstance(right, dict):
            for key in sorted(set(left) | set(right)):
                sub = f"{path}.{key}" if path else str(key)
                if key not in left:
                    differences.append(
                        f"{sub}: only in actual ({right[key]!r})")
                elif key not in right:
                    differences.append(
                        f"{sub}: only in golden ({left[key]!r})")
                else:
                    walk(sub, left[key], right[key])
            return
        if isinstance(left, list) and isinstance(right, list):
            if len(left) != len(right):
                differences.append(
                    f"{path}: golden has {len(left)} entries, actual "
                    f"has {len(right)}")
            for index in range(min(len(left), len(right))):
                walk(f"{path}[{index}]", left[index], right[index])
            return
        if type(left) is not type(right) or left != right:
            differences.append(
                f"{path}: golden {left!r} != actual {right!r}")

    walk("", expected, actual)
    if len(differences) > limit:
        overflow = len(differences) - limit
        differences = differences[:limit]
        differences.append(f"... and {overflow} more difference(s)")
    return differences
