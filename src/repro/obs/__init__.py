"""Observability: deterministic metrics, spans and exporters.

The subsystem behind ``EngineConfig.observability``. One
:class:`Observability` instance per engine carries a
:class:`MetricsRegistry` and a virtual-time span recorder built on the
engine tracer; exporters render both as stable JSON or terminal text.
Everything is deterministic given the seeds — see
``tests/obs/golden.py`` for the golden-trace harness that exploits it.
"""

from repro.obs.dump import diff_dumps, dump_engine
from repro.obs.export import (
    metrics_to_json,
    metrics_to_text,
    span_records,
    span_tree_text,
    spans_to_json,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
    render_key,
)
from repro.obs.spans import NULL_OBS, Observability, SpanContext

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "Observability",
    "SpanContext",
    "diff_dumps",
    "dump_engine",
    "metric_key",
    "metrics_to_json",
    "metrics_to_text",
    "render_key",
    "span_records",
    "span_tree_text",
    "spans_to_json",
]
