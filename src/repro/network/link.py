"""Per-medium link models: latency, jitter, and packet loss."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import CommunicationError


@dataclass(frozen=True)
class LinkModel:
    """Timing and reliability parameters of one network medium."""

    #: Mean one-way latency in seconds.
    latency_seconds: float
    #: Standard deviation of the latency (Gaussian, floored at zero).
    jitter_seconds: float = 0.0
    #: Probability one exchange is lost entirely.
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise CommunicationError("latency must be non-negative")
        if self.jitter_seconds < 0:
            raise CommunicationError("jitter must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise CommunicationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )

    def sample_latency(self, rng: random.Random) -> float:
        """One latency draw, never below zero."""
        if self.jitter_seconds == 0.0:
            return self.latency_seconds
        return max(rng.gauss(self.latency_seconds, self.jitter_seconds), 0.0)

    def drops(self, rng: random.Random) -> bool:
        """Whether this exchange is lost."""
        return self.loss_rate > 0 and rng.random() < self.loss_rate


#: Default media for the three built-in device types: a wired LAN for
#: cameras, the MICA2 radio for motes, the carrier network for phones.
DEFAULT_LINKS = {
    "camera": LinkModel(latency_seconds=0.005, jitter_seconds=0.001),
    "sensor": LinkModel(latency_seconds=0.020, jitter_seconds=0.005,
                        loss_rate=0.02),
    "phone": LinkModel(latency_seconds=0.300, jitter_seconds=0.050,
                       loss_rate=0.01),
}
