"""Geometric multi-hop radio topology for sensor networks.

The paper's cost model notes that "the depth of a sensor in a
multi-hop network affects the cost of connecting the sensor"
(Section 2.3). This module derives those depths from geometry instead
of hand-assigning them: motes within ``radio_range`` of each other (or
of the base station) form links, and a mote's hop depth is its
shortest-path distance from the base station.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import networkx as nx

from repro.errors import CommunicationError
from repro.geometry import Point
from repro.devices.sensor import SensorMote

#: Node name of the base station in the connectivity graph.
BASE_STATION = "__base__"


@dataclass
class RadioTopology:
    """A base station plus the geometric connectivity it induces."""

    base_station: Point
    radio_range: float

    def __post_init__(self) -> None:
        if self.radio_range <= 0:
            raise CommunicationError("radio_range must be positive")

    def connectivity_graph(
        self, positions: Mapping[str, Point]
    ) -> "nx.Graph":
        """The unit-disk graph over motes and the base station."""
        graph = nx.Graph()
        graph.add_node(BASE_STATION, location=self.base_station)
        for node, location in positions.items():
            if node == BASE_STATION:
                raise CommunicationError(
                    f"mote id {BASE_STATION!r} is reserved")
            graph.add_node(node, location=location)
        nodes = list(graph.nodes(data="location"))
        for i, (a, loc_a) in enumerate(nodes):
            for b, loc_b in nodes[i + 1:]:
                if loc_a.distance_to(loc_b) <= self.radio_range:
                    graph.add_edge(a, b)
        return graph

    def hop_depths(
        self, positions: Mapping[str, Point]
    ) -> Dict[str, Optional[int]]:
        """Shortest-path hop count to the base per mote.

        Motes with no multi-hop route to the base station map to
        ``None`` — they are unreachable and should be excluded from the
        network (or flagged for redeployment).
        """
        graph = self.connectivity_graph(positions)
        lengths = nx.single_source_shortest_path_length(graph, BASE_STATION)
        return {node: lengths.get(node)
                for node in positions}

    def reachable(self, positions: Mapping[str, Point]) -> List[str]:
        """Mote ids with a route to the base station."""
        depths = self.hop_depths(positions)
        return [node for node, depth in depths.items() if depth is not None]

    def assign_hop_depths(self, motes: List[SensorMote]) -> List[SensorMote]:
        """Set every reachable mote's ``hop_depth`` from the topology.

        Returns the unreachable motes (left untouched) so the caller
        can take them offline or reposition them.
        """
        positions = {mote.device_id: mote.location for mote in motes}
        depths = self.hop_depths(positions)
        unreachable = []
        for mote in motes:
            depth = depths[mote.device_id]
            if depth is None:
                unreachable.append(mote)
            else:
                mote.hop_depth = max(depth, 1)
        return unreachable

    def network_diameter(self, positions: Mapping[str, Point]) -> int:
        """Deepest reachable mote's hop count (0 when none reach)."""
        depths = [d for d in self.hop_depths(positions).values()
                  if d is not None]
        return max(depths, default=0)
