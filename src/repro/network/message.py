"""Wire messages exchanged between the engine and devices."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.errors import CommunicationError

#: Message kinds understood by every device endpoint.
MESSAGE_KINDS = ("ping", "read_attribute", "status", "execute")


@dataclass(frozen=True)
class Message:
    """A request from the engine to a device."""

    kind: str
    device_id: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_KINDS:
            raise CommunicationError(
                f"unknown message kind {self.kind!r}; "
                f"expected one of {MESSAGE_KINDS}"
            )


@dataclass(frozen=True)
class Response:
    """A device's answer to a :class:`Message`."""

    device_id: str
    ok: bool
    value: Any = None
    error: str = ""
    round_trip_seconds: float = 0.0
