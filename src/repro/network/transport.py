"""Message transport between the Aorta host and devices.

The transport simulates the physical exchange: a connection handshake,
request/response round trips with medium-specific latency, packet loss
manifesting as silence (the caller burns its timeout), and devices that
left the network never answering at all. These are exactly the failure
behaviours the probing mechanism of Section 4 must detect and contain.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional

from repro.errors import (
    CommunicationError,
    ConnectionTimeoutError,
    DeviceError,
)
from repro.devices.base import Device
from repro.network.link import DEFAULT_LINKS, LinkModel
from repro.network.message import Message, Response
from repro.obs.spans import NULL_OBS
from repro.runtime import Runtime

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.comm.pool import ConnectionPool


class Connection:
    """An open control channel to one device."""

    def __init__(self, transport: "Transport", device: Device,
                 link: LinkModel) -> None:
        self._transport = transport
        self.device = device
        self.link = link
        self.opened_at = transport.env.now
        self.closed = False
        self.exchanges = 0

    def request(
        self, message: Message, timeout: float
    ) -> Generator[Any, Any, Response]:
        """One request/response round trip.

        A lost packet is silence: the caller waits out ``timeout`` and
        gets :class:`ConnectionTimeoutError`, just like probing a dead
        mote. Device-side errors come back as ``ok=False`` responses.
        """
        if self.closed:
            raise CommunicationError("request on a closed connection")
        if message.device_id != self.device.device_id:
            raise CommunicationError(
                f"message addressed to {message.device_id!r} sent over a "
                f"connection to {self.device.device_id!r}"
            )
        env = self._transport.env
        rng = self._transport.rng
        obs = self._transport.obs
        started = env.now
        self.exchanges += 1
        obs.inc("comm.requests", kind=message.kind)

        if not self.device.reachable or self.link.drops(rng):
            yield env.timeout(timeout)
            obs.inc("comm.request_timeouts", kind=message.kind)
            raise ConnectionTimeoutError(
                f"device {self.device.device_id!r} did not answer within "
                f"{timeout} s"
            )

        # Uplink latency.
        yield env.timeout(self.link.sample_latency(rng))
        # Device-side handling (may consume device time for `execute`).
        try:
            value = yield from self._transport._handle(self.device, message)
            ok, error = True, ""
        except (DeviceError, CommunicationError) as exc:
            value, ok, error = None, False, str(exc)
        # Downlink latency.
        yield env.timeout(self.link.sample_latency(rng))
        if not self.device.reachable:
            obs.inc("comm.request_timeouts", kind=message.kind)
            raise ConnectionTimeoutError(
                f"device {self.device.device_id!r} went away mid-exchange"
            )
        obs.observe("comm.rtt_seconds", env.now - started,
                    kind=message.kind)
        return Response(
            device_id=self.device.device_id,
            ok=ok,
            value=value,
            error=error,
            round_trip_seconds=env.now - started,
        )

    def close(self) -> None:
        """Release the channel. Idempotent."""
        self.closed = True


class Transport:
    """Factory of connections over per-type link models."""

    def __init__(
        self,
        env: Runtime,
        *,
        links: Optional[Dict[str, LinkModel]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.env = env
        self.links = dict(DEFAULT_LINKS if links is None else links)
        self.rng = rng or random.Random(0)
        #: Metrics sink (the engine replaces this with its own).
        self.obs = NULL_OBS
        #: Optional keep-alive pool (installed by the engine when the
        #: comm fast path is on); ``None`` means every :meth:`open` is
        #: a fresh handshake and every release a close.
        self.pool: Optional["ConnectionPool"] = None
        #: Lifetime handshake-attempt counter (always on, so benchmarks
        #: can measure connect traffic without observability enabled).
        self.connects_attempted = 0

    def link_for(self, device: Device) -> LinkModel:
        """The link model of the device's medium."""
        try:
            return self.links[device.device_type]
        except KeyError:
            raise CommunicationError(
                f"no link model registered for device type "
                f"{device.device_type!r}"
            ) from None

    def connect(
        self, device: Device, timeout: float
    ) -> Generator[Any, Any, Connection]:
        """Open a connection; an unreachable device costs the full timeout."""
        if timeout <= 0:
            raise CommunicationError(f"timeout must be positive, got {timeout}")
        link = self.link_for(device)
        started = self.env.now
        self.connects_attempted += 1
        self.obs.inc("comm.connects", device_type=device.device_type)
        if not device.reachable or link.drops(self.rng):
            yield self.env.timeout(timeout)
            self.obs.inc("comm.connect_timeouts",
                         device_type=device.device_type)
            raise ConnectionTimeoutError(
                f"connect to {device.device_id!r} timed out after {timeout} s"
            )
        handshake = 2 * link.sample_latency(self.rng)
        if handshake >= timeout:
            yield self.env.timeout(timeout)
            self.obs.inc("comm.connect_timeouts",
                         device_type=device.device_type)
            raise ConnectionTimeoutError(
                f"connect to {device.device_id!r} timed out after {timeout} s"
            )
        yield self.env.timeout(handshake)
        self.obs.observe("comm.connect_seconds", self.env.now - started,
                         device_type=device.device_type)
        return Connection(self, device, link)

    # ------------------------------------------------------------------
    # Checkout surface: the comm fast path routes through these so a
    # keep-alive pool, when installed, transparently absorbs the
    # handshake cost. Without a pool they are exactly connect()/close().
    # ------------------------------------------------------------------
    def open(
        self, device: Device, timeout: float
    ) -> Generator[Any, Any, Connection]:
        """Check out a control channel: pooled keep-alive or fresh."""
        if self.pool is not None:
            return (yield from self.pool.acquire(device, timeout))
        return (yield from self.connect(device, timeout))

    def release(self, connection: Connection) -> None:
        """Return a healthy channel obtained via :meth:`open`."""
        if self.pool is not None:
            self.pool.release(connection)
        else:
            connection.close()

    def discard(self, connection: Connection) -> None:
        """Dispose of a channel that failed mid-exchange."""
        if self.pool is not None:
            self.pool.discard(connection)
        else:
            connection.close()

    def invalidate(self, device_id: str, reason: str = "") -> None:
        """Drop any pooled channel to the device (no-op without a pool)."""
        if self.pool is not None:
            self.pool.invalidate(device_id, reason=reason)

    def _handle(
        self, device: Device, message: Message
    ) -> Generator[Any, Any, Any]:
        """Device-side message dispatch."""
        if message.kind == "ping":
            return {"ok": True, "device_type": device.device_type}
        if message.kind == "read_attribute":
            return device.read_sensory(message.payload["name"])
        if message.kind == "status":
            return device.physical_status()
        if message.kind == "execute":
            operation = message.payload["operation"]
            params = message.payload.get("params", {})
            outcome = yield from device.execute(operation, **params)
            return outcome
        raise CommunicationError(f"unhandled message kind {message.kind!r}")
        yield  # pragma: no cover - makes this a generator on all paths
