"""Simulated heterogeneous device networking.

Each device type reaches the Aorta host over a different medium — LAN
HTTP for cameras, a lossy multi-hop radio for motes, a carrier network
for phones. This package models those media as :class:`LinkModel`
parameters and provides a message-based :class:`Transport` with the
timeout semantics the probing mechanism (Section 4) relies on.
"""

from repro.network.link import DEFAULT_LINKS, LinkModel
from repro.network.message import Message, Response
from repro.network.transport import Connection, Transport

__all__ = [
    "Connection",
    "DEFAULT_LINKS",
    "LinkModel",
    "Message",
    "Response",
    "Transport",
]
