"""Events and the pending-event queue of the kernel."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.base import BaseRuntime

#: Default priority for ordinary events. Lower sorts earlier at equal time.
PRIORITY_NORMAL = 1
#: Priority used for process-resume bookkeeping, ahead of normal events.
PRIORITY_URGENT = 0


class Event:
    """A one-shot occurrence that callbacks can wait on.

    An event starts *pending*, is *triggered* exactly once with a value
    (or failure), and then has its callbacks run by the kernel at the
    scheduled virtual time.
    """

    def __init__(self, env: "BaseRuntime") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None  # None => not yet triggered
        self._scheduled = False
        self._processed = False  # set by the kernel after callbacks run

    @property
    def triggered(self) -> bool:
        """Whether the event has been given a value (success or failure)."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value inspected before trigger")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception of the event."""
        if self._ok is None:
            raise SimulationError("event value inspected before trigger")
        return self._value

    def defuse(self) -> "Event":
        """Mark a potential failure of this event as handled-later.

        The kernel normally re-raises a failed event that nobody waits
        on (errors must not pass silently). A caller that spawns work
        and will only attach to it later — e.g. a scan operator awaiting
        parallel row acquisitions in order — defuses the event first so
        the failure is delivered at the ``yield`` instead.
        """
        self._defused = True  # type: ignore[attr-defined]
        return self

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully and schedule its callbacks."""
        self._trigger(True, value, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters will see the exception."""
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._trigger(False, exception, delay)
        return self

    def _trigger(self, ok: bool, value: Any, delay: float) -> None:
        if self._ok is not None:
            raise SimulationError("event triggered twice")
        self._ok = ok
        self._value = value
        self.env.schedule(self, delay=delay)
        self._scheduled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.env.now:.6f}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` seconds in the future."""

    def __init__(self, env: "BaseRuntime", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)
        self._scheduled = True


@dataclass(order=True)
class ScheduledItem:
    """Heap entry: (time, priority, seq) gives deterministic ordering."""

    time: float
    priority: int
    seq: int
    event: Event = field(compare=False)


class EventQueue:
    """A stable priority queue of scheduled events."""

    def __init__(self) -> None:
        self._heap: list[ScheduledItem] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, priority: int, event: Event) -> None:
        heapq.heappush(self._heap, ScheduledItem(time, priority, self._seq, event))
        self._seq += 1

    def pop(self) -> ScheduledItem:
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Timestamp of the next event without removing it."""
        if not self._heap:
            raise SimulationError("peek on an empty event queue")
        return self._heap[0].time

    def peek_items(self, limit: int) -> list[ScheduledItem]:
        """Up to ``limit`` next items in firing order, without removal.

        Diagnostic helper for the run-budget error path; O(k log n).
        """
        return heapq.nsmallest(max(limit, 0), self._heap)
