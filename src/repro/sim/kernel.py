"""The virtual-time backend: the classic discrete-event environment.

All machinery — event queue, process scheduling, quiescence, run
budgets — lives in :class:`~repro.sim.base.BaseRuntime`; this backend
merely declines to pace, so the clock jumps instantly from event to
event and experiments measuring seconds of device time execute in
milliseconds of wall time. It is the default backend and the reference
the realtime backend is equivalence-tested against.
"""

from __future__ import annotations

from repro.sim.base import BaseRuntime


class Environment(BaseRuntime):
    """Coordinates virtual time and runs processes until quiescence.

    One :class:`Environment` underlies one experiment: all simulated
    devices, network links and engine loops share it, so their relative
    timing is globally consistent.
    """

    backend_name = "virtual"

    def _pace(self, timestamp: float) -> None:
        """Virtual time is free: advancing costs no wall time."""
