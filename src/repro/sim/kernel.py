"""The simulation environment: clock + event queue + process scheduler."""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import PRIORITY_NORMAL, Event, EventQueue, Timeout
from repro.sim.process import Process, ProcessGenerator


class Environment:
    """Coordinates virtual time and runs processes until quiescence.

    One :class:`Environment` underlies one experiment: all simulated
    devices, network links and engine loops share it, so their relative
    timing is globally consistent.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._clock = VirtualClock(start)
        self._queue = EventQueue()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._clock.now

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start ``generator`` as a concurrent process."""
        return Process(self, generator)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Enqueue ``event`` to have its callbacks run after ``delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._queue.push(self.now + delay, priority, event)

    def step(self) -> None:
        """Process the single next event in the queue."""
        item = self._queue.pop()
        self._clock.advance_to(item.time)
        event = item.event
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "_defused", False):
            # A failed event that nobody waited on would otherwise vanish
            # silently; surface it (Zen: errors should never pass silently).
            raise event._value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock reaches ``until``.

        Returns the virtual time at which execution stopped.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run until {until} is in the past (now={self.now})")
        while len(self._queue):
            if until is not None and self._queue.peek_time() > until:
                self._clock.advance_to(until)
                return self.now
            self.step()
        if until is not None:
            self._clock.advance_to(until)
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)
