"""The shared engine core behind every runtime backend.

:class:`BaseRuntime` owns everything the two backends have in common —
the event queue, event/timeout/process construction, scheduling, the
step loop and quiescence detection. What *differs* between backends is
only how the passage of time is realised, expressed through one hook:
:meth:`BaseRuntime._pace`, called with the timestamp the clock is about
to advance to. The virtual backend (:class:`~repro.sim.kernel.
Environment`) jumps instantly; the wall-clock backend (:class:`~repro.
sim.realtime.RealtimeRuntime`) sleeps until the scaled wall deadline
first.

Because *all* process/event semantics live here, the two backends are
behaviourally identical by construction: at ``time_scale=0`` the
realtime backend produces byte-identical traces to the virtual one
(asserted forever by ``tests/runtime/test_equivalence.py``).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import PRIORITY_NORMAL, Event, EventQueue, Timeout
from repro.sim.process import Process, ProcessGenerator


class BaseRuntime:
    """Clock + event queue + process scheduler, backend-agnostic.

    One runtime underlies one experiment: all devices, network links
    and engine loops share it, so their relative timing is globally
    consistent. Subclasses choose how time passes by overriding
    :meth:`_pace`.
    """

    #: Name the factory and diagnostics know this backend by.
    backend_name = "base"

    def __init__(self, start: float = 0.0) -> None:
        self._clock = VirtualClock(start)
        self._queue = EventQueue()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current runtime time in seconds (virtual for both backends:
        the realtime backend paces the same timeline against the wall
        clock rather than keeping a separate one)."""
        return self._clock.now

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` runtime seconds from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> Timeout:
        """Alias of :meth:`timeout` reading naturally in process code:
        ``yield runtime.sleep(2.0)``."""
        return self.timeout(delay)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start ``generator`` as a concurrent process."""
        return Process(self, generator)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Enqueue ``event`` to have its callbacks run after ``delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._queue.push(self.now + delay, priority, event)

    def step(self) -> None:
        """Process the single next event in the queue."""
        item = self._queue.pop()
        self._pace(item.time)
        self._clock.advance_to(item.time)
        self._events_processed += 1
        event = item.event
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "_defused", False):
            # A failed event that nobody waited on would otherwise vanish
            # silently; surface it (Zen: errors should never pass silently).
            raise event._value

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the queue drains or the clock reaches ``until``.

        ``max_events`` bounds how many events may be processed in this
        call; exceeding it raises :class:`SimulationError` carrying the
        current time and a summary of the pending queue — the diagnostic
        for a runaway process that would otherwise loop forever.

        Returns the runtime time at which execution stopped.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run until {until} is in the past (now={self.now})")
        if max_events is not None and max_events < 0:
            raise SimulationError(f"max_events must be >= 0, got {max_events}")
        processed = 0
        while len(self._queue):
            if until is not None and self._queue.peek_time() > until:
                self._pace(until)
                self._clock.advance_to(until)
                return self.now
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"event budget exhausted: processed {processed} events "
                    f"by t={self.now:.6f} with {len(self._queue)} still "
                    f"pending ({self._pending_summary()}); a process is "
                    f"likely scheduling work faster than it completes"
                )
            self.step()
            processed += 1
        if until is not None:
            self._pace(until)
            self._clock.advance_to(until)
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total events processed since construction.

        A monotone lifetime counter: callers that need the cost of one
        ``run`` call (e.g. the lockstep fleet budget) difference it
        around the call instead of threading a count through ``run``'s
        return value.
        """
        return self._events_processed

    def _pending_summary(self, limit: int = 3) -> str:
        """The next few pending events, rendered for error messages."""
        head: List[Tuple[float, int, Event]] = [
            (item.time, item.priority, item.event)
            for item in self._queue.peek_items(limit)
        ]
        if not head:
            return "queue empty"
        rendered = ", ".join(
            f"t={time:.6f} p={priority} {type(event).__name__}"
            for time, priority, event in head
        )
        remainder = len(self._queue) - len(head)
        if remainder > 0:
            rendered += f", ... {remainder} more"
        return f"next: {rendered}"

    # ------------------------------------------------------------------
    # Backend hook
    # ------------------------------------------------------------------
    def _pace(self, timestamp: float) -> None:
        """Realise the passage of time up to ``timestamp``.

        Called once before every clock advance (each processed event,
        and the final advance of a bounded ``run``). The virtual
        backend does nothing — time jumps; the realtime backend sleeps
        until the scaled wall-clock deadline.
        """
