"""Discrete-event simulation core and its runtime backends.

A small, dependency-free engine core in the style of SimPy:
generator-based processes scheduled over an event queue
(:class:`~repro.sim.base.BaseRuntime`), with two interchangeable
backends deciding how time passes:

* :class:`Environment` — virtual time (the default): the clock jumps
  from event to event, so experiments measuring seconds of device time
  execute in milliseconds of wall time.
* :class:`RealtimeRuntime` — wall-clock time: the same processes are
  paced against ``time.monotonic`` under a configurable ``time_scale``
  (``0`` ⇒ fire immediately, byte-identical to virtual).

Components should program against the :class:`~repro.runtime.Runtime`
protocol rather than either concrete backend.

Public surface::

    env = Environment()
    def proc(env):
        yield env.timeout(1.5)
    env.process(proc(env))
    env.run()
"""

from repro.sim.base import BaseRuntime
from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue, ScheduledItem, Timeout
from repro.sim.kernel import Environment
from repro.sim.process import Interrupt, Process
from repro.sim.realtime import RealtimeRuntime
from repro.sim.resources import FifoResource, SimLock
from repro.sim.rng import RandomStreams

__all__ = [
    "BaseRuntime",
    "Environment",
    "Event",
    "EventQueue",
    "FifoResource",
    "Interrupt",
    "Process",
    "RandomStreams",
    "RealtimeRuntime",
    "ScheduledItem",
    "SimLock",
    "Timeout",
    "VirtualClock",
]
