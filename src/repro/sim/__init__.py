"""Discrete-event simulation kernel.

A small, dependency-free kernel in the style of SimPy: generator-based
processes scheduled on a virtual clock. Aorta's simulated devices and
networks run on this kernel so that experiments measuring seconds of
device time execute in milliseconds of wall time.

Public surface::

    env = Environment()
    def proc(env):
        yield env.timeout(1.5)
    env.process(proc(env))
    env.run()
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue, ScheduledItem, Timeout
from repro.sim.kernel import Environment
from repro.sim.process import Interrupt, Process
from repro.sim.resources import FifoResource, SimLock
from repro.sim.rng import RandomStreams

__all__ = [
    "Environment",
    "Event",
    "EventQueue",
    "FifoResource",
    "Interrupt",
    "Process",
    "RandomStreams",
    "ScheduledItem",
    "SimLock",
    "Timeout",
    "VirtualClock",
]
