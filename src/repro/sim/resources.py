"""Synchronization primitives for simulation processes.

These are *simulated-time* primitives: acquiring a contended lock costs
virtual time, not wall time. The Aorta device lock manager
(:mod:`repro.sync.locks`) builds on :class:`SimLock`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Environment


class SimLock:
    """A FIFO mutual-exclusion lock for simulation processes.

    ``acquire()`` returns an event that triggers when the caller holds
    the lock; ``release()`` hands the lock to the next waiter in FIFO
    order. Ownership is tracked by an opaque token so misuse (releasing
    a lock you do not hold) is detected.
    """

    def __init__(self, env: "Environment", name: str = "lock") -> None:
        self.env = env
        self.name = name
        self._holder: Optional[object] = None
        self._waiters: Deque[tuple[Event, object]] = deque()

    @property
    def locked(self) -> bool:
        """Whether some process currently holds the lock."""
        return self._holder is not None

    @property
    def holder(self) -> Optional[object]:
        """The token currently holding the lock, or None."""
        return self._holder

    @property
    def queue_length(self) -> int:
        """Number of processes waiting to acquire."""
        return len(self._waiters)

    def acquire(self, token: object) -> Event:
        """Request the lock on behalf of ``token``.

        The returned event succeeds (with the token as value) once the
        lock is held. Re-entrant acquisition is rejected: a device must
        never run two actions at once (Section 4 of the paper).
        """
        if token is None:
            raise SimulationError("lock token must not be None")
        if self._holder is token:
            raise SimulationError(f"{self.name}: re-entrant acquire by {token!r}")
        grant = Event(self.env)
        if self._holder is None and not self._waiters:
            self._holder = token
            grant.succeed(token)
        else:
            self._waiters.append((grant, token))
        return grant

    def release(self, token: object) -> None:
        """Release the lock and wake the next FIFO waiter, if any."""
        if self._holder is not token:
            raise SimulationError(
                f"{self.name}: release by {token!r} which is not the holder"
            )
        self._holder = None
        while self._waiters:
            grant, next_token = self._waiters.popleft()
            self._holder = next_token
            grant.succeed(next_token)
            return

    def force_release(self) -> Optional[object]:
        """Evict the current holder and wake the next FIFO waiter.

        Lease recovery for a holder that died without releasing (a
        crashed device's executor, Section 4's unreliable endpoints):
        waiters proceed in order instead of deadlocking. Returns the
        evicted token, or None if the lock was free.
        """
        evicted = self._holder
        self._holder = None
        if self._waiters:
            grant, next_token = self._waiters.popleft()
            self._holder = next_token
            grant.succeed(next_token)
        return evicted

    def cancel(self, token: object) -> bool:
        """Withdraw a queued acquire for ``token``. Returns True if found."""
        for i, (grant, waiting_token) in enumerate(self._waiters):
            if waiting_token is token:
                del self._waiters[i]
                return True
        return False


class FifoResource:
    """A counted resource with FIFO admission (capacity >= 1).

    Generalizes :class:`SimLock` to capacities above one; used for
    modelling bounded device request queues and radio channels.
    """

    def __init__(self, env: "Environment", capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of waiting acquirers."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Request one slot; the event succeeds once the slot is granted."""
        grant = Event(self.env)
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            grant.succeed()
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Return one slot and admit the next FIFO waiter, if any."""
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release with no slot in use")
        if self._waiters:
            grant = self._waiters.popleft()
            grant.succeed()
        else:
            self._in_use -= 1
