"""The wall-clock backend: the same processes, paced in real time.

:class:`RealtimeRuntime` runs the exact generator-based processes the
virtual backend runs — same events, same ordering, same traces — but
before each clock advance it sleeps until the corresponding wall-clock
deadline. ``time_scale`` maps runtime seconds to wall seconds:

* ``1.0`` — one runtime second takes one real second (live serving,
  soak tests, demos against real devices);
* ``0.5`` — double speed; ``2.0`` — half speed;
* ``0`` — never sleep: timers fire immediately in timestamp order,
  giving a fast deterministic smoke path that is byte-identical to the
  virtual backend (the equivalence tests pin this).

The wall anchor is taken lazily at the first pace, so engine/device
construction time never counts against the schedule. When callbacks
run longer than the wall budget the runtime is *behind*; it does not
try to catch up by skipping events — it simply stops sleeping until
the schedule is ahead again. ``strict=True`` turns falling behind by
more than ``max_drift`` seconds into a :class:`SimulationError`
instead, for tests that must fail loudly when the host is too slow.

The clock and sleep functions are injectable so unit tests exercise
pacing deterministically without real sleeping.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.base import BaseRuntime


class RealtimeRuntime(BaseRuntime):
    """Drives the discrete-event core against the wall clock."""

    backend_name = "realtime"

    def __init__(
        self,
        start: float = 0.0,
        *,
        time_scale: float = 1.0,
        strict: bool = False,
        max_drift: float = 1.0,
        wall_clock: Callable[[], float] = _time.monotonic,
        wall_sleep: Callable[[float], None] = _time.sleep,
    ) -> None:
        if time_scale < 0:
            raise SimulationError(
                f"time_scale must be >= 0, got {time_scale}")
        if max_drift < 0:
            raise SimulationError(
                f"max_drift must be >= 0, got {max_drift}")
        super().__init__(start)
        self.time_scale = time_scale
        self.strict = strict
        self.max_drift = max_drift
        self._wall_clock = wall_clock
        self._wall_sleep = wall_sleep
        #: (wall, runtime) correspondence fixed at the first pace.
        self._wall_anchor: Optional[float] = None
        self._runtime_anchor: float = start
        #: Largest observed lateness in wall seconds (0 while ahead).
        self.max_observed_drift = 0.0

    def resync(self) -> None:
        """Drop the wall anchor; the next pace re-anchors at 'now'.

        Call after a long pause between ``run()`` calls (e.g. a REPL
        sitting idle) so the backlog is not replayed at full speed.
        """
        self._wall_anchor = None
        self._runtime_anchor = self.now

    def _pace(self, timestamp: float) -> None:
        """Sleep until ``timestamp``'s wall deadline under the scale."""
        if self.time_scale == 0:
            return
        wall_now = self._wall_clock()
        if self._wall_anchor is None:
            self._wall_anchor = wall_now
            self._runtime_anchor = self.now
        deadline = self._wall_anchor + (
            (timestamp - self._runtime_anchor) * self.time_scale)
        remaining = deadline - wall_now
        if remaining > 0:
            self._wall_sleep(remaining)
            return
        behind = -remaining
        if behind > self.max_observed_drift:
            self.max_observed_drift = behind
        if self.strict and behind > self.max_drift:
            raise SimulationError(
                f"realtime runtime fell {behind:.3f}s behind the wall "
                f"clock at t={timestamp:.6f} (max_drift={self.max_drift}); "
                f"the host cannot keep up at time_scale={self.time_scale}"
            )
