"""Generator-based simulation processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_URGENT, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.base import BaseRuntime

ProcessGenerator = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    Aorta uses interrupts to model a camera head being redirected while a
    previous ``photo()`` action is still moving it (the unsynchronized
    failure mode of Section 6.2).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Wraps a generator so it can run as a concurrent simulation process.

    The process itself is an :class:`Event` that triggers when the
    generator finishes — so processes can wait on each other by yielding
    another process.
    """

    def __init__(self, env: "BaseRuntime", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                "Process requires a generator; did you call the function?"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off the process at the current time, ahead of normal events.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap._ok = True
        bootstrap._value = None
        env.schedule(bootstrap, priority=PRIORITY_URGENT)

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._waiting_on is not None:
            # Detach from the event we were waiting for; it may still
            # trigger later but must no longer resume us.
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        wakeup = Event(self.env)
        wakeup.callbacks.append(self._resume)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._defused = True  # failure is delivered, not raised by kernel
        self.env.schedule(wakeup, priority=PRIORITY_URGENT)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # The process chose not to handle the interrupt: treat the
            # process as failed with that interrupt.
            self.fail(Interrupt("unhandled interrupt"))
            return
        except Exception as exc:
            # The process body raised: fail the process event so waiters
            # see the exception; with no waiter the kernel re-raises it.
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Event objects"
            )
        if target._processed:
            # Already done: schedule an immediate resume preserving order.
            immediate = Event(self.env)
            immediate.callbacks.append(self._resume)
            immediate._ok = target._ok
            immediate._value = target._value
            if not target._ok:
                target._defused = True
                immediate._defused = True
            self.env.schedule(immediate, priority=PRIORITY_URGENT)
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target
            # Waiting on an event defuses its failure for the kernel; the
            # exception will be re-raised inside this process instead.
            target._defused = True  # type: ignore[attr-defined]
