"""Virtual clock for the discrete-event kernel."""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """Monotonically non-decreasing virtual time.

    The clock only moves when the kernel advances it to the timestamp of
    the next scheduled event; simulated work therefore takes zero wall
    time. Time is a float in *seconds* to match the paper's cost metric.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises :class:`SimulationError` on an attempt to move backwards,
        which would indicate a corrupted event queue.
        """
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = timestamp
