"""Named, reproducible random streams.

Every stochastic component of the simulation (sensor noise, packet loss,
workload generation, the SA scheduler ...) draws from its own named
stream derived deterministically from a single master seed. Experiments
are therefore exactly repeatable, and changing one component's draws
does not perturb any other component.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, stream_name: str) -> int:
    """Deterministically derive a child seed from (master, name).

    Uses SHA-256 rather than ``hash()`` so results are stable across
    interpreter runs and platforms.
    """
    digest = hashlib.sha256(f"{master_seed}:{stream_name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


#: Component streams that predate seed derivation and consumed the raw
#: master seed directly. Their draws are pinned so every golden trace
#: and benchmark gate recorded before unification stays byte-identical;
#: new components must NOT be added here — they get derived substreams.
LEGACY_ROOT_STREAMS = frozenset({"comm:transport"})


def component_seed(master_seed: int, component: str) -> int:
    """Seed for a named top-level engine component's RNG stream.

    The single routing point for every component RNG the engine
    constructs. Streams listed in :data:`LEGACY_ROOT_STREAMS` keep the
    raw master seed (a compatible derivation — changing them would
    invalidate all recorded goldens for no behavioural gain); all other
    components draw from independent :func:`derive_seed` substreams.
    """
    if component in LEGACY_ROOT_STREAMS:
        return master_seed
    return derive_seed(master_seed, component)


class RandomStreams:
    """A factory of independent :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's."""
        return RandomStreams(derive_seed(self.master_seed, f"fork:{name}"))
