"""The system built-in action library.

Four built-ins cover the paper's examples: ``photo()`` on cameras
(Figure 1), ``sendphoto()`` on phones (the Section 2.2 CREATE ACTION
example, provided here as a built-in so the quickstart works out of the
box), and ``beep()``/``blink()`` on sensor motes (the atomic-operation
examples of Section 3.1).

Each built-in bundles implementation + action profile + quantity
resolver. The profiles are written against the default cost tables of
:mod:`repro.profiles.defaults`, so estimated and simulated costs agree
— mirroring the paper's finding that its cost model was "reasonably
accurate" against the real devices.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Mapping, Tuple

from repro.errors import QueryError
from repro.devices.base import Device
from repro.devices.camera import HeadPosition, PanTiltZoomCamera
from repro.cost.model import CostModel
from repro.actions.action import ActionDefinition, ActionParameter
from repro.actions.registry import ActionRegistry
from repro.profiles.action_profile import ActionProfile, OperationRef, par, seq

#: Default attachment size for sendphoto() MMS transfers, in kilobytes
#: (a medium AXIS 2130 JPEG).
DEFAULT_PHOTO_KB = 120.0


# ----------------------------------------------------------------------
# photo(target, directory [, size]) on cameras
# ----------------------------------------------------------------------

def _photo_impl(device: Device, args: Mapping[str, Any]
                ) -> Generator[Any, Any, Any]:
    if not isinstance(device, PanTiltZoomCamera):
        raise QueryError("photo() requires a PTZ camera device")
    size = args.get("size", "medium")
    return (yield from device.take_photo(args["target"], args["directory"],
                                         size))


def photo_profile() -> ActionProfile:
    """photo(): connect, move all head axes in parallel, capture, store."""
    return ActionProfile(
        action_name="photo",
        device_type="camera",
        composition=seq(
            OperationRef("connect"),
            par(OperationRef("pan", quantity="pan_degrees"),
                OperationRef("tilt", quantity="tilt_degrees"),
                OperationRef("zoom", quantity="zoom_units")),
            OperationRef("capture_medium"),
            OperationRef("store"),
        ),
        status_fields=["pan", "tilt", "zoom"],
        description="aim the head at a location and take a medium photo",
    )


def photo_resolver(
    device: Device, status: Mapping[str, float], args: Mapping[str, Any]
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Head-movement quantities from the device's (projected) status.

    This encodes the paper's key cost observation: "the starting head
    position of the camera affects the execution time (cost) of the
    action ... the execution of a photo() action moves the head of the
    camera to a new position, which in turn affects the cost of the
    subsequent photo() action."
    """
    if not isinstance(device, PanTiltZoomCamera):
        raise QueryError("photo() cost estimation requires a PTZ camera")
    current = HeadPosition(pan=status["pan"], tilt=status["tilt"],
                           zoom=status["zoom"])
    aimed = device.aim_for(args["target"])
    quantities = {
        "pan_degrees": abs(aimed.pan - current.pan),
        "tilt_degrees": abs(aimed.tilt - current.tilt),
        "zoom_units": abs(aimed.zoom - current.zoom),
    }
    post_status = {"pan": aimed.pan, "tilt": aimed.tilt, "zoom": aimed.zoom}
    return quantities, post_status


class PhotoBlockResolver:
    """Vectorized ``photo()`` quantity resolution (cost-model block API).

    ``prepare`` resolves every target's aimed head pose with the same
    scalar trig the per-call resolver uses (numpy's ``arctan2``/
    ``hypot`` can differ from :mod:`math` in the last ulp, which would
    break byte-identical schedules); ``resolve`` is then pure
    element-wise float64 arithmetic against one status, bit-equal to
    :func:`photo_resolver` per element.
    """

    def prepare(self, device: Device,
                args_list: list) -> Dict[str, Any]:
        import numpy
        if not isinstance(device, PanTiltZoomCamera):
            raise QueryError("photo() cost estimation requires a PTZ camera")
        pans = []
        tilts = []
        zooms = []
        for args in args_list:
            aimed = device.aim_for(args["target"])
            pans.append(aimed.pan)
            tilts.append(aimed.tilt)
            zooms.append(aimed.zoom)
        return {
            "pan": numpy.array(pans, dtype=numpy.float64),
            "tilt": numpy.array(tilts, dtype=numpy.float64),
            "zoom": numpy.array(zooms, dtype=numpy.float64),
        }

    def resolve(self, device: Device, prepared: Dict[str, Any],
                status: Mapping[str, float],
                indexes: Any = None) -> Dict[str, Any]:
        import numpy
        pan, tilt, zoom = prepared["pan"], prepared["tilt"], prepared["zoom"]
        if indexes is not None:
            pan, tilt, zoom = pan[indexes], tilt[indexes], zoom[indexes]
        return {
            "pan_degrees": numpy.abs(pan - status["pan"]),
            "tilt_degrees": numpy.abs(tilt - status["tilt"]),
            "zoom_units": numpy.abs(zoom - status["zoom"]),
        }

    def post_status(self, device: Device, prepared: Dict[str, Any],
                    index: int) -> Dict[str, float]:
        return {
            "pan": float(prepared["pan"][index]),
            "tilt": float(prepared["tilt"][index]),
            "zoom": float(prepared["zoom"][index]),
        }


# ----------------------------------------------------------------------
# sendphoto(phone_no, photo_pathname [, size_kb]) on phones
# ----------------------------------------------------------------------

def _sendphoto_impl(device: Device, args: Mapping[str, Any]
                    ) -> Generator[Any, Any, Any]:
    size_kb = args.get("size_kb", DEFAULT_PHOTO_KB)
    yield from device.execute("connect")
    outcome = yield from device.execute(
        "receive_mms",
        sender="aorta",
        body=f"photo for {args['phone_no']}",
        attachment=args["photo_pathname"],
        size_kb=size_kb,
    )
    return outcome.detail


def sendphoto_profile() -> ActionProfile:
    """sendphoto(): page the phone, then push the MMS payload."""
    return ActionProfile(
        action_name="sendphoto",
        device_type="phone",
        composition=seq(
            OperationRef("connect"),
            OperationRef("receive_mms", quantity="mms_kilobytes"),
        ),
        status_fields=["in_coverage"],
        description="send a photo to a phone with MMS support",
    )


def sendphoto_resolver(
    device: Device, status: Mapping[str, float], args: Mapping[str, Any]
) -> Tuple[Dict[str, float], Dict[str, float]]:
    quantities = {"mms_kilobytes": float(args.get("size_kb",
                                                  DEFAULT_PHOTO_KB))}
    return quantities, dict(status)


# ----------------------------------------------------------------------
# beep() / blink() on sensor motes
# ----------------------------------------------------------------------

def _mote_op_impl(operation: str):
    def impl(device: Device, args: Mapping[str, Any]
             ) -> Generator[Any, Any, Any]:
        yield from device.execute("connect")
        outcome = yield from device.execute(operation)
        return outcome.detail
    return impl


def _mote_profile(action_name: str, operation: str) -> ActionProfile:
    return ActionProfile(
        action_name=action_name,
        device_type="sensor",
        composition=seq(
            OperationRef("connect", quantity="hops"),
            OperationRef(operation),
        ),
        status_fields=["hop_depth", "battery"],
        description=f"{operation} once on a mote",
    )


def _mote_resolver(
    device: Device, status: Mapping[str, float], args: Mapping[str, Any]
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Connecting costs time per hop (Section 2.3's sensor example)."""
    return {"hops": float(status.get("hop_depth", 1.0))}, dict(status)


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------

def sendphoto_definition() -> ActionDefinition:
    """The reference *user-defined* action of Section 2.2.

    ``sendphoto()`` is the paper's CREATE ACTION example, so it is not
    part of the built-in library; this ready-made definition (and the
    exported ``sendphoto_profile``/``sendphoto_resolver``/impl pieces)
    let applications register it either directly or through the full
    ``install_action_code`` + ``CREATE ACTION`` flow.
    """
    return ActionDefinition(
        name="sendphoto",
        device_type="phone",
        parameters=(ActionParameter("phone_no", "String",
                                    device_attribute="number"),
                    ActionParameter("photo_pathname", "String")),
        implementation=_sendphoto_impl,
        profile=sendphoto_profile(),
        resolver=sendphoto_resolver,
        library_path="lib/users/sendphoto.dll",
        profile_path="profiles/users/sendphoto.xml",
    )


def builtin_definitions() -> list[ActionDefinition]:
    """Fresh definitions of all system built-in actions."""
    return [
        ActionDefinition(
            name="photo",
            device_type="camera",
            parameters=(ActionParameter("camera_ip", "String",
                                        device_attribute="ip"),
                        ActionParameter("target", "Location"),
                        ActionParameter("directory", "String")),
            implementation=_photo_impl,
            profile=photo_profile(),
            resolver=photo_resolver,
            builtin=True,
            block_resolver=PhotoBlockResolver(),
        ),
        ActionDefinition(
            name="beep",
            device_type="sensor",
            parameters=(ActionParameter("sensor_id", "String",
                                        device_attribute="id"),),
            implementation=_mote_op_impl("beep"),
            profile=_mote_profile("beep", "beep"),
            resolver=_mote_resolver,
            builtin=True,
        ),
        ActionDefinition(
            name="blink",
            device_type="sensor",
            parameters=(ActionParameter("sensor_id", "String",
                                        device_attribute="id"),),
            implementation=_mote_op_impl("blink"),
            profile=_mote_profile("blink", "blink"),
            resolver=_mote_resolver,
            builtin=True,
        ),
    ]


def install_builtin_actions(
    registry: ActionRegistry, cost_model: CostModel
) -> None:
    """Register the built-in library and its profiles.

    The cost model must already know the relevant device-type cost
    tables (see :func:`repro.profiles.defaults.register_builtin_types`).
    """
    for definition in builtin_definitions():
        registry.register(definition)
        cost_model.register_action(definition.profile, definition.resolver,
                                   block_resolver=definition.block_resolver)
