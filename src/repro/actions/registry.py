"""Action registry and the user-defined action library.

``CREATE ACTION`` names an executable by a library path (the prototype
loaded DLLs). Here the :class:`ActionLibrary` maps those paths to
Python callables the application pre-registered — the same two-step
flow (compile/register the code, then ``CREATE ACTION`` it) without
dynamic linking.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import BindingError, RegistrationError
from repro.actions.action import ActionDefinition, ActionImplementation


class ActionLibrary:
    """Maps library paths (``lib/users/sendphoto.dll``) to callables."""

    def __init__(self) -> None:
        self._implementations: Dict[str, ActionImplementation] = {}

    def install(self, path: str, implementation: ActionImplementation) -> None:
        """Register an executable under a library path."""
        if not path:
            raise RegistrationError("library path must be non-empty")
        if path in self._implementations:
            raise RegistrationError(
                f"library path {path!r} already has an implementation"
            )
        self._implementations[path] = implementation

    def resolve(self, path: str) -> ActionImplementation:
        """Look up the executable for a path, raising if absent."""
        try:
            return self._implementations[path]
        except KeyError:
            raise BindingError(
                f"no implementation installed for library path {path!r}; "
                f"install the code before CREATE ACTION references it"
            ) from None

    def __contains__(self, path: str) -> bool:
        return path in self._implementations


class ActionRegistry:
    """All actions known to the engine, built-in and user-defined."""

    def __init__(self) -> None:
        self._actions: Dict[str, ActionDefinition] = {}
        self.library = ActionLibrary()

    def register(self, definition: ActionDefinition) -> None:
        """Register an action definition (the ``CREATE ACTION`` effect)."""
        if definition.name in self._actions:
            raise RegistrationError(
                f"action {definition.name!r} is already registered"
            )
        self._actions[definition.name] = definition

    def get(self, name: str) -> ActionDefinition:
        """Look up an action, raising :class:`BindingError` if unknown."""
        try:
            return self._actions[name]
        except KeyError:
            raise BindingError(f"unknown action {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._actions

    def __len__(self) -> int:
        return len(self._actions)

    def names(self) -> List[str]:
        """Sorted names of all registered actions."""
        return sorted(self._actions)

    def builtins(self) -> List[str]:
        """Names of the system built-in actions."""
        return sorted(name for name, d in self._actions.items() if d.builtin)
