"""Action requests: instantiated calls awaiting scheduling.

"We define an action request as the request from a query for the
execution of an action with instantiated input parameter values for the
action." (Section 5)
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

_request_counter = itertools.count(1)


class RequestState(enum.Enum):
    """Lifecycle of an action request through the scheduler."""

    PENDING = "pending"        # emitted by a query, not yet scheduled
    ASSIGNED = "assigned"      # bound to a device, queued or running
    SERVICED = "serviced"      # action completed successfully
    FAILED = "failed"          # action failed on the device
    # Overload-control outcomes (only reachable with the overload
    # plane configured; see repro.overload).
    SHED = "shed"              # accepted, then dropped by load-shedding
    REJECTED = "rejected"      # refused at admission / queue backpressure


@dataclass
class ActionRequest:
    """One request for one action execution with bound arguments."""

    action_name: str
    arguments: Dict[str, Any]
    #: The continuous query that emitted this request (operator sharing
    #: tags tuples with query IDs, Section 2.3).
    query_id: str = ""
    #: Virtual time at which the request appeared in the action operator.
    created_at: float = 0.0
    #: Candidate devices eligible to service this request.
    candidates: Tuple[str, ...] = ()
    request_id: str = field(
        default_factory=lambda: f"req{next(_request_counter)}")
    state: RequestState = RequestState.PENDING
    #: Device that serviced (or failed) the request.
    assigned_device: Optional[str] = None
    #: Virtual time the action finished, for completion-time accounting.
    completed_at: Optional[float] = None
    #: The action's return value (e.g. a Photo) or failure reason.
    result: Any = None
    failure_reason: str = ""
    #: Execution attempts across every device the request ran on.
    attempts: int = 0
    #: Times this request entered a dispatch batch (failover re-entry
    #: increments it; the retry policy caps it at max_dispatches).
    dispatches: int = 0
    #: Devices that failed this request, removed from its candidates by
    #: failover re-dispatch.
    failed_devices: Tuple[str, ...] = ()
    #: Priority tier for overload control (larger = more important).
    #: Load-shedding drops the lowest tiers first; tiers at or above
    #: the policy's protected tier are never pressure-shed.
    priority: int = 1
    #: Absolute virtual-time service deadline; ``None`` = no deadline.
    #: With overload control on, a request whose deadline has passed is
    #: shed instead of serviced late.
    deadline: Optional[float] = None

    def mark_assigned(self, device_id: str) -> None:
        """Record the scheduler's device choice."""
        self.assigned_device = device_id
        self.state = RequestState.ASSIGNED

    def mark_requeued(self, failed_device: Optional[str]) -> None:
        """Failover: back to PENDING with the failed device blacklisted.

        The request re-enters its shared operator's queue; the next
        batch reschedules it over the surviving candidates.
        """
        if failed_device is not None:
            self.failed_devices = self.failed_devices + (failed_device,)
            self.candidates = tuple(
                device_id for device_id in self.candidates
                if device_id != failed_device)
        self.assigned_device = None
        self.state = RequestState.PENDING

    def mark_serviced(self, completed_at: float, result: Any = None) -> None:
        """Record successful completion."""
        self.state = RequestState.SERVICED
        self.completed_at = completed_at
        self.result = result

    def mark_failed(self, completed_at: float, reason: str) -> None:
        """Record failure (timeout, interference, device fault...)."""
        self.state = RequestState.FAILED
        self.completed_at = completed_at
        self.failure_reason = reason

    def mark_shed(self, completed_at: float, reason: str) -> None:
        """Record that overload control dropped this accepted request."""
        self.state = RequestState.SHED
        self.completed_at = completed_at
        self.failure_reason = reason

    def mark_rejected(self, at: float, reason: str) -> None:
        """Record refusal at admission (the request never entered)."""
        self.state = RequestState.REJECTED
        self.completed_at = at
        self.failure_reason = reason

    def deadline_expired(self, now: float) -> bool:
        """Whether the service deadline (if any) has already passed."""
        return self.deadline is not None and now > self.deadline

    @property
    def completion_seconds(self) -> Optional[float]:
        """Seconds from appearance to completion, if completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at
