"""Action definitions: signature, implementation, profile, resolver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Mapping, Optional, Tuple

from repro.errors import QueryError, RegistrationError
from repro.devices.base import Device
from repro.cost.model import BlockResolver, QuantityResolver
from repro.profiles.action_profile import ActionProfile

#: Device-side behaviour of an action: a generator consuming virtual
#: time on the device and returning the action's result.
ActionImplementation = Callable[
    [Device, Mapping[str, Any]], Generator[Any, Any, Any]
]

#: Python types accepted for each declared parameter type.
_PARAMETER_TYPES: Dict[str, tuple[type, ...]] = {
    "String": (str,),
    "Int": (int,),
    "Float": (float, int),
    "Bool": (bool,),
    "Location": (object,),  # a geometry Point; checked structurally
}


@dataclass(frozen=True)
class ActionParameter:
    """One declared parameter of an action, e.g. ``String phone_no``.

    A parameter with a non-empty ``device_attribute`` is
    *device-identifying*: in a query, its argument names the device
    table (``photo(c.ip, ...)``), and at execution time the engine
    binds it from the chosen device's static attribute of that name —
    the scheduler, not the query, picks the concrete device.
    """

    name: str
    type_name: str
    device_attribute: str = ""

    def __post_init__(self) -> None:
        if self.type_name not in _PARAMETER_TYPES:
            raise RegistrationError(
                f"parameter {self.name!r} has unknown type "
                f"{self.type_name!r}; expected one of "
                f"{sorted(_PARAMETER_TYPES)}"
            )
        if not self.name.isidentifier():
            raise RegistrationError(
                f"parameter name {self.name!r} is not an identifier"
            )

    def accepts(self, value: Any) -> bool:
        """Whether ``value`` is a legal argument for this parameter."""
        if self.type_name == "Location":
            return hasattr(value, "x") and hasattr(value, "y")
        if self.type_name == "Bool":
            return isinstance(value, bool)
        expected = _PARAMETER_TYPES[self.type_name]
        return isinstance(value, expected) and not isinstance(value, bool)


@dataclass(frozen=True)
class ActionDefinition:
    """A registered action: what ``CREATE ACTION`` produces.

    ``library_path`` and ``profile_path`` keep the paper's registration
    syntax (``AS "lib/users/sendphoto.dll" PROFILE "profiles/..."``);
    the executable is a Python callable resolved from the action
    library rather than a DLL.
    """

    name: str
    device_type: str
    parameters: Tuple[ActionParameter, ...]
    implementation: ActionImplementation
    profile: ActionProfile
    resolver: QuantityResolver
    library_path: str = ""
    profile_path: str = ""
    builtin: bool = False
    #: Optional vectorized resolver enabling the cost model's block
    #: (batch) estimation entry points for this action.
    block_resolver: Optional[BlockResolver] = None
    #: Device-selection mode. False (the paper's semantics): the
    #: optimizer picks the single best candidate ("it is sufficient to
    #: let some, instead of all, devices take the action"). True (an
    #: extension): the action executes on *every* candidate — right for
    #: actions like sounding all alarms or bolting all nearby doors.
    select_all: bool = False

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise RegistrationError(
                f"action name {self.name!r} is not an identifier"
            )
        if self.profile.action_name != self.name:
            raise RegistrationError(
                f"action {self.name!r} registered with profile for "
                f"{self.profile.action_name!r}"
            )
        if self.profile.device_type != self.device_type:
            raise RegistrationError(
                f"action {self.name!r} targets {self.device_type!r} but "
                f"its profile targets {self.profile.device_type!r}"
            )
        names = [p.name for p in self.parameters]
        if len(names) != len(set(names)):
            raise RegistrationError(
                f"action {self.name!r} has duplicate parameter names"
            )

    def bind(self, arguments: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate and normalize call arguments against the signature."""
        missing = [p.name for p in self.parameters if p.name not in arguments]
        if missing:
            raise QueryError(
                f"action {self.name!r} is missing arguments: {missing}"
            )
        unknown = set(arguments) - {p.name for p in self.parameters}
        if unknown:
            raise QueryError(
                f"action {self.name!r} got unknown arguments: "
                f"{sorted(unknown)}"
            )
        bound: Dict[str, Any] = {}
        for parameter in self.parameters:
            value = arguments[parameter.name]
            if not parameter.accepts(value):
                raise QueryError(
                    f"argument {parameter.name!r} of action {self.name!r} "
                    f"expects {parameter.type_name}, got "
                    f"{type(value).__name__}"
                )
            bound[parameter.name] = value
        return bound

    @property
    def device_parameters(self) -> Tuple[ActionParameter, ...]:
        """The device-identifying parameters of this action."""
        return tuple(p for p in self.parameters if p.device_attribute)

    def fill_device_arguments(
        self, device: Device, arguments: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """Bind device-identifying parameters from the chosen device."""
        filled = dict(arguments)
        static = device.static_attributes()
        for parameter in self.device_parameters:
            if parameter.device_attribute not in static:
                raise QueryError(
                    f"device {device.device_id!r} has no static attribute "
                    f"{parameter.device_attribute!r} for parameter "
                    f"{parameter.name!r}"
                )
            filled.setdefault(parameter.name,
                              static[parameter.device_attribute])
        return filled

    def execute(
        self, device: Device, arguments: Mapping[str, Any]
    ) -> Generator[Any, Any, Any]:
        """Run the action's implementation on a device."""
        if device.device_type != self.device_type:
            raise QueryError(
                f"action {self.name!r} operates {self.device_type!r} "
                f"devices, not {device.device_type!r}"
            )
        bound = self.bind(self.fill_device_arguments(device, arguments))
        return (yield from self.implementation(device, bound))
