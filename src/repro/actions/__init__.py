"""Actions: first-class operators over devices (paper Sections 2.2–2.3).

Actions are "system built-in or user-defined functions that operate
devices". Each action pairs an executable implementation with an
:class:`~repro.profiles.ActionProfile` (for cost estimation) and a
quantity resolver (for status-dependent costs). Applications register
user-defined actions through ``CREATE ACTION``; the built-in library
(``photo``, ``sendphoto``, ``beep``, ``blink``) ships with the system.
"""

from repro.actions.action import ActionDefinition, ActionParameter
from repro.actions.builtins import install_builtin_actions
from repro.actions.registry import ActionLibrary, ActionRegistry
from repro.actions.request import ActionRequest, RequestState

__all__ = [
    "ActionDefinition",
    "ActionLibrary",
    "ActionParameter",
    "ActionRegistry",
    "ActionRequest",
    "RequestState",
    "install_builtin_actions",
]
