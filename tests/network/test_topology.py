"""Unit and property tests for the geometric radio topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommunicationError
from repro.geometry import Point
from repro.devices import SensorMote
from repro.network.topology import BASE_STATION, RadioTopology
from repro.sim import Environment


def line_positions(spacing, count):
    return {f"m{i + 1}": Point(spacing * (i + 1), 0.0)
            for i in range(count)}


def test_chain_depths():
    topology = RadioTopology(base_station=Point(0, 0), radio_range=10.0)
    depths = topology.hop_depths(line_positions(10.0, 4))
    assert depths == {"m1": 1, "m2": 2, "m3": 3, "m4": 4}


def test_direct_reach_is_one_hop():
    topology = RadioTopology(base_station=Point(0, 0), radio_range=100.0)
    depths = topology.hop_depths(line_positions(10.0, 3))
    assert depths == {"m1": 1, "m2": 1, "m3": 1}


def test_unreachable_mote_is_none():
    topology = RadioTopology(base_station=Point(0, 0), radio_range=5.0)
    positions = {"near": Point(4, 0), "far": Point(100, 0)}
    depths = topology.hop_depths(positions)
    assert depths == {"near": 1, "far": None}
    assert topology.reachable(positions) == ["near"]


def test_relay_extends_reach():
    """A mote out of base range is reachable through a neighbour."""
    topology = RadioTopology(base_station=Point(0, 0), radio_range=6.0)
    positions = {"relay": Point(5, 0), "edge": Point(10, 0)}
    assert topology.hop_depths(positions) == {"relay": 1, "edge": 2}


def test_network_diameter():
    topology = RadioTopology(base_station=Point(0, 0), radio_range=10.0)
    assert topology.network_diameter(line_positions(10.0, 5)) == 5
    assert topology.network_diameter({}) == 0


def test_assign_hop_depths_to_motes():
    env = Environment()
    topology = RadioTopology(base_station=Point(0, 0), radio_range=10.0)
    motes = [SensorMote(env, f"m{i + 1}", Point(10.0 * (i + 1), 0))
             for i in range(3)]
    motes.append(SensorMote(env, "lost", Point(500, 500)))
    unreachable = topology.assign_hop_depths(motes)
    assert [m.hop_depth for m in motes[:3]] == [1, 2, 3]
    assert [m.device_id for m in unreachable] == ["lost"]


def test_reserved_base_name_rejected():
    topology = RadioTopology(base_station=Point(0, 0), radio_range=5.0)
    with pytest.raises(CommunicationError, match="reserved"):
        topology.hop_depths({BASE_STATION: Point(1, 1)})


def test_invalid_range_rejected():
    with pytest.raises(CommunicationError, match="radio_range"):
        RadioTopology(base_station=Point(0, 0), radio_range=0.0)


coordinates = st.floats(min_value=-50, max_value=50, allow_nan=False)


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(
    st.sampled_from([f"m{i}" for i in range(8)]),
    st.tuples(coordinates, coordinates), min_size=1))
def test_depth_properties(raw_positions):
    positions = {name: Point(x, y)
                 for name, (x, y) in raw_positions.items()}
    small = RadioTopology(base_station=Point(0, 0), radio_range=10.0)
    large = RadioTopology(base_station=Point(0, 0), radio_range=40.0)
    small_depths = small.hop_depths(positions)
    large_depths = large.hop_depths(positions)
    for name, location in positions.items():
        # Anything within direct range is exactly one hop.
        if location.distance_to(Point(0, 0)) <= 10.0:
            assert small_depths[name] == 1
        # A larger radio range never increases any depth.
        if small_depths[name] is not None:
            assert large_depths[name] is not None
            assert large_depths[name] <= small_depths[name]
