"""Unit tests for the simulated transport."""

import random

import pytest

from repro.errors import CommunicationError, ConnectionTimeoutError
from repro.geometry import Point
from repro.devices import PanTiltZoomCamera, SensorMote
from repro.network import LinkModel, Message, Transport
from repro.sim import Environment

LOSSLESS = {
    "camera": LinkModel(latency_seconds=0.005),
    "sensor": LinkModel(latency_seconds=0.02),
}


def setup():
    env = Environment()
    transport = Transport(env, links=dict(LOSSLESS), rng=random.Random(0))
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    return env, transport, camera


def run_collect(env, generator):
    """Run a generator process to completion, returning its value."""
    box = []

    def proc(env):
        value = yield from generator
        box.append(value)

    env.process(proc(env))
    env.run()
    return box[0]


def test_connect_returns_connection():
    env, transport, camera = setup()
    connection = run_collect(env, transport.connect(camera, timeout=1.0))
    assert connection.device is camera
    assert env.now == pytest.approx(0.010)  # two one-way latencies


def test_connect_offline_device_burns_timeout():
    env, transport, camera = setup()
    camera.go_offline()

    def proc(env):
        try:
            yield from transport.connect(camera, timeout=1.0)
        except ConnectionTimeoutError:
            pass
        else:  # pragma: no cover
            pytest.fail("expected timeout")

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(1.0)


def test_connect_invalid_timeout_rejected():
    env, transport, camera = setup()
    with pytest.raises(CommunicationError, match="timeout"):
        next(transport.connect(camera, timeout=0))


def test_unregistered_device_type_rejected():
    env = Environment()
    transport = Transport(env, links={})
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    with pytest.raises(CommunicationError, match="no link model"):
        transport.link_for(camera)


def test_ping_round_trip():
    env, transport, camera = setup()

    def proc(env):
        connection = yield from transport.connect(camera, timeout=1.0)
        response = yield from connection.request(
            Message(kind="ping", device_id="cam1"), timeout=1.0)
        assert response.ok
        assert response.value["device_type"] == "camera"
        assert response.round_trip_seconds == pytest.approx(0.010)
        connection.close()

    env.process(proc(env))
    env.run()


def test_status_request_returns_physical_status():
    env, transport, camera = setup()

    def proc(env):
        connection = yield from transport.connect(camera, timeout=1.0)
        response = yield from connection.request(
            Message(kind="status", device_id="cam1"), timeout=1.0)
        assert set(response.value) == {"pan", "tilt", "zoom"}

    env.process(proc(env))
    env.run()


def test_execute_request_consumes_device_time():
    env, transport, camera = setup()

    def proc(env):
        connection = yield from transport.connect(camera, timeout=1.0)
        response = yield from connection.request(
            Message(kind="execute", device_id="cam1",
                    payload={"operation": "store"}), timeout=5.0)
        assert response.ok
        # 2 x latency (connect) + 2 x latency (request) + 0.1 store
        assert env.now == pytest.approx(0.02 + 0.1)

    env.process(proc(env))
    env.run()


def test_device_error_becomes_not_ok_response():
    env, transport, camera = setup()

    def proc(env):
        connection = yield from transport.connect(camera, timeout=1.0)
        response = yield from connection.request(
            Message(kind="execute", device_id="cam1",
                    payload={"operation": "teleport"}), timeout=1.0)
        assert not response.ok
        assert "no operation" in response.error

    env.process(proc(env))
    env.run()


def test_request_on_closed_connection_rejected():
    env, transport, camera = setup()

    def proc(env):
        connection = yield from transport.connect(camera, timeout=1.0)
        connection.close()
        with pytest.raises(CommunicationError, match="closed connection"):
            next(connection.request(
                Message(kind="ping", device_id="cam1"), timeout=1.0))

    env.process(proc(env))
    env.run()


def test_misaddressed_message_rejected():
    env, transport, camera = setup()

    def proc(env):
        connection = yield from transport.connect(camera, timeout=1.0)
        with pytest.raises(CommunicationError, match="addressed to"):
            next(connection.request(
                Message(kind="ping", device_id="other"), timeout=1.0))

    env.process(proc(env))
    env.run()


def test_lossy_link_times_out_sometimes():
    env = Environment()
    transport = Transport(
        env,
        links={"sensor": LinkModel(latency_seconds=0.02, loss_rate=0.5)},
        rng=random.Random(3),
    )
    mote = SensorMote(env, "m1", Point(0, 0))
    outcomes = []

    def proc(env):
        for _ in range(20):
            try:
                connection = yield from transport.connect(mote, timeout=0.5)
                connection.close()
                outcomes.append("ok")
            except ConnectionTimeoutError:
                outcomes.append("timeout")

    env.process(proc(env))
    env.run()
    assert "timeout" in outcomes and "ok" in outcomes


def test_unknown_message_kind_rejected_at_construction():
    with pytest.raises(CommunicationError, match="unknown message kind"):
        Message(kind="warp", device_id="cam1")
