"""Unit tests for link models."""

import random

import pytest

from repro.errors import CommunicationError
from repro.network import DEFAULT_LINKS, LinkModel


def test_no_jitter_latency_is_constant():
    link = LinkModel(latency_seconds=0.01)
    rng = random.Random(1)
    assert link.sample_latency(rng) == 0.01
    assert link.sample_latency(rng) == 0.01


def test_jitter_varies_latency_but_never_negative():
    link = LinkModel(latency_seconds=0.01, jitter_seconds=0.05)
    rng = random.Random(1)
    samples = [link.sample_latency(rng) for _ in range(200)]
    assert len(set(samples)) > 1
    assert all(s >= 0 for s in samples)


def test_loss_rate_zero_never_drops():
    link = LinkModel(latency_seconds=0.01)
    rng = random.Random(1)
    assert not any(link.drops(rng) for _ in range(100))


def test_loss_rate_half_drops_sometimes():
    link = LinkModel(latency_seconds=0.01, loss_rate=0.5)
    rng = random.Random(1)
    outcomes = [link.drops(rng) for _ in range(100)]
    assert any(outcomes) and not all(outcomes)


def test_validation():
    with pytest.raises(CommunicationError):
        LinkModel(latency_seconds=-1)
    with pytest.raises(CommunicationError):
        LinkModel(latency_seconds=0, jitter_seconds=-1)
    with pytest.raises(CommunicationError):
        LinkModel(latency_seconds=0, loss_rate=1.0)


def test_default_links_cover_builtin_types():
    assert set(DEFAULT_LINKS) == {"camera", "sensor", "phone"}
    # The sensor radio is the lossy medium (paper Section 4).
    assert DEFAULT_LINKS["sensor"].loss_rate > 0
