"""Edge cases: devices vanishing mid-exchange, pipelined failures."""

import random

import pytest

from repro.errors import ConnectionTimeoutError
from repro.geometry import Point
from repro.devices import PanTiltZoomCamera
from repro.network import LinkModel, Message, Transport
from repro.sim import Environment


def setup():
    env = Environment()
    transport = Transport(
        env, links={"camera": LinkModel(latency_seconds=0.01)},
        rng=random.Random(0))
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    return env, transport, camera


def test_device_vanishing_mid_execute_times_out():
    env, transport, camera = setup()
    outcomes = []

    def requester(env):
        connection = yield from transport.connect(camera, timeout=1.0)
        try:
            # store takes 0.1 s; the camera dies at 0.05 s.
            yield from connection.request(Message(
                kind="execute", device_id="cam1",
                payload={"operation": "store"}), timeout=1.0)
        except ConnectionTimeoutError:
            outcomes.append("timeout")

    def killer(env):
        yield env.timeout(0.05)
        camera.go_offline()

    env.process(requester(env))
    env.process(killer(env))
    env.run()
    assert outcomes == ["timeout"]


def test_connect_succeeds_then_device_recovers_for_request():
    env, transport, camera = setup()
    results = []

    def requester(env):
        connection = yield from transport.connect(camera, timeout=1.0)
        yield env.timeout(5.0)  # hold the connection across an outage
        response = yield from connection.request(Message(
            kind="ping", device_id="cam1"), timeout=1.0)
        results.append(response.ok)

    def flapper(env):
        yield env.timeout(1.0)
        camera.go_offline()
        yield env.timeout(1.0)
        camera.go_online()

    env.process(requester(env))
    env.process(flapper(env))
    env.run()
    assert results == [True]


def test_exchange_counter_increments():
    env, transport, camera = setup()

    def proc(env):
        connection = yield from transport.connect(camera, timeout=1.0)
        yield from connection.request(Message(kind="ping",
                                              device_id="cam1"), 1.0)
        yield from connection.request(Message(kind="status",
                                              device_id="cam1"), 1.0)
        assert connection.exchanges == 2

    env.process(proc(env))
    env.run()


def test_handshake_slower_than_timeout_fails():
    env = Environment()
    # 0.3 s one-way latency but only 0.1 s of patience.
    transport = Transport(
        env, links={"camera": LinkModel(latency_seconds=0.3)},
        rng=random.Random(0))
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))

    def proc(env):
        with pytest.raises(ConnectionTimeoutError):
            yield from transport.connect(camera, timeout=0.1)

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(0.1)  # burned exactly the timeout
