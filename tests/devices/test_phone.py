"""Unit tests for the simulated cell phone."""

import pytest

from repro.errors import CommunicationError, DeviceError
from repro.geometry import Point
from repro.devices import MobilePhone, TextMessage
from repro.devices.phone import MMS_FIXED_SECONDS, MMS_PER_KB_SECONDS, SMS_SECONDS
from repro.sim import Environment


def make_phone(env, **kwargs):
    kwargs.setdefault("number", "+85290000000")
    return MobilePhone(env, "phone1", Point(0, 0), **kwargs)


def test_phone_requires_number():
    env = Environment()
    with pytest.raises(DeviceError, match="number"):
        MobilePhone(env, "p", Point(0, 0), number="")


def test_receive_sms_lands_in_inbox():
    env = Environment()
    phone = make_phone(env)

    def proc(env):
        yield from phone.execute("receive_sms", sender="aorta",
                                 body="motion detected")

    env.process(proc(env))
    env.run()
    assert len(phone.inbox) == 1
    message = phone.inbox[0]
    assert message.kind == "sms"
    assert message.body == "motion detected"
    assert message.received_at == pytest.approx(SMS_SECONDS)


def test_receive_mms_carries_attachment():
    env = Environment()
    phone = make_phone(env)

    def proc(env):
        yield from phone.execute(
            "receive_mms", sender="aorta", body="snapshot",
            attachment="photos/admin/cam1_1_000.jpg", size_kb=200.0)

    env.process(proc(env))
    env.run()
    assert phone.inbox[0].attachment.endswith(".jpg")
    assert env.now == pytest.approx(MMS_FIXED_SECONDS + 200 * MMS_PER_KB_SECONDS)


def test_mms_on_non_mms_phone_rejected():
    env = Environment()
    phone = make_phone(env, mms_support=False)

    def proc(env):
        yield from phone.execute("receive_mms", sender="a", body="b",
                                 attachment="x.jpg")

    env.process(proc(env))
    with pytest.raises(DeviceError, match="no MMS support"):
        env.run()


def test_out_of_coverage_blocks_delivery():
    env = Environment()
    phone = make_phone(env)
    phone.leave_coverage()

    def proc(env):
        yield from phone.execute("receive_sms", sender="a", body="b")

    env.process(proc(env))
    with pytest.raises(CommunicationError, match="out of coverage"):
        env.run()


def test_coverage_loss_mid_delivery_fails():
    env = Environment()
    phone = make_phone(env)

    def deliver(env):
        yield from phone.execute("receive_sms", sender="a", body="b")

    def dropout(env):
        yield env.timeout(SMS_SECONDS / 2)
        phone.leave_coverage()

    env.process(deliver(env))
    env.process(dropout(env))
    with pytest.raises(CommunicationError, match="out of coverage"):
        env.run()
    assert phone.inbox == []


def test_reentering_coverage_restores_service():
    env = Environment()
    phone = make_phone(env)
    phone.leave_coverage()
    phone.enter_coverage()

    def proc(env):
        yield from phone.execute("receive_sms", sender="a", body="b")

    env.process(proc(env))
    env.run()
    assert len(phone.inbox) == 1


def test_invalid_mms_size_rejected():
    env = Environment()
    phone = make_phone(env)

    def proc(env):
        yield from phone.execute("receive_mms", sender="a", body="b",
                                 attachment="x.jpg", size_kb=0)

    env.process(proc(env))
    with pytest.raises(DeviceError, match="size"):
        env.run()


def test_message_kind_validation():
    with pytest.raises(DeviceError, match="kind"):
        TextMessage(kind="fax", sender="a", body="b")
    with pytest.raises(DeviceError, match="attachment"):
        TextMessage(kind="mms", sender="a", body="b")


def test_static_attributes_include_number_and_mms():
    env = Environment()
    phone = make_phone(env)
    row = phone.static_attributes()
    assert row["number"] == "+85290000000"
    assert row["mms_support"] is True


def test_physical_status_reports_coverage():
    env = Environment()
    phone = make_phone(env)
    assert phone.physical_status()["in_coverage"] == 1.0
    phone.leave_coverage()
    assert phone.physical_status()["in_coverage"] == 0.0
