"""Unit tests for the device registry."""

import pytest

from repro.errors import DeviceError, RegistrationError
from repro.geometry import Point
from repro.devices import DeviceRegistry, MobilePhone, PanTiltZoomCamera, SensorMote
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def registry(env):
    registry = DeviceRegistry()
    registry.add(PanTiltZoomCamera(env, "cam1", Point(0, 0)))
    registry.add(PanTiltZoomCamera(env, "cam2", Point(10, 0)))
    registry.add(SensorMote(env, "mote1", Point(5, 5)))
    registry.add(MobilePhone(env, "phone1", Point(0, 0), number="+852"))
    return registry


def test_lookup_by_id(registry):
    assert registry.get("cam1").device_id == "cam1"
    assert "mote1" in registry
    assert len(registry) == 4


def test_unknown_id_raises(registry):
    with pytest.raises(DeviceError, match="unknown device"):
        registry.get("ghost")


def test_duplicate_registration_rejected(registry, env):
    with pytest.raises(RegistrationError, match="already registered"):
        registry.add(PanTiltZoomCamera(env, "cam1", Point(1, 1)))


def test_of_type_preserves_order(registry):
    assert [d.device_id for d in registry.of_type("camera")] == ["cam1", "cam2"]


def test_online_of_type_excludes_offline(registry):
    registry.get("cam1").go_offline()
    assert [d.device_id for d in registry.online_of_type("camera")] == ["cam2"]


def test_device_types_sorted(registry):
    assert registry.device_types() == ["camera", "phone", "sensor"]


def test_remove_returns_device(registry):
    device = registry.remove("mote1")
    assert device.device_id == "mote1"
    assert "mote1" not in registry


def test_membership_listeners(registry, env):
    events = []
    registry.subscribe(lambda event, device: events.append((event, device.device_id)))
    registry.add(SensorMote(env, "mote2", Point(1, 1)))
    registry.remove("mote2")
    assert events == [("join", "mote2"), ("leave", "mote2")]


def test_iteration_yields_all(registry):
    assert {d.device_id for d in registry} == {"cam1", "cam2", "mote1", "phone1"}
