"""Unit tests for the per-device circuit breaker (DeviceHealthTracker)."""

import pytest

from repro.errors import DeviceError
from repro.core.tracing import EngineTracer
from repro.devices.health import (
    BreakerState,
    DeviceHealthTracker,
    HealthPolicy,
)
from repro.sim import Environment


POLICY = HealthPolicy(failure_threshold=3, quarantine_seconds=10.0,
                      backoff_factor=2.0, quarantine_max=35.0,
                      probation_successes=1)


def make_tracker(tracer=None):
    env = Environment()
    return env, DeviceHealthTracker(env, POLICY, tracer=tracer)


def test_policy_validation():
    with pytest.raises(DeviceError, match="failure_threshold"):
        HealthPolicy(failure_threshold=0)
    with pytest.raises(DeviceError, match="quarantine windows"):
        HealthPolicy(quarantine_seconds=0)
    with pytest.raises(DeviceError, match="backoff_factor"):
        HealthPolicy(backoff_factor=0.5)
    with pytest.raises(DeviceError, match="probation_successes"):
        HealthPolicy(probation_successes=0)


def test_unknown_device_is_closed_and_allowed():
    _, tracker = make_tracker()
    assert tracker.state_of("cam1") is BreakerState.CLOSED
    assert tracker.allow_candidate("cam1")


def test_breaker_opens_after_threshold_consecutive_failures():
    _, tracker = make_tracker()
    for _ in range(POLICY.failure_threshold - 1):
        tracker.record_failure("cam1")
        assert tracker.allow_candidate("cam1")
    tracker.record_failure("cam1")
    assert tracker.state_of("cam1") is BreakerState.OPEN
    assert not tracker.allow_candidate("cam1")
    assert tracker.quarantined_ids() == ["cam1"]
    assert tracker.quarantines_total == 1


def test_success_resets_the_failure_streak():
    _, tracker = make_tracker()
    for _ in range(POLICY.failure_threshold - 1):
        tracker.record_failure("cam1")
    tracker.record_success("cam1")
    for _ in range(POLICY.failure_threshold - 1):
        tracker.record_failure("cam1")
    # Never reached threshold consecutively: still closed.
    assert tracker.state_of("cam1") is BreakerState.CLOSED


def test_window_expiry_moves_to_probation_and_success_readmits():
    env, tracker = make_tracker()
    for _ in range(POLICY.failure_threshold):
        tracker.record_failure("cam1")
    assert not tracker.allow_candidate("cam1")
    env.run(until=POLICY.quarantine_seconds + 0.1)
    # Window expired: the device is allowed back on probation.
    assert tracker.allow_candidate("cam1")
    assert tracker.state_of("cam1") is BreakerState.HALF_OPEN
    tracker.record_success("cam1")
    assert tracker.state_of("cam1") is BreakerState.CLOSED
    assert tracker.recoveries_total == 1
    stats = tracker.stats()
    assert stats["recoveries"] == 1
    assert stats["mean_recovery_seconds"] == pytest.approx(
        POLICY.quarantine_seconds + 0.1)


def test_probation_failure_reopens_with_doubled_window():
    env, tracker = make_tracker()
    for _ in range(POLICY.failure_threshold):
        tracker.record_failure("cam1")
    env.run(until=POLICY.quarantine_seconds + 1.0)
    assert tracker.allow_candidate("cam1")  # HALF_OPEN
    tracker.record_failure("cam1")
    assert tracker.state_of("cam1") is BreakerState.OPEN
    assert tracker.quarantines_total == 2
    # Window doubled: still quarantined until ~t+20.
    env.run(until=env.now + 2 * POLICY.quarantine_seconds - 1.0)
    assert not tracker.allow_candidate("cam1")
    env.run(until=env.now + 1.5)
    assert tracker.allow_candidate("cam1")


def test_window_growth_is_capped():
    env, tracker = make_tracker()
    # Open, then relapse repeatedly: 10 -> 20 -> 35 (cap) -> 35 ...
    for _ in range(POLICY.failure_threshold):
        tracker.record_failure("cam1")
    for _ in range(4):
        env.run(until=tracker._devices["cam1"].open_until + 0.1)
        assert tracker.allow_candidate("cam1")
        tracker.record_failure("cam1")
    assert tracker._devices["cam1"].window == POLICY.quarantine_max


def test_breakers_are_per_device():
    _, tracker = make_tracker()
    for _ in range(POLICY.failure_threshold):
        tracker.record_failure("cam1")
    assert not tracker.allow_candidate("cam1")
    assert tracker.allow_candidate("cam2")
    assert tracker.state_of("cam2") is BreakerState.CLOSED


def test_tracer_records_quarantine_lifecycle():
    tracer = EngineTracer()
    env, tracker = make_tracker(tracer=tracer)
    for _ in range(POLICY.failure_threshold):
        tracker.record_failure("cam1", reason="probe connect")
    env.run(until=POLICY.quarantine_seconds + 0.1)
    tracker.allow_candidate("cam1")
    tracker.record_success("cam1")
    kinds = [record.kind for record in tracer]
    assert kinds == ["device_quarantined", "device_probation",
                     "device_readmitted"]
    assert tracer.of_kind("device_quarantined")[0]["reason"] \
        == "probe connect"
