"""Unit tests for the Device base class."""

import pytest

from repro.errors import DeviceError
from repro.geometry import Point
from repro.devices.base import Device, DeviceState
from repro.sim import Environment


class Widget(Device):
    device_type = "widget"

    def op_spin(self, turns=1):
        yield self.env.timeout(0.5 * turns)
        return turns


def test_device_requires_id():
    with pytest.raises(DeviceError, match="non-empty"):
        Widget(Environment(), "", Point(0, 0))


def test_lifecycle_transitions():
    device = Widget(Environment(), "w1", Point(0, 0))
    assert device.state is DeviceState.ONLINE
    device.go_offline()
    assert device.state is DeviceState.OFFLINE
    assert not device.online
    device.go_online()
    assert device.online
    device.crash()
    assert device.state is DeviceState.CRASHED
    device.repair()
    assert device.online


def test_base_static_attributes():
    device = Widget(Environment(), "w1", Point(2, 3))
    assert device.static_attributes() == {"id": "w1", "loc_x": 2,
                                          "loc_y": 3}


def test_base_read_sensory_raises():
    device = Widget(Environment(), "w1", Point(0, 0))
    with pytest.raises(DeviceError, match="no sensory attribute"):
        device.read_sensory("anything")


def test_base_physical_status_empty():
    assert Widget(Environment(), "w1", Point(0, 0)).physical_status() == {}


def test_execute_dispatches_and_accounts():
    env = Environment()
    device = Widget(env, "w1", Point(0, 0))
    outcomes = []

    def proc(env):
        outcomes.append((yield from device.execute("spin", turns=3)))

    env.process(proc(env))
    env.run()
    outcome = outcomes[0]
    assert outcome.detail == 3
    assert outcome.duration == pytest.approx(1.5)
    assert outcome.succeeded
    assert device.operations_executed == 1
    assert device.busy_seconds == pytest.approx(1.5)


def test_execute_unknown_operation():
    env = Environment()
    device = Widget(env, "w1", Point(0, 0))

    def proc(env):
        yield from device.execute("fly")

    env.process(proc(env))
    with pytest.raises(DeviceError, match="no operation 'fly'"):
        env.run()


def test_execute_while_crashed_rejected():
    env = Environment()
    device = Widget(env, "w1", Point(0, 0))
    device.crash()

    def proc(env):
        yield from device.execute("spin")

    env.process(proc(env))
    with pytest.raises(DeviceError, match="crashed"):
        env.run()
