"""Unit tests for the MICA2 sensor mote simulator."""

import random

import pytest

from repro.errors import CommunicationError, DeviceError
from repro.geometry import Point
from repro.devices import SensorMote, SensorStimulus
from repro.devices.sensor import BATTERY_FULL_VOLTS, BASELINES
from repro.sim import Environment


def make_mote(env, **kwargs):
    kwargs.setdefault("rng", random.Random(42))
    return SensorMote(env, "mote1", Point(1, 2), **kwargs)


def test_baseline_readings_near_baseline():
    env = Environment()
    mote = make_mote(env, noise_amplitude=0.0)
    for name, baseline in BASELINES.items():
        assert mote.read_sensory(name) == pytest.approx(baseline)


def test_noise_perturbs_readings():
    env = Environment()
    mote = make_mote(env, noise_amplitude=5.0)
    values = {mote.read_sensory("temperature") for _ in range(10)}
    assert len(values) > 1


def test_stimulus_raises_reading_while_active():
    env = Environment()
    mote = make_mote(env, noise_amplitude=0.0)
    mote.inject(SensorStimulus("accel_x", start=10.0, duration=5.0,
                               magnitude=800.0))
    assert mote.read_sensory("accel_x") == pytest.approx(0.0)

    def proc(env):
        yield env.timeout(12.0)
        assert mote.read_sensory("accel_x") == pytest.approx(800.0)
        yield env.timeout(5.0)
        assert mote.read_sensory("accel_x") == pytest.approx(0.0)

    env.process(proc(env))
    env.run()


def test_overlapping_stimuli_add():
    env = Environment()
    mote = make_mote(env, noise_amplitude=0.0)
    mote.inject(SensorStimulus("light", start=0.0, duration=10.0, magnitude=100))
    mote.inject(SensorStimulus("light", start=0.0, duration=10.0, magnitude=50))
    assert mote.read_sensory("light") == pytest.approx(BASELINES["light"] + 150)


def test_stimulus_unknown_attribute_rejected():
    with pytest.raises(DeviceError, match="not a sensory reading"):
        SensorStimulus("voltage", start=0, duration=1, magnitude=1)


def test_stimulus_nonpositive_duration_rejected():
    with pytest.raises(DeviceError, match="duration"):
        SensorStimulus("light", start=0, duration=0, magnitude=1)


def test_prune_expired_stimuli():
    env = Environment()
    mote = make_mote(env)
    mote.inject(SensorStimulus("light", start=0.0, duration=1.0, magnitude=1))
    mote.inject(SensorStimulus("light", start=100.0, duration=1.0, magnitude=1))

    def proc(env):
        yield env.timeout(50.0)

    env.process(proc(env))
    env.run()
    assert mote.prune_expired_stimuli() == 1
    assert len(mote._stimuli) == 1


def test_battery_reading_and_drain():
    env = Environment()
    mote = make_mote(env)
    assert mote.read_sensory("battery") == BATTERY_FULL_VOLTS

    def proc(env):
        yield from mote.execute("beep")

    env.process(proc(env))
    env.run()
    assert mote.battery_volts < BATTERY_FULL_VOLTS


def test_dead_battery_blocks_readings():
    env = Environment()
    mote = make_mote(env)
    mote.battery_volts = 1.9
    with pytest.raises(DeviceError, match="battery dead"):
        mote.read_sensory("accel_x")


def test_connect_time_scales_with_hop_depth():
    env = Environment()
    shallow = SensorMote(env, "s1", Point(0, 0), hop_depth=1)
    deep = SensorMote(env, "s2", Point(0, 0), hop_depth=4)
    durations = {}

    def connect(env, mote, name):
        start = env.now
        yield from mote.execute("connect")
        durations[name] = env.now - start

    env.process(connect(env, shallow, "shallow"))
    env.process(connect(env, deep, "deep"))
    env.run()
    assert durations["deep"] == pytest.approx(4 * durations["shallow"])


def test_lossy_radio_drops_connections():
    env = Environment()
    mote = SensorMote(env, "s1", Point(0, 0), hop_depth=3,
                      packet_loss_rate=0.5, rng=random.Random(7))
    outcomes = []

    def connect(env):
        try:
            yield from mote.execute("connect")
            outcomes.append("ok")
        except CommunicationError:
            outcomes.append("lost")

    def driver(env):
        for _ in range(30):
            yield from connect(env)

    env.process(driver(env))
    env.run()
    assert "lost" in outcomes
    assert "ok" in outcomes


def test_invalid_hop_depth_rejected():
    env = Environment()
    with pytest.raises(DeviceError, match="hop_depth"):
        SensorMote(env, "s1", Point(0, 0), hop_depth=0)


def test_invalid_loss_rate_rejected():
    env = Environment()
    with pytest.raises(DeviceError, match="packet_loss_rate"):
        SensorMote(env, "s1", Point(0, 0), packet_loss_rate=1.0)


def test_read_sample_returns_all_readings():
    env = Environment()
    mote = make_mote(env, noise_amplitude=0.0)
    samples = []

    def proc(env):
        outcome = yield from mote.execute("read_sample")
        samples.append(outcome.detail)

    env.process(proc(env))
    env.run()
    assert set(samples[0]) == set(BASELINES)


def test_physical_status_exposes_battery_and_depth():
    env = Environment()
    mote = make_mote(env, hop_depth=3)
    status = mote.physical_status()
    assert status["hop_depth"] == 3.0
    assert status["battery"] == BATTERY_FULL_VOLTS
