"""Unit tests for failure injection."""

import random

import pytest

from repro.errors import DeviceError
from repro.geometry import Point
from repro.devices import PanTiltZoomCamera, SensorMote
from repro.devices.failures import FailureInjector, OutageSpec
from repro.sim import Environment


def test_offline_outage_and_recovery():
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    injector = FailureInjector(env)
    injector.schedule_outage(camera, OutageSpec(
        device_id="cam1", start=5.0, duration=3.0, kind="offline"))
    observations = []

    def observer(env):
        yield env.timeout(4.0)
        observations.append(("before", camera.online))
        yield env.timeout(2.0)
        observations.append(("during", camera.online))
        yield env.timeout(3.0)
        observations.append(("after", camera.online))

    env.process(observer(env))
    env.run()
    assert observations == [("before", True), ("during", False), ("after", True)]


def test_crash_outage_and_repair():
    env = Environment()
    mote = SensorMote(env, "m1", Point(0, 0))
    injector = FailureInjector(env)
    injector.schedule_outage(mote, OutageSpec(
        device_id="m1", start=1.0, duration=2.0, kind="crash"))

    def observer(env):
        yield env.timeout(2.0)
        assert mote.state.value == "crashed"

    env.process(observer(env))
    env.run()
    assert mote.online


def test_outage_spec_validation():
    with pytest.raises(DeviceError, match="duration"):
        OutageSpec(device_id="x", start=0, duration=0)
    with pytest.raises(DeviceError, match="kind"):
        OutageSpec(device_id="x", start=0, duration=1, kind="meltdown")


def test_mismatched_device_id_rejected():
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    injector = FailureInjector(env)
    with pytest.raises(DeviceError, match="scheduled on device"):
        injector.schedule_outage(camera, OutageSpec(
            device_id="other", start=0, duration=1))


def test_random_outages_deterministic_and_bounded():
    env = Environment()
    devices = [SensorMote(env, f"m{i}", Point(i, 0)) for i in range(5)]
    injector = FailureInjector(env)
    count = injector.random_outages(
        devices, horizon=100.0, outage_rate_per_device=0.02,
        mean_duration=5.0, rng=random.Random(3))
    assert count == len(injector.scheduled)
    assert count >= 1
    env.run()
    assert all(d.online for d in devices)


def test_random_outages_bad_horizon():
    env = Environment()
    injector = FailureInjector(env)
    with pytest.raises(DeviceError, match="horizon"):
        injector.random_outages([], horizon=0, outage_rate_per_device=0.1,
                                mean_duration=1.0)


def test_outage_in_the_past_rejected():
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    injector = FailureInjector(env)

    def late_scheduler(env):
        yield env.timeout(10.0)
        with pytest.raises(DeviceError, match="clock is already at"):
            injector.schedule_outage(camera, OutageSpec(
                device_id="cam1", start=5.0, duration=1.0))

    env.process(late_scheduler(env))
    env.run()
    assert not injector.scheduled


def test_random_outages_clamped_to_horizon():
    env = Environment()
    devices = [SensorMote(env, f"m{i}", Point(i, 0)) for i in range(10)]
    injector = FailureInjector(env)
    horizon = 50.0
    # A long mean duration forces clamping for late-starting episodes.
    injector.random_outages(
        devices, horizon=horizon, outage_rate_per_device=0.1,
        mean_duration=40.0, rng=random.Random(7))
    assert injector.scheduled
    for spec in injector.scheduled:
        assert spec.start < horizon
        assert spec.start + spec.duration <= horizon + 1e-9
    # Every episode also recovers inside the horizon.
    env.run(until=horizon)
    assert all(d.online for d in devices)


def test_random_outages_per_device_substreams():
    """Removing one device must not perturb the others' episodes."""
    def schedule(device_ids):
        env = Environment()
        devices = [SensorMote(env, d, Point(0, 0)) for d in device_ids]
        injector = FailureInjector(env)
        injector.random_outages(
            devices, horizon=200.0, outage_rate_per_device=0.03,
            mean_duration=5.0, rng=random.Random(11))
        return {(s.device_id, s.start, s.duration, s.kind)
                for s in injector.scheduled}

    full = schedule(["m1", "m2", "m3"])
    without_m2 = schedule(["m1", "m3"])
    assert without_m2 == {e for e in full if e[0] != "m2"}


def test_random_outages_skip_zero_episode_devices():
    # An expected count below 1 leaves some devices episode-free; their
    # substreams must still not disturb devices that do draw episodes.
    def schedule(device_ids):
        env = Environment()
        devices = [SensorMote(env, d, Point(0, 0)) for d in device_ids]
        injector = FailureInjector(env)
        injector.random_outages(
            devices, horizon=100.0, outage_rate_per_device=0.005,
            mean_duration=5.0, rng=random.Random(2))
        return {(s.device_id, s.start, s.duration, s.kind)
                for s in injector.scheduled}

    ids = [f"m{i}" for i in range(40)]
    episodes = schedule(ids)
    affected = {device_id for device_id, *_ in episodes}
    assert affected  # expected 0.5 episodes/device over 40 devices
    assert len(affected) < len(ids)  # ... but far from all of them
    # Dropping every quiet device reproduces the exact same schedule.
    assert schedule(sorted(affected)) == episodes


# ----------------------------------------------------------------------
# Stragglers: slow devices, not dead ones
# ----------------------------------------------------------------------
def test_straggler_spec_validation():
    from repro.devices.failures import StragglerSpec
    with pytest.raises(DeviceError, match="duration"):
        StragglerSpec(device_id="x", start=0, duration=0, factor=2.0)
    with pytest.raises(DeviceError, match="factor"):
        StragglerSpec(device_id="x", start=0, duration=1, factor=1.0)


def test_straggler_inflates_then_restores_service_time():
    from repro.devices.failures import StragglerSpec
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    injector = FailureInjector(env)
    injector.schedule_straggler(camera, StragglerSpec(
        device_id="cam1", start=5.0, duration=3.0, factor=4.0))
    observations = []

    def observer(env):
        yield env.timeout(4.0)
        observations.append(("before", camera.service_seconds(1.0)))
        yield env.timeout(2.0)
        observations.append(("during", camera.service_seconds(1.0)))
        yield env.timeout(3.0)
        observations.append(("after", camera.service_seconds(1.0)))

    env.process(observer(env))
    env.run()
    assert observations == [("before", 1.0), ("during", 4.0),
                            ("after", 1.0)]
    assert camera.online  # a straggler is slow, never offline


def test_overlapping_stragglers_stack_multiplicatively():
    from repro.devices.failures import StragglerSpec
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    injector = FailureInjector(env)
    injector.schedule_straggler(camera, StragglerSpec(
        device_id="cam1", start=2.0, duration=6.0, factor=2.0))
    injector.schedule_straggler(camera, StragglerSpec(
        device_id="cam1", start=4.0, duration=2.0, factor=3.0))
    samples = []

    def observer(env):
        for t in (3.0, 5.0, 7.0, 9.0):
            yield env.timeout(t - env.now)
            samples.append(camera.slowdown_factor)

    env.process(observer(env))
    env.run()
    assert samples == [2.0, 6.0, 2.0, 1.0]


def test_straggler_mismatched_device_id_rejected():
    from repro.devices.failures import StragglerSpec
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    injector = FailureInjector(env)
    with pytest.raises(DeviceError, match="scheduled on device"):
        injector.schedule_straggler(camera, StragglerSpec(
            device_id="other", start=0, duration=1, factor=2.0))


def test_random_stragglers_deterministic_substreams_and_clamped():
    def schedule(device_ids):
        env = Environment()
        devices = [SensorMote(env, d, Point(0, 0)) for d in device_ids]
        injector = FailureInjector(env)
        injector.random_stragglers(
            devices, horizon=100.0, straggler_rate_per_device=0.03,
            mean_duration=30.0, rng=random.Random(11))
        return {(s.device_id, s.start, s.duration, s.factor)
                for s in injector.scheduled_stragglers}

    full = schedule(["m1", "m2", "m3"])
    assert full
    for _, start, duration, factor in full:
        assert start + duration <= 100.0 + 1e-9
        assert 2.0 <= factor <= 8.0
    # Per-device substreams: removing one device leaves the rest alone.
    assert schedule(["m1", "m3"]) == {e for e in full if e[0] != "m2"}
    # Same base rng, same schedule.
    assert schedule(["m1", "m2", "m3"]) == full


def test_random_stragglers_independent_of_outage_substreams():
    # The same base seed drives outages and stragglers for the same
    # device through distinct substreams — neither schedule collapses
    # onto the other.
    env = Environment()
    devices = [SensorMote(env, f"m{i}", Point(i, 0)) for i in range(5)]
    injector = FailureInjector(env)
    injector.random_outages(
        devices, horizon=100.0, outage_rate_per_device=0.05,
        mean_duration=5.0, rng=random.Random(3))
    injector.random_stragglers(
        devices, horizon=100.0, straggler_rate_per_device=0.05,
        mean_duration=5.0, rng=random.Random(3))
    outage_starts = {s.start for s in injector.scheduled}
    straggler_starts = {s.start for s in injector.scheduled_stragglers}
    assert outage_starts and straggler_starts
    assert outage_starts != straggler_starts


def test_random_stragglers_validation():
    env = Environment()
    injector = FailureInjector(env)
    with pytest.raises(DeviceError, match="horizon"):
        injector.random_stragglers(
            [], horizon=0, straggler_rate_per_device=0.1)
    with pytest.raises(DeviceError, match="factor_range"):
        injector.random_stragglers(
            [], horizon=10.0, straggler_rate_per_device=0.1,
            factor_range=(1.0, 2.0))


# ----------------------------------------------------------------------
# Request storms
# ----------------------------------------------------------------------
def test_request_storm_arrivals_and_spacing():
    from repro.actions.request import ActionRequest
    env = Environment()
    injector = FailureInjector(env)
    arrivals = []

    def make_request(index, now):
        return ActionRequest(action_name="photo", arguments={},
                             created_at=now, request_id=f"s{index}")

    count = injector.schedule_request_storm(
        lambda r: arrivals.append((r.request_id, env.now)) or True,
        make_request, start=2.0, duration=1.0, rate=4.0)
    env.run()
    assert count == 4
    assert arrivals == [("s0", 2.0), ("s1", 2.25), ("s2", 2.5),
                        ("s3", 2.75)]
    assert injector.storm_rejected == [0]


def test_request_storm_tallies_refusals():
    from repro.errors import QueueFullError
    from repro.actions.request import ActionRequest
    env = Environment()
    injector = FailureInjector(env)
    outcomes = iter([True, False, QueueFullError("full"), True])

    def submit(request):
        outcome = next(outcomes)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    injector.schedule_request_storm(
        submit,
        lambda i, now: ActionRequest(action_name="photo", arguments={},
                                     created_at=now),
        start=0.5, duration=2.0, rate=2.0)
    env.run()
    assert injector.storm_rejected == [2]


def test_request_storm_validation():
    env = Environment()
    injector = FailureInjector(env)
    make = lambda i, now: None
    with pytest.raises(DeviceError, match="duration"):
        injector.schedule_request_storm(lambda r: True, make,
                                        start=0.0, duration=0.0, rate=1.0)
    with pytest.raises(DeviceError, match="rate"):
        injector.schedule_request_storm(lambda r: True, make,
                                        start=0.0, duration=1.0, rate=0.0)
