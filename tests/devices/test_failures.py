"""Unit tests for failure injection."""

import random

import pytest

from repro.errors import DeviceError
from repro.geometry import Point
from repro.devices import PanTiltZoomCamera, SensorMote
from repro.devices.failures import FailureInjector, OutageSpec
from repro.sim import Environment


def test_offline_outage_and_recovery():
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    injector = FailureInjector(env)
    injector.schedule_outage(camera, OutageSpec(
        device_id="cam1", start=5.0, duration=3.0, kind="offline"))
    observations = []

    def observer(env):
        yield env.timeout(4.0)
        observations.append(("before", camera.online))
        yield env.timeout(2.0)
        observations.append(("during", camera.online))
        yield env.timeout(3.0)
        observations.append(("after", camera.online))

    env.process(observer(env))
    env.run()
    assert observations == [("before", True), ("during", False), ("after", True)]


def test_crash_outage_and_repair():
    env = Environment()
    mote = SensorMote(env, "m1", Point(0, 0))
    injector = FailureInjector(env)
    injector.schedule_outage(mote, OutageSpec(
        device_id="m1", start=1.0, duration=2.0, kind="crash"))

    def observer(env):
        yield env.timeout(2.0)
        assert mote.state.value == "crashed"

    env.process(observer(env))
    env.run()
    assert mote.online


def test_outage_spec_validation():
    with pytest.raises(DeviceError, match="duration"):
        OutageSpec(device_id="x", start=0, duration=0)
    with pytest.raises(DeviceError, match="kind"):
        OutageSpec(device_id="x", start=0, duration=1, kind="meltdown")


def test_mismatched_device_id_rejected():
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    injector = FailureInjector(env)
    with pytest.raises(DeviceError, match="scheduled on device"):
        injector.schedule_outage(camera, OutageSpec(
            device_id="other", start=0, duration=1))


def test_random_outages_deterministic_and_bounded():
    env = Environment()
    devices = [SensorMote(env, f"m{i}", Point(i, 0)) for i in range(5)]
    injector = FailureInjector(env)
    count = injector.random_outages(
        devices, horizon=100.0, outage_rate_per_device=0.02,
        mean_duration=5.0, rng=random.Random(3))
    assert count == len(injector.scheduled)
    assert count >= 1
    env.run()
    assert all(d.online for d in devices)


def test_random_outages_bad_horizon():
    env = Environment()
    injector = FailureInjector(env)
    with pytest.raises(DeviceError, match="horizon"):
        injector.random_outages([], horizon=0, outage_rate_per_device=0.1,
                                mean_duration=1.0)
