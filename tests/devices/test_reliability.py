"""Hardware-unreliability behaviours: spontaneous blur, offline photos,
phone coverage dropouts."""

import random

import pytest

from repro.errors import DeviceError
from repro.geometry import Point
from repro.devices import MobilePhone, PanTiltZoomCamera
from repro.devices.failures import FailureInjector
from repro.sim import Environment


def run_photo(env, camera, target):
    photos = []

    def proc(env):
        photos.append((yield from camera.take_photo(target, "photos")))

    env.process(proc(env))
    env.run()
    return photos[0]


def test_blur_probability_zero_never_blurs():
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    for _ in range(10):
        assert not run_photo(env, camera, Point(10, 5)).blurred


def test_blur_probability_produces_occasional_blur():
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0),
                               blur_probability=0.5,
                               rng=random.Random(3))
    results = [run_photo(env, camera, Point(10, 5)).blurred
               for _ in range(30)]
    assert any(results) and not all(results)


def test_invalid_blur_probability_rejected():
    env = Environment()
    with pytest.raises(DeviceError, match="blur_probability"):
        PanTiltZoomCamera(env, "cam1", Point(0, 0), blur_probability=1.0)


def test_offline_camera_rejects_take_photo():
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    camera.go_offline()

    def proc(env):
        yield from camera.take_photo(Point(5, 5), "photos")

    env.process(proc(env))
    with pytest.raises(DeviceError, match="offline"):
        env.run()


def test_photo_accounting_updates_busy_seconds():
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    run_photo(env, camera, Point(10, 5))
    assert camera.operations_executed == 1
    assert camera.busy_seconds >= 0.36


def test_coverage_dropout_window():
    env = Environment()
    phone = MobilePhone(env, "p1", Point(0, 0), number="+852")
    injector = FailureInjector(env)
    injector.schedule_coverage_dropout(phone, start=5.0, duration=10.0)
    observations = []

    def observer(env):
        yield env.timeout(4.0)
        observations.append(phone.in_coverage)
        yield env.timeout(6.0)
        observations.append(phone.in_coverage)
        yield env.timeout(10.0)
        observations.append(phone.in_coverage)

    env.process(observer(env))
    env.run()
    assert observations == [True, False, True]
    assert phone.online  # a dropout is not an outage


def test_coverage_dropout_validation():
    env = Environment()
    injector = FailureInjector(env)
    phone = MobilePhone(env, "p1", Point(0, 0), number="+852")
    with pytest.raises(DeviceError, match="duration"):
        injector.schedule_coverage_dropout(phone, start=0, duration=0)
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    with pytest.raises(DeviceError, match="only apply to phones"):
        injector.schedule_coverage_dropout(camera, start=0, duration=1)
