"""Photo-size variants and remaining camera behaviours."""

import pytest

from repro.errors import DeviceError
from repro.geometry import Point
from repro.devices import CameraCalibration, PanTiltZoomCamera
from repro.sim import Environment


def take(env, camera, size):
    photos = []

    def proc(env):
        photos.append((yield from camera.take_photo(Point(10, 0),
                                                    "photos", size)))

    env.process(proc(env))
    env.run()
    return photos[0]


def test_size_affects_exposure_time():
    cal = CameraCalibration()
    durations = {}
    for size in ("small", "medium", "large"):
        env = Environment()
        camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
        start = env.now
        take(env, camera, size)
        durations[size] = env.now - start
    assert durations["small"] < durations["medium"] < durations["large"]
    assert durations["large"] - durations["small"] == pytest.approx(
        cal.capture_seconds["large"] - cal.capture_seconds["small"])


def test_photo_records_its_size():
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    assert take(env, camera, "small").size == "small"


def test_unknown_size_rejected():
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))

    def proc(env):
        yield from camera.take_photo(Point(10, 0), "photos", "gigantic")

    env.process(proc(env))
    with pytest.raises(DeviceError, match="unknown photo size"):
        env.run()


def test_read_sensory_moving_flag():
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    assert camera.read_sensory("moving") is False

    def mover(env):
        from repro.devices.camera import HeadPosition
        yield from camera.op_move_head(HeadPosition(pan=68))

    def observer(env):
        yield env.timeout(0.5)
        assert camera.read_sensory("moving") is True

    env.process(mover(env))
    env.process(observer(env))
    env.run()


def test_photo_log_grows_in_order():
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))

    def proc(env):
        for _ in range(3):
            yield from camera.take_photo(Point(10, 0), "photos")

    env.process(proc(env))
    env.run()
    stamps = [p.taken_at for p in camera.photo_log]
    assert len(stamps) == 3
    assert stamps == sorted(stamps)
