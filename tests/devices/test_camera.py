"""Unit tests for the calibrated PTZ camera simulator."""

import pytest

from repro.errors import ActionFailedError, DeviceError
from repro.geometry import Point
from repro.devices import CameraCalibration, HeadPosition, PanTiltZoomCamera
from repro.sim import Environment


def make_camera(env, device_id="cam1", location=Point(0, 0), **kwargs):
    return PanTiltZoomCamera(env, device_id, location, **kwargs)


def run_photo(env, camera, target, directory="photos", size="medium"):
    results = []

    def proc(env):
        photo = yield from camera.take_photo(target, directory, size)
        results.append(photo)

    env.process(proc(env))
    env.run()
    return results[0]


# ----------------------------------------------------------------------
# Calibration: the paper's photo() cost interval [0.36, 5.36]
# ----------------------------------------------------------------------

def test_fixed_photo_cost_matches_paper_minimum():
    cal = CameraCalibration()
    assert cal.fixed_photo_seconds("medium") == pytest.approx(0.36)


def test_max_movement_matches_paper_range():
    cal = CameraCalibration()
    assert cal.max_movement_seconds() == pytest.approx(5.0)
    # Max photo cost = fixed + movement = 5.36 s, the paper's upper bound.
    assert cal.fixed_photo_seconds() + cal.max_movement_seconds() == (
        pytest.approx(5.36))


def test_photo_on_target_costs_minimum():
    env = Environment()
    camera = make_camera(env)
    target = Point(10, 0)  # directly along the initial pan=0 bearing
    # Pre-aim the head exactly at the target.
    camera._motion.origin = camera.aim_for(target)
    camera._motion.target = camera.aim_for(target)
    start = env.now
    photo = run_photo(env, camera, target)
    assert env.now - start == pytest.approx(0.36)
    assert photo.ok


def test_photo_cost_within_paper_interval():
    env = Environment()
    camera = make_camera(env)
    start = env.now
    photo = run_photo(env, camera, Point(5, 5))
    elapsed = env.now - start
    assert 0.36 <= elapsed <= 5.36
    assert photo.ok


# ----------------------------------------------------------------------
# Head movement physics
# ----------------------------------------------------------------------

def test_movement_time_slowest_axis_dominates():
    cal = CameraCalibration()
    a = HeadPosition(pan=0, tilt=0, zoom=1)
    b = HeadPosition(pan=68, tilt=0, zoom=1)       # 1 s of pan
    c = HeadPosition(pan=0, tilt=27, zoom=1)       # 1 s of tilt
    d = HeadPosition(pan=68, tilt=54, zoom=1)      # pan 1 s, tilt 2 s
    assert a.movement_seconds(b, cal) == pytest.approx(1.0)
    assert a.movement_seconds(c, cal) == pytest.approx(1.0)
    assert a.movement_seconds(d, cal) == pytest.approx(2.0)


def test_interpolation_midpoint():
    a = HeadPosition(pan=0, tilt=0, zoom=1)
    b = HeadPosition(pan=100, tilt=50, zoom=5)
    mid = a.interpolate(b, 0.5)
    assert mid.pan == pytest.approx(50)
    assert mid.tilt == pytest.approx(25)
    assert mid.zoom == pytest.approx(3)


def test_interpolation_clamps_fraction():
    a = HeadPosition()
    b = HeadPosition(pan=10)
    assert a.interpolate(b, 2.0).pan == pytest.approx(10)
    assert a.interpolate(b, -1.0).pan == pytest.approx(0)


def test_head_position_tracks_in_flight_motion():
    env = Environment()
    camera = make_camera(env)
    target = HeadPosition(pan=68, tilt=0, zoom=1)  # 1 s of pan

    def mover(env):
        yield from camera.op_move_head(target)

    def observer(env):
        yield env.timeout(0.5)
        assert camera.head_moving
        assert camera.head_position().pan == pytest.approx(34.0)

    env.process(mover(env))
    env.process(observer(env))
    env.run()
    assert not camera.head_moving
    assert camera.head_position().pan == pytest.approx(68.0)


# ----------------------------------------------------------------------
# Aiming and coverage
# ----------------------------------------------------------------------

def test_aim_pan_follows_bearing():
    env = Environment()
    camera = make_camera(env)
    assert camera.aim_for(Point(10, 0)).pan == pytest.approx(0.0)
    assert camera.aim_for(Point(0, 10)).pan == pytest.approx(90.0)


def test_aim_zoom_scales_with_distance():
    env = Environment()
    camera = make_camera(env)
    near = camera.aim_for(Point(1, 0))
    far = camera.aim_for(Point(40, 0))
    assert near.zoom < far.zoom


def test_aim_tilt_looks_down_more_when_close():
    env = Environment()
    camera = make_camera(env)
    near = camera.aim_for(Point(1, 0))
    far = camera.aim_for(Point(40, 0))
    assert near.tilt < far.tilt < 0


def test_coverage_respects_range():
    env = Environment()
    camera = make_camera(env, view_range=20.0)
    assert camera.covers(Point(10, 0))
    assert not camera.covers(Point(30, 0))


def test_photo_outside_coverage_fails():
    env = Environment()
    camera = make_camera(env, view_range=5.0)
    results = []

    def proc(env):
        try:
            yield from camera.take_photo(Point(100, 0), "photos")
        except ActionFailedError as exc:
            results.append(exc.reason)

    env.process(proc(env))
    env.run()
    assert results == ["no_coverage"]


# ----------------------------------------------------------------------
# Unsynchronized interference (Section 6.2 failure modes)
# ----------------------------------------------------------------------

def test_concurrent_photos_interfere_without_locking():
    env = Environment()
    camera = make_camera(env)
    photos = []

    def shoot(env, target, delay):
        yield env.timeout(delay)
        photo = yield from camera.take_photo(target, "photos")
        photos.append(photo)

    # Second request arrives while the first is still slewing the head.
    env.process(shoot(env, Point(10, 10), 0.0))
    env.process(shoot(env, Point(-10, -10), 0.3))
    env.run()
    assert len(photos) == 2
    first = min(photos, key=lambda p: p.taken_at)
    # The first photo was hijacked: blurred and/or aimed wrong.
    assert not first.ok


def test_sequential_photos_do_not_interfere():
    env = Environment()
    camera = make_camera(env)
    photos = []

    def shoot(env, target):
        photo = yield from camera.take_photo(target, "photos")
        photos.append(photo)

    def driver(env):
        yield from shoot(env, Point(10, 10))
        yield from shoot(env, Point(-10, -10))

    env.process(driver(env))
    env.run()
    assert len(photos) == 2
    assert all(p.ok for p in photos)


def test_connection_refused_when_overloaded():
    env = Environment()
    camera = make_camera(env)
    failures = []

    def shoot(env, target):
        try:
            yield from camera.take_photo(target, "photos")
        except ActionFailedError as exc:
            failures.append(exc.reason)

    for _ in range(8):  # limit is 4 concurrent connections
        env.process(shoot(env, Point(10, 10)))
    env.run()
    assert failures.count("timeout") >= 1


def test_release_without_connection_rejected():
    env = Environment()
    camera = make_camera(env)
    with pytest.raises(DeviceError, match="no connection"):
        camera.release_connection()


# ----------------------------------------------------------------------
# Status, attributes, operations
# ----------------------------------------------------------------------

def test_physical_status_snapshot():
    env = Environment()
    camera = make_camera(env)
    status = camera.physical_status()
    assert set(status) == {"pan", "tilt", "zoom"}


def test_static_attributes_include_ip():
    env = Environment()
    camera = make_camera(env, ip_address="192.168.0.90")
    row = camera.static_attributes()
    assert row["ip"] == "192.168.0.90"
    assert row["id"] == "cam1"


def test_read_sensory_zoom():
    env = Environment()
    camera = make_camera(env)
    assert camera.read_sensory("zoom") == pytest.approx(1.0)


def test_read_unknown_sensory_raises():
    env = Environment()
    camera = make_camera(env)
    with pytest.raises(DeviceError, match="no sensory attribute"):
        camera.read_sensory("altitude")


def test_execute_unknown_operation_raises():
    env = Environment()
    camera = make_camera(env)

    def proc(env):
        yield from camera.execute("teleport")

    env.process(proc(env))
    with pytest.raises(DeviceError, match="no operation"):
        env.run()


def test_execute_records_outcome_and_accounting():
    env = Environment()
    camera = make_camera(env)
    outcomes = []

    def proc(env):
        outcome = yield from camera.execute("store")
        outcomes.append(outcome)

    env.process(proc(env))
    env.run()
    outcome = outcomes[0]
    assert outcome.succeeded
    assert outcome.duration == pytest.approx(0.10)
    assert camera.operations_executed == 1
    assert camera.busy_seconds == pytest.approx(0.10)


def test_offline_camera_rejects_operations():
    env = Environment()
    camera = make_camera(env)
    camera.go_offline()

    def proc(env):
        yield from camera.execute("store")

    env.process(proc(env))
    with pytest.raises(DeviceError, match="offline"):
        env.run()


def test_photo_pathname_is_deterministic():
    env = Environment()
    camera = make_camera(env)
    photo = run_photo(env, camera, Point(5, 5), directory="photos/admin")
    assert photo.pathname.startswith("photos/admin/cam1_")
    assert photo.pathname.endswith(".jpg")
