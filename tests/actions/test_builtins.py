"""Execution tests for the built-in action library on simulated devices."""

import pytest

from repro.errors import QueryError
from repro.geometry import Point
from repro.devices import MobilePhone, PanTiltZoomCamera, SensorMote
from repro.actions import ActionRegistry, install_builtin_actions
from repro.actions.builtins import DEFAULT_PHOTO_KB
from repro.cost import CostModel
from repro.profiles.defaults import (
    camera_cost_table,
    phone_cost_table,
    sensor_cost_table,
)
from repro.sim import Environment


@pytest.fixture
def stack():
    env = Environment()
    registry = ActionRegistry()
    cost_model = CostModel()
    cost_model.register_cost_table(camera_cost_table())
    cost_model.register_cost_table(sensor_cost_table())
    cost_model.register_cost_table(phone_cost_table())
    install_builtin_actions(registry, cost_model)
    # sendphoto is the reference user-defined action; register it the
    # direct way for these execution tests.
    from repro.actions.builtins import sendphoto_definition
    sendphoto = sendphoto_definition()
    registry.register(sendphoto)
    cost_model.register_action(sendphoto.profile, sendphoto.resolver)
    return env, registry, cost_model


def run(env, generator):
    box = []

    def proc(env):
        box.append((yield from generator))

    env.process(proc(env))
    env.run()
    return box[0]


def test_photo_action_takes_photo(stack):
    env, registry, _ = stack
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    photo = run(env, registry.get("photo").execute(
        camera, {"target": Point(5, 5), "directory": "photos/admin"}))
    assert photo.ok
    assert camera.photo_log == [photo]
    assert photo.directory == "photos/admin"


def test_photo_estimate_matches_actual(stack):
    env, registry, cost_model = stack
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    target = Point(-7, 3)
    estimate = cost_model.estimate("photo", camera, {"target": target})
    start = env.now
    run(env, registry.get("photo").execute(
        camera, {"target": target, "directory": "photos"}))
    assert env.now - start == pytest.approx(estimate.seconds)


def test_photo_on_wrong_device_type_rejected(stack):
    env, registry, _ = stack
    mote = SensorMote(env, "m1", Point(0, 0))
    with pytest.raises(QueryError, match="operates 'camera'"):
        run(env, registry.get("photo").execute(
            mote, {"target": Point(1, 1), "directory": "x"}))


def test_sendphoto_delivers_mms(stack):
    env, registry, _ = stack
    phone = MobilePhone(env, "p1", Point(0, 0), number="+85291234567")
    message = run(env, registry.get("sendphoto").execute(
        phone, {"phone_no": "+85291234567",
                "photo_pathname": "photos/cam1_0_360.jpg"}))
    assert message.kind == "mms"
    assert phone.inbox == [message]


def test_sendphoto_estimate_matches_actual(stack):
    env, registry, cost_model = stack
    phone = MobilePhone(env, "p1", Point(0, 0), number="+852")
    args = {"phone_no": "+852", "photo_pathname": "x.jpg"}
    estimate = cost_model.estimate("sendphoto", phone, args)
    start = env.now
    run(env, registry.get("sendphoto").execute(phone, args))
    # connect (0.3) + MMS fixed + per-kB transfer
    assert env.now - start == pytest.approx(estimate.seconds)
    assert estimate.quantities["mms_kilobytes"] == DEFAULT_PHOTO_KB


def test_beep_estimate_scales_with_hop_depth(stack):
    env, registry, cost_model = stack
    shallow = SensorMote(env, "s1", Point(0, 0), hop_depth=1)
    deep = SensorMote(env, "s2", Point(0, 0), hop_depth=4)
    c_shallow = cost_model.estimate("beep", shallow, {}).seconds
    c_deep = cost_model.estimate("beep", deep, {}).seconds
    assert c_deep - c_shallow == pytest.approx(3 * 0.02)


def test_beep_executes_on_mote(stack):
    env, registry, _ = stack
    mote = SensorMote(env, "s1", Point(0, 0))
    before = mote.battery_volts
    run(env, registry.get("beep").execute(mote, {}))
    assert mote.battery_volts < before
    assert mote.operations_executed == 2  # connect + beep


def test_blink_estimate_matches_actual(stack):
    env, registry, cost_model = stack
    mote = SensorMote(env, "s1", Point(0, 0), hop_depth=2)
    estimate = cost_model.estimate("blink", mote, {})
    start = env.now
    run(env, registry.get("blink").execute(mote, {}))
    assert env.now - start == pytest.approx(estimate.seconds)
