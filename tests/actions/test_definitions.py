"""Unit tests for action definitions, binding and the registries."""

import pytest

from repro.errors import BindingError, QueryError, RegistrationError
from repro.geometry import Point
from repro.actions import (
    ActionDefinition,
    ActionLibrary,
    ActionParameter,
    ActionRegistry,
)
from repro.actions.builtins import builtin_definitions, photo_profile, photo_resolver
from repro.profiles.action_profile import ActionProfile, OperationRef, seq


def noop_impl(device, args):
    return None
    yield  # pragma: no cover


def make_definition(name="photo", device_type="camera", **kwargs):
    profile = kwargs.pop("profile", None) or ActionProfile(
        name, device_type, seq(OperationRef("connect")))
    return ActionDefinition(
        name=name,
        device_type=device_type,
        parameters=kwargs.pop("parameters", ()),
        implementation=noop_impl,
        profile=profile,
        resolver=lambda device, status, args: ({}, dict(status)),
        **kwargs,
    )


# ----------------------------------------------------------------------
# Parameters and binding
# ----------------------------------------------------------------------

def test_parameter_type_validation():
    with pytest.raises(RegistrationError, match="unknown type"):
        ActionParameter("x", "Decimal")


def test_parameter_accepts():
    assert ActionParameter("n", "String").accepts("hello")
    assert not ActionParameter("n", "String").accepts(5)
    assert ActionParameter("n", "Int").accepts(5)
    assert not ActionParameter("n", "Int").accepts(True)
    assert ActionParameter("n", "Float").accepts(2.5)
    assert ActionParameter("n", "Float").accepts(2)
    assert ActionParameter("n", "Bool").accepts(False)
    assert ActionParameter("n", "Location").accepts(Point(1, 2))
    assert not ActionParameter("n", "Location").accepts("somewhere")


def test_bind_validates_arguments():
    definition = make_definition(parameters=(
        ActionParameter("phone_no", "String"),
        ActionParameter("photo_pathname", "String"),
    ))
    bound = definition.bind({"phone_no": "+852", "photo_pathname": "x.jpg"})
    assert bound == {"phone_no": "+852", "photo_pathname": "x.jpg"}


def test_bind_missing_argument():
    definition = make_definition(parameters=(
        ActionParameter("phone_no", "String"),))
    with pytest.raises(QueryError, match="missing arguments"):
        definition.bind({})


def test_bind_unknown_argument():
    definition = make_definition(parameters=())
    with pytest.raises(QueryError, match="unknown arguments"):
        definition.bind({"surprise": 1})


def test_bind_type_mismatch():
    definition = make_definition(parameters=(
        ActionParameter("count", "Int"),))
    with pytest.raises(QueryError, match="expects Int"):
        definition.bind({"count": "three"})


def test_duplicate_parameter_names_rejected():
    with pytest.raises(RegistrationError, match="duplicate parameter"):
        make_definition(parameters=(
            ActionParameter("x", "Int"), ActionParameter("x", "Int")))


def test_profile_name_mismatch_rejected():
    profile = ActionProfile("other", "camera", seq(OperationRef("connect")))
    with pytest.raises(RegistrationError, match="profile for"):
        make_definition(name="photo", profile=profile)


def test_profile_device_type_mismatch_rejected():
    profile = ActionProfile("photo", "phone", seq(OperationRef("connect")))
    with pytest.raises(RegistrationError, match="targets"):
        make_definition(name="photo", device_type="camera", profile=profile)


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------

def test_registry_register_and_get():
    registry = ActionRegistry()
    definition = make_definition()
    registry.register(definition)
    assert registry.get("photo") is definition
    assert "photo" in registry
    assert len(registry) == 1


def test_registry_duplicate_rejected():
    registry = ActionRegistry()
    registry.register(make_definition())
    with pytest.raises(RegistrationError, match="already registered"):
        registry.register(make_definition())


def test_registry_unknown_action():
    with pytest.raises(BindingError, match="unknown action"):
        ActionRegistry().get("nothing")


def test_library_install_and_resolve():
    library = ActionLibrary()
    library.install("lib/users/sendphoto.dll", noop_impl)
    assert "lib/users/sendphoto.dll" in library
    assert library.resolve("lib/users/sendphoto.dll") is noop_impl


def test_library_missing_path():
    with pytest.raises(BindingError, match="no implementation"):
        ActionLibrary().resolve("lib/ghost.dll")


def test_library_duplicate_path_rejected():
    library = ActionLibrary()
    library.install("lib/x.dll", noop_impl)
    with pytest.raises(RegistrationError, match="already has"):
        library.install("lib/x.dll", noop_impl)


def test_builtin_definitions_cover_paper_examples():
    names = {d.name for d in builtin_definitions()}
    assert names == {"photo", "beep", "blink"}
    for definition in builtin_definitions():
        assert definition.builtin


def test_sendphoto_is_the_reference_user_defined_action():
    from repro.actions.builtins import sendphoto_definition
    definition = sendphoto_definition()
    assert not definition.builtin
    assert definition.library_path == "lib/users/sendphoto.dll"
    assert definition.profile_path == "profiles/users/sendphoto.xml"
    assert definition.device_parameters[0].device_attribute == "number"
