"""Calibration harness tests: measured tables match shipped defaults."""

import pytest

from repro.errors import ProfileError
from repro.geometry import Point
from repro.devices import CameraCalibration, PanTiltZoomCamera
from repro.cost.calibration import Calibrator, _fit_line, calibrate_camera
from repro.profiles.defaults import camera_cost_table
from repro.sim import Environment


def test_fit_line_exact():
    intercept, slope = _fit_line([(0, 1.0), (10, 2.0), (20, 3.0)])
    assert intercept == pytest.approx(1.0)
    assert slope == pytest.approx(0.1)


def test_fit_line_needs_two_points():
    with pytest.raises(ProfileError, match="two points"):
        _fit_line([(0, 1.0)])


def test_fit_line_rejects_constant_x():
    with pytest.raises(ProfileError, match="constant quantities"):
        _fit_line([(5, 1.0), (5, 2.0)])


def test_time_trial_measures_virtual_seconds():
    env = Environment()
    calibrator = Calibrator(env)

    def sleep_trial(quantity):
        yield env.timeout(0.25 * quantity)

    measurement = calibrator.time_trial("sleep", 4.0, sleep_trial)
    assert measurement.seconds == pytest.approx(1.0)
    assert calibrator.measurements == [measurement]


def test_fit_fixed_averages_trials():
    env = Environment()
    calibrator = Calibrator(env)

    def trial(_quantity):
        yield env.timeout(0.5)

    cost = calibrator.fit_fixed("op", trial, trials=3)
    assert cost.fixed_seconds == pytest.approx(0.5)
    assert cost.per_unit_seconds == 0.0


def test_fit_linear_rejects_negative_slope():
    env = Environment()
    calibrator = Calibrator(env)

    def shrinking(quantity):
        yield env.timeout(max(1.0 - quantity * 0.1, 0.01))

    with pytest.raises(ProfileError, match="faster"):
        calibrator.fit_linear("weird", "units", [1, 5, 9], shrinking)


def test_calibrated_camera_table_matches_defaults():
    """The headline: timing the simulator recovers the shipped costs."""
    env = Environment()
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    measured = calibrate_camera(env, camera)
    reference = camera_cost_table()
    for name, expected in reference.operations.items():
        fitted = measured.operation(name)
        assert fitted.fixed_seconds == pytest.approx(
            expected.fixed_seconds, abs=1e-6), name
        assert fitted.per_unit_seconds == pytest.approx(
            expected.per_unit_seconds, abs=1e-9), name


def test_calibration_tracks_nonstandard_hardware():
    """A camera with a slower head yields a different, correct table."""
    env = Environment()
    slow = CameraCalibration(pan_speed=34.0)  # half the pan speed
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0), calibration=slow)
    measured = calibrate_camera(env, camera)
    assert measured.operation("pan").per_unit_seconds == pytest.approx(
        1.0 / 34.0)
    # Everything else unchanged.
    assert measured.operation("tilt").per_unit_seconds == pytest.approx(
        1.0 / 27.0)
