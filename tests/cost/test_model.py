"""Unit tests for the cost model, including sequence-dependent chains."""

import pytest

from repro.errors import ProfileError, RegistrationError
from repro.geometry import Point
from repro.devices import PanTiltZoomCamera
from repro.cost import CostModel
from repro.actions.builtins import photo_profile, photo_resolver
from repro.profiles.action_profile import ActionProfile, OperationRef, seq
from repro.profiles.defaults import camera_cost_table
from repro.sim import Environment


@pytest.fixture
def model():
    model = CostModel()
    model.register_cost_table(camera_cost_table())
    model.register_action(photo_profile(), photo_resolver)
    return model


@pytest.fixture
def camera():
    return PanTiltZoomCamera(Environment(), "cam1", Point(0, 0))


def test_photo_estimate_from_rest(model, camera):
    # Target straight ahead: pan 0, only tilt/zoom move.
    target = Point(10, 0)
    estimate = model.estimate("photo", camera, {"target": target})
    aimed = camera.aim_for(target)
    expected_move = max(abs(aimed.tilt) / 27.0, abs(aimed.zoom - 1.0) / 3.0)
    assert estimate.seconds == pytest.approx(0.36 + expected_move)


def test_estimate_matches_simulated_execution(model, camera):
    """The core accuracy claim: estimate == actual device time."""
    env = camera.env
    target = Point(5, 8)
    estimate = model.estimate("photo", camera, {"target": target})
    start = env.now

    def proc(env):
        yield from camera.take_photo(target, "photos")

    env.process(proc(env))
    env.run()
    assert env.now - start == pytest.approx(estimate.seconds)


def test_post_status_is_aimed_pose(model, camera):
    target = Point(0, 10)
    estimate = model.estimate("photo", camera, {"target": target})
    aimed = camera.aim_for(target)
    assert estimate.post_status["pan"] == pytest.approx(aimed.pan)
    assert estimate.post_status["tilt"] == pytest.approx(aimed.tilt)


def test_sequence_chaining_changes_costs(model, camera):
    """Second photo at the same target is cheap after the first aimed."""
    target = Point(0, 10)  # 90 degrees of pan from rest
    estimates = model.estimate_sequence(
        "photo", camera, [{"target": target}, {"target": target}])
    assert estimates[0].seconds > 0.36 + 1.0  # big first move
    assert estimates[1].seconds == pytest.approx(0.36)  # already aimed


def test_sequence_order_matters(model, camera):
    """a->b->a costs more than a->a->b: sequence-dependence."""
    a, b = Point(10, 0), Point(-10, 0)
    aba = sum(e.seconds for e in model.estimate_sequence(
        "photo", camera, [{"target": a}, {"target": b}, {"target": a}]))
    aab = sum(e.seconds for e in model.estimate_sequence(
        "photo", camera, [{"target": a}, {"target": a}, {"target": b}]))
    assert aba > aab


def test_explicit_status_overrides_live(model, camera):
    target = Point(10, 0)
    aimed = camera.aim_for(target)
    status = {"pan": aimed.pan, "tilt": aimed.tilt, "zoom": aimed.zoom}
    estimate = model.estimate("photo", camera, {"target": target},
                              status=status)
    assert estimate.seconds == pytest.approx(0.36)


def test_unknown_action_raises(model, camera):
    with pytest.raises(ProfileError, match="no profile"):
        model.estimate("warp", camera, {})


def test_duplicate_cost_table_rejected(model):
    with pytest.raises(RegistrationError, match="already registered"):
        model.register_cost_table(camera_cost_table())


def test_duplicate_action_rejected(model):
    with pytest.raises(RegistrationError, match="already registered"):
        model.register_action(photo_profile(), photo_resolver)


def test_register_action_without_cost_table_rejected():
    model = CostModel()
    with pytest.raises(ProfileError, match="no cost table"):
        model.register_action(photo_profile(), photo_resolver)


def test_profile_with_unknown_operation_rejected_at_registration():
    model = CostModel()
    model.register_cost_table(camera_cost_table())
    bad = ActionProfile("bad", "camera", seq(OperationRef("levitate")))
    with pytest.raises(ProfileError, match="levitate"):
        model.register_action(bad, photo_resolver)


def test_resolver_missing_quantity_detected(model, camera):
    def broken_resolver(device, status, args):
        return {"pan_degrees": 1.0}, {}

    profile = ActionProfile(
        "photo2", "camera",
        seq(OperationRef("pan", quantity="pan_degrees"),
            OperationRef("tilt", quantity="tilt_degrees")))
    model.register_action(profile, broken_resolver)
    with pytest.raises(ProfileError, match="tilt_degrees"):
        model.estimate("photo2", camera, {})


def test_has_action(model):
    assert model.has_action("photo", "camera")
    assert not model.has_action("photo", "phone")
