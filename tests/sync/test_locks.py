"""Unit tests for the device locking mechanism (paper Section 4)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment
from repro.sync import DeviceLockManager, LockToken


def test_tokens_are_unique():
    a, b = LockToken("req1"), LockToken("req1")
    assert a != b


def test_acquire_release_cycle():
    env = Environment()
    manager = DeviceLockManager(env)
    token = LockToken("req1")

    def proc(env):
        yield from manager.acquire("cam1", token)
        assert manager.is_locked("cam1")
        manager.release("cam1", token)
        assert not manager.is_locked("cam1")

    env.process(proc(env))
    env.run()


def test_second_action_waits_for_unlock():
    env = Environment()
    manager = DeviceLockManager(env)
    serviced = []

    def action(env, name, hold):
        token = LockToken(name)
        yield from manager.acquire("cam1", token)
        serviced.append((name, env.now))
        yield env.timeout(hold)
        manager.release("cam1", token)

    env.process(action(env, "first", 2.0))
    env.process(action(env, "second", 1.0))
    env.run()
    assert serviced == [("first", 0.0), ("second", 2.0)]


def test_locks_are_per_device():
    env = Environment()
    manager = DeviceLockManager(env)
    serviced = []

    def action(env, device, name):
        token = LockToken(name)
        yield from manager.acquire(device, token)
        serviced.append((name, env.now))
        yield env.timeout(1.0)
        manager.release(device, token)

    env.process(action(env, "cam1", "on_cam1"))
    env.process(action(env, "cam2", "on_cam2"))
    env.run()
    # Different devices do not serialize.
    assert serviced == [("on_cam1", 0.0), ("on_cam2", 0.0)]


def test_try_acquire_skips_busy_device():
    env = Environment()
    manager = DeviceLockManager(env)
    outcomes = []

    def holder(env):
        token = LockToken("holder")
        yield from manager.acquire("cam1", token)
        yield env.timeout(5.0)
        manager.release("cam1", token)

    def opportunist(env):
        yield env.timeout(1.0)
        outcomes.append(manager.try_acquire("cam1", LockToken("opportunist")))
        token = LockToken("opportunist2")
        yield env.timeout(5.0)
        outcomes.append(manager.try_acquire("cam1", token))
        manager.release("cam1", token)

    env.process(holder(env))
    env.process(opportunist(env))
    env.run()
    assert outcomes == [False, True]


def test_contention_counters():
    env = Environment()
    manager = DeviceLockManager(env)

    def action(env, name, hold):
        token = LockToken(name)
        yield from manager.acquire("cam1", token)
        yield env.timeout(hold)
        manager.release("cam1", token)

    env.process(action(env, "a", 1.0))
    env.process(action(env, "b", 1.0))
    env.run()
    assert manager.acquisitions == 2
    assert manager.contended_acquisitions == 1


def test_release_by_non_holder_rejected():
    env = Environment()
    manager = DeviceLockManager(env)
    token = LockToken("a")

    def proc(env):
        yield from manager.acquire("cam1", token)
        with pytest.raises(SimulationError, match="not the holder"):
            manager.release("cam1", LockToken("b"))
        manager.release("cam1", token)

    env.process(proc(env))
    env.run()


def test_cancel_queued_request():
    env = Environment()
    manager = DeviceLockManager(env)
    waiter_token = LockToken("waiter")
    holder_token = LockToken("holder")

    def holder(env):
        yield from manager.acquire("cam1", holder_token)
        yield env.timeout(2.0)
        assert manager.cancel("cam1", waiter_token) is True
        manager.release("cam1", holder_token)

    def waiter(env):
        yield env.timeout(1.0)
        manager._lock_for("cam1").acquire(waiter_token)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert not manager.is_locked("cam1")


def test_recover_frees_a_dead_holders_lock():
    env = Environment()
    manager = DeviceLockManager(env)
    dead_token = LockToken("dead")
    serviced = []

    def dead_holder(env):
        yield from manager.acquire("cam1", dead_token)
        # Never releases: the executor died mid-action.

    def waiter(env):
        token = LockToken("waiter")
        yield from manager.acquire("cam1", token)
        serviced.append(env.now)
        manager.release("cam1", token)

    def operator(env):
        yield env.timeout(5.0)
        assert manager.recover("cam1") is dead_token

    env.process(dead_holder(env))
    env.process(waiter(env))
    env.process(operator(env))
    env.run()
    assert serviced == [5.0]
    assert manager.recoveries == 1
    assert not manager.is_locked("cam1")


def test_recover_on_free_lock_is_a_noop():
    env = Environment()
    manager = DeviceLockManager(env)
    assert manager.recover("cam1") is None
    assert manager.recoveries == 0


def test_lease_expiry_auto_recovers_the_lock():
    env = Environment()
    manager = DeviceLockManager(env)
    serviced = []

    def dead_holder(env):
        yield from manager.acquire("cam1", LockToken("dead"),
                                   lease_seconds=3.0)
        # Never releases; the watchdog evicts it at t=3.

    def waiter(env):
        token = LockToken("waiter")
        yield from manager.acquire("cam1", token)
        serviced.append(env.now)
        manager.release("cam1", token)

    env.process(dead_holder(env))
    env.process(waiter(env))
    env.run()
    assert serviced == [3.0]
    assert manager.recoveries == 1


def test_release_after_recovery_is_silent():
    env = Environment()
    manager = DeviceLockManager(env)
    slow_token = LockToken("slow")
    serviced = []

    def slow_holder(env):
        yield from manager.acquire("cam1", slow_token, lease_seconds=2.0)
        yield env.timeout(5.0)  # outlives the lease but does finish
        manager.release("cam1", slow_token)

    def waiter(env):
        token = LockToken("waiter")
        yield from manager.acquire("cam1", token)
        serviced.append(env.now)
        yield env.timeout(10.0)
        manager.release("cam1", token)

    env.process(slow_holder(env))
    env.process(waiter(env))
    env.run()
    # The waiter got the lock at lease expiry, and the slow holder's
    # late release neither raised nor stole the waiter's lock.
    assert serviced == [2.0]
    assert manager.recoveries == 1


def test_lease_does_not_fire_after_normal_release():
    env = Environment()
    manager = DeviceLockManager(env)

    def holder(env):
        token = LockToken("holder")
        yield from manager.acquire("cam1", token, lease_seconds=10.0)
        yield env.timeout(1.0)
        manager.release("cam1", token)

    def reacquirer(env):
        yield env.timeout(2.0)
        token = LockToken("next")
        yield from manager.acquire("cam1", token)
        yield env.timeout(20.0)  # still holding when the old lease fires
        manager.release("cam1", token)

    env.process(holder(env))
    env.process(reacquirer(env))
    env.run()
    # The first holder released in time: its watchdog must not evict
    # the unrelated current holder.
    assert manager.recoveries == 0


def test_queue_length_reporting():
    env = Environment()
    manager = DeviceLockManager(env)

    def holder(env):
        token = LockToken("holder")
        yield from manager.acquire("cam1", token)
        yield env.timeout(3.0)
        manager.release("cam1", token)

    def waiter(env, name):
        token = LockToken(name)
        yield from manager.acquire("cam1", token)
        manager.release("cam1", token)

    def observer(env):
        yield env.timeout(1.0)
        assert manager.queue_length("cam1") == 2

    env.process(holder(env))
    env.process(waiter(env, "w1"))
    env.process(waiter(env, "w2"))
    env.process(observer(env))
    env.run()
