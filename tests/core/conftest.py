"""Fixtures: a pervasive-lab engine like the paper's testbed."""

import pytest

from repro import (
    AortaEngine,
    EngineConfig,
    Environment,
    MobilePhone,
    PanTiltZoomCamera,
    Point,
    SensorMote,
)
from repro.network import LinkModel

#: Lossless links for deterministic integration tests.
LOSSLESS = {
    "camera": LinkModel(latency_seconds=0.005),
    "sensor": LinkModel(latency_seconds=0.02),
    "phone": LinkModel(latency_seconds=0.3),
}

FIGURE_1 = '''CREATE AQ snapshot AS
SELECT photo(c.ip, s.loc, "photos/admin")
FROM sensor s, camera c
WHERE s.accel_x > 500 AND coverage(c.id, s.loc)'''


def build_lab(config=None, n_motes=3, links=None):
    """Two ceiling cameras plus motes at places of interest."""
    env = Environment()
    engine = AortaEngine(env, config=config,
                         links=dict(links or LOSSLESS))
    engine.add_device(PanTiltZoomCamera(env, "cam1", Point(0, 0),
                                        ip_address="10.0.0.1"))
    engine.add_device(PanTiltZoomCamera(env, "cam2", Point(20, 0),
                                        facing=180.0,
                                        ip_address="10.0.0.2"))
    for i in range(n_motes):
        engine.add_device(SensorMote(
            env, f"mote{i + 1}", Point(4.0 * (i + 1), 3.0),
            noise_amplitude=0.0))
    engine.add_device(MobilePhone(env, "phone1", Point(0, 0),
                                  number="+85290000000"))
    return engine


@pytest.fixture
def engine():
    return build_lab()
