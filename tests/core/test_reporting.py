"""Tests for the engine's observability surfaces."""

import pytest

from repro import SensorStimulus
from tests.core.conftest import FIGURE_1


def test_device_report_before_any_work(engine):
    report = engine.device_report()
    assert set(report) == {"cam1", "cam2", "mote1", "mote2", "mote3",
                           "phone1"}
    for entry in report.values():
        assert entry["operations"] == 0
        assert entry["busy_seconds"] == 0.0
        assert entry["state"] == "online"


def test_device_report_tracks_camera_work(engine):
    engine.execute(FIGURE_1)
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=900.0))
    engine.start()
    engine.run(until=30.0)
    report = engine.device_report()
    worked = engine.completed_requests[0].assigned_device
    assert report[worked]["operations"] > 0
    assert report[worked]["busy_seconds"] > 0.36 - 1e-9
    assert 0 < report[worked]["utilization"] < 1


def test_device_report_reflects_state(engine):
    engine.comm.registry.get("cam2").crash()
    assert engine.device_report()["cam2"]["state"] == "crashed"


def test_statistics_consistent_with_report(engine):
    engine.execute(FIGURE_1)
    mote = engine.comm.registry.get("mote2")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=900.0))
    engine.start()
    engine.run(until=30.0)
    stats = engine.statistics()
    assert stats["requests_serviced"] == 1
    assert stats["requests_failed"] == 0
    assert stats["requests_completed"] == 1
    # The mote did scan work (read_attribute exchanges are device-free,
    # but probe/photo work shows on the chosen camera).
    report = engine.device_report()
    busy_cameras = [d for d in ("cam1", "cam2")
                    if report[d]["busy_seconds"] > 0]
    assert len(busy_cameras) == 1


def test_statistics_counters_match_completion_log(engine):
    """The O(1) dispatcher counters agree with a recount of the log."""
    engine.execute(FIGURE_1)
    for mote_id in ("mote1", "mote2", "mote3"):
        engine.comm.registry.get(mote_id).inject(
            SensorStimulus("accel_x", start=2.0, duration=2.0,
                           magnitude=900.0))
    engine.comm.registry.get("cam2").crash()
    engine.start()
    engine.run(until=60.0)
    stats = engine.statistics()
    from repro.actions.request import RequestState
    completed = engine.completed_requests
    assert stats["requests_serviced"] == sum(
        1 for r in completed if r.state is RequestState.SERVICED)
    assert stats["requests_failed"] == sum(
        1 for r in completed if r.state is RequestState.FAILED)
    assert stats["requests_completed"] == len(completed)
    assert stats["requests_completed"] == (
        stats["requests_serviced"] + stats["requests_failed"])


def test_dispatch_reports_expose_cache_stats(engine):
    """Batches scheduled through the engine oracle report cache stats."""
    engine.execute(FIGURE_1)
    engine.comm.registry.get("mote1").inject(
        SensorStimulus("accel_x", start=2.0, duration=2.0,
                       magnitude=900.0))
    engine.start()
    engine.run(until=30.0)
    reports = [r for r in engine.dispatcher.reports if r.scheduled]
    assert reports
    for report in reports:
        assert report.cache_stats is not None
        assert report.cache_stats["misses"] > 0
