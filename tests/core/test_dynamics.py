"""Integration tests: dynamic device membership and failures mid-run.

Devices "may join, move around, or leave the network dynamically in a
way unpredictable to the system" (Section 4) — the engine must keep
working through all of it.
"""

import pytest

from repro import PanTiltZoomCamera, Point, SensorMote, SensorStimulus
from repro.actions.request import RequestState
from repro.devices.failures import FailureInjector, OutageSpec
from tests.core.conftest import FIGURE_1, build_lab


def test_camera_joining_mid_run_becomes_candidate(engine):
    engine.execute(FIGURE_1)
    mote = engine.comm.registry.get("mote1")
    # Two events: before and after the new camera joins.
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=900.0))
    mote.inject(SensorStimulus("accel_x", start=40.0, duration=2.0,
                               magnitude=900.0))

    def join_later(env):
        yield env.timeout(20.0)
        # A camera mounted directly over the mote: clearly the best.
        newcomer = PanTiltZoomCamera(env, "cam3", Point(4, 2.5),
                                     view_half_angle=180.0)
        engine.add_device(newcomer)

    engine.env.process(join_later(engine.env))
    engine.start()
    engine.run(until=70.0)
    requests = sorted(engine.completed_requests, key=lambda r: r.created_at)
    assert len(requests) == 2
    assert requests[0].assigned_device in ("cam1", "cam2")
    # The newcomer was not a candidate for the first event but is for
    # the second. (It need not *win*: cam1's head is already aimed at
    # the mote after the first photo, so staying put can be cheapest —
    # sequence-dependent costs at work.)
    assert "cam3" not in requests[0].candidates
    assert "cam3" in requests[1].candidates
    assert all(r.state is RequestState.SERVICED for r in requests)


def test_sensor_leaving_stops_its_events(engine):
    engine.execute(FIGURE_1)
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=1e6,
                               magnitude=900.0))

    def leave_later(env):
        yield env.timeout(10.0)
        engine.comm.remove_device("mote1")

    engine.env.process(leave_later(engine.env))
    engine.start()
    engine.run(until=60.0)
    # Edge triggering fired once while the mote was present; after its
    # departure the (still active) stimulus can produce nothing.
    assert len(engine.completed_requests) == 1


def test_outage_during_continuous_run(engine):
    engine.execute(FIGURE_1)
    injector = FailureInjector(engine.env)
    injector.schedule_outage(engine.comm.registry.get("cam1"), OutageSpec(
        device_id="cam1", start=5.0, duration=30.0))
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=10.0, duration=2.0,
                               magnitude=900.0))
    mote.inject(SensorStimulus("accel_x", start=50.0, duration=2.0,
                               magnitude=900.0))
    engine.start()
    engine.run(until=80.0)
    requests = sorted(engine.completed_requests, key=lambda r: r.created_at)
    assert len(requests) == 2
    # During the outage only cam2 was available; afterwards cam1 (closer
    # to mote1) is eligible again.
    assert requests[0].assigned_device == "cam2"
    assert all(r.state is RequestState.SERVICED for r in requests)


@pytest.mark.slow
def test_long_run_with_random_failures_stays_consistent():
    """A soak test: 20 virtual minutes, random outages, many events."""
    import random
    engine = build_lab(n_motes=6)
    for i in range(1, 7):
        engine.execute(f'''CREATE AQ q{i} AS
            SELECT photo(c.ip, s.loc, "photos/q{i}")
            FROM sensor s, camera c
            WHERE s.accel_x > 500 AND s.id = "mote{i}"
              AND coverage(c.id, s.loc)''')
    rng = random.Random(5)
    for i in range(1, 7):
        mote = engine.comm.registry.get(f"mote{i}")
        for _ in range(10):
            mote.inject(SensorStimulus(
                "accel_x", start=rng.uniform(1, 1150), duration=3.0,
                magnitude=900.0))
    injector = FailureInjector(engine.env)
    injector.random_outages(
        list(engine.comm.registry), horizon=1100.0,
        outage_rate_per_device=0.002, mean_duration=30.0,
        rng=random.Random(9))
    engine.start()
    # Run well past the last event so every outage has recovered.
    engine.run(until=1600.0)

    stats = engine.statistics()
    assert stats["requests_completed"] > 20
    # Everything is accounted for: serviced + failed = completed.
    assert (stats["requests_serviced"] + stats["requests_failed"]
            == stats["requests_completed"])
    # All devices recovered (outages are finite).
    assert all(d.online for d in engine.comm.registry)
    # No device lock leaked.
    for device in engine.comm.registry:
        assert not engine.locks.is_locked(device.device_id)
