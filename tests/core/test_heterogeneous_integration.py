"""Mixed-action integration: independent shared operators, one batch each."""

import pytest

from repro import SensorStimulus
from repro.actions.request import RequestState
from tests.core.conftest import FIGURE_1


def test_photo_and_blink_dispatch_independently(engine):
    engine.execute(FIGURE_1)
    engine.execute('''CREATE AQ halo AS
        SELECT blink(t.id)
        FROM sensor s, sensor t
        WHERE s.accel_x > 500 AND distance(t.loc, s.loc) < 5
          AND distance(t.loc, s.loc) > 0''')
    mote = engine.comm.registry.get("mote2")  # mote1/mote3 are 4 m away
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.5,
                               magnitude=900.0))
    engine.start()
    engine.run(until=40.0)

    by_action = {}
    for request in engine.completed_requests:
        by_action.setdefault(request.action_name, []).append(request)
    assert set(by_action) == {"photo", "blink"}
    assert all(r.state is RequestState.SERVICED
               for requests in by_action.values() for r in requests)
    # One dispatch report per action: separate shared operators.
    assert sorted(r.action_name for r in engine.dispatcher.reports) == [
        "blink", "photo"]
    # blink landed on a sensor, photo on a camera.
    blink_device = engine.comm.registry.get(
        by_action["blink"][0].assigned_device)
    photo_device = engine.comm.registry.get(
        by_action["photo"][0].assigned_device)
    assert blink_device.device_type == "sensor"
    assert photo_device.device_type == "camera"


def test_same_event_feeds_both_operators_same_poll(engine):
    engine.execute(FIGURE_1)
    engine.execute('''CREATE AQ halo AS
        SELECT blink(t.id)
        FROM sensor s, sensor t
        WHERE s.accel_x > 500 AND distance(t.loc, s.loc) < 5
          AND distance(t.loc, s.loc) > 0''')
    mote = engine.comm.registry.get("mote2")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.5,
                               magnitude=900.0))
    engine.start()
    engine.run(until=40.0)
    emitted = engine.tracer.of_kind("request_emitted")
    assert {record["action"] for record in emitted} == {"photo", "blink"}
    # Both requests stem from the same scan pass (same virtual instant).
    times = {record.at for record in emitted}
    assert len(times) == 1
