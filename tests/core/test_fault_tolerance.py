"""Fault-tolerant action execution: retry, failover, quarantine.

These tests exercise the PR-2 fault-tolerance layer end to end: the
RetryPolicy around action execution in the dispatcher, failover
re-dispatch through the shared operator, the DeviceHealthTracker gate
on candidate sets, and the drain of a dead device's queue.
"""

import pytest

from repro.errors import AortaError
from repro import EngineConfig, HealthPolicy, Point, RetryPolicy
from repro.actions.request import ActionRequest, RequestState
from repro.devices.health import BreakerState
from tests.core.conftest import build_lab


def make_request(engine, target, candidates=("cam1", "cam2")):
    return ActionRequest(
        action_name="photo",
        arguments={"target": target, "directory": "photos"},
        created_at=engine.env.now,
        candidates=tuple(candidates),
    )


def drive(engine, requests):
    """Dispatch a batch, then keep draining failover re-entries."""
    action = engine.actions.get("photo")
    reports = []

    def proc(env):
        report = yield from engine.dispatcher.dispatch_batch(
            action, requests)
        reports.append(report)
        while engine.dispatcher.pending_requests:
            more = yield from engine.dispatcher.dispatch_pending()
            reports.extend(more)

    engine.env.process(proc(engine.env))
    engine.env.run()
    return reports


# ----------------------------------------------------------------------
# RetryPolicy itself
# ----------------------------------------------------------------------
def test_retry_policy_validation():
    with pytest.raises(AortaError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(AortaError, match="backoff_factor"):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(AortaError, match="jitter"):
        RetryPolicy(jitter=1.5)
    with pytest.raises(AortaError, match="max_dispatches"):
        RetryPolicy(max_dispatches=0)


def test_retry_policy_backoff_shape():
    import random
    policy = RetryPolicy(max_attempts=4, backoff_base=1.0,
                         backoff_factor=2.0, backoff_max=3.0, jitter=0.0)
    rng = random.Random(0)
    assert [policy.backoff_seconds(a, rng) for a in (1, 2, 3)] \
        == [1.0, 2.0, 3.0]  # exponential, capped at backoff_max
    jittered = RetryPolicy(backoff_base=1.0, jitter=0.25)
    values = {jittered.backoff_seconds(1, random.Random(s))
              for s in range(20)}
    assert len(values) > 1
    assert all(0.75 <= value <= 1.25 for value in values)


def test_default_policy_is_disabled():
    assert not RetryPolicy().enabled
    assert not EngineConfig().fault_tolerance
    assert EngineConfig(
        retry=RetryPolicy(max_attempts=2)).fault_tolerance
    assert EngineConfig(health=HealthPolicy()).fault_tolerance


# ----------------------------------------------------------------------
# Retry on the same device
# ----------------------------------------------------------------------
def test_retry_bridges_a_transient_outage():
    engine = build_lab(config=EngineConfig(
        probing=False,
        retry=RetryPolicy(max_attempts=4, backoff_base=1.0,
                          backoff_factor=2.0, jitter=0.0)))
    engine.comm.registry.get("cam1").go_offline()

    def recovery(env):
        yield env.timeout(2.5)
        engine.comm.registry.get("cam1").go_online()

    engine.env.process(recovery(engine.env))
    request = make_request(engine, Point(4, 3), candidates=("cam1",))
    reports = drive(engine, [request])

    # Attempts at t=0 (fail), t=1 (fail), t=3 (cam1 back): serviced.
    assert request.state is RequestState.SERVICED
    assert request.assigned_device == "cam1"
    assert request.attempts == 3
    assert engine.dispatcher.retries_total == 2
    assert reports[0].serviced == 1
    assert reports[0].retries == 2
    assert len(engine.tracer.of_kind("request_retry")) == 2


def test_permanent_failures_are_not_retried():
    engine = build_lab(config=EngineConfig(
        probing=False,
        retry=RetryPolicy(max_attempts=3, failover=True)))
    # no_coverage is geometric and hence permanent for a fixed camera:
    # photographing a target behind it fails identically every attempt.
    request = make_request(engine, Point(-50, 0), candidates=("cam1",))
    drive(engine, [request])
    assert request.state is RequestState.FAILED
    assert request.attempts == 1
    assert engine.dispatcher.retries_total == 0
    assert engine.dispatcher.failovers_total == 0


# ----------------------------------------------------------------------
# Failover re-dispatch
# ----------------------------------------------------------------------
def test_failover_reassigns_to_surviving_candidate():
    engine = build_lab(config=EngineConfig(
        probing=False, retry=RetryPolicy(failover=True)))
    engine.comm.registry.get("cam1").go_offline()
    # Target near cam1, so the blind scheduler assigns cam1 first.
    request = make_request(engine, Point(4, 3))
    reports = drive(engine, [request])

    assert request.state is RequestState.SERVICED
    assert request.assigned_device == "cam2"
    assert request.failed_devices == ("cam1",)
    assert request.dispatches == 2
    assert engine.dispatcher.failovers_total == 1
    assert reports[0].failed_over == 1
    assert reports[0].serviced == 0 and reports[0].failed == 0
    assert reports[1].serviced == 1
    # The request completed exactly once.
    assert engine.dispatcher.completed == [request]
    assert engine.dispatcher.serviced_total == 1
    assert engine.dispatcher.failed_total == 0


def test_failover_respects_dispatch_cap():
    engine = build_lab(config=EngineConfig(
        probing=False,
        retry=RetryPolicy(failover=True, max_dispatches=2)))
    for camera in ("cam1", "cam2"):
        engine.comm.registry.get(camera).go_offline()
    request = make_request(engine, Point(4, 3))
    drive(engine, [request])
    # Two dispatches (original + one failover), then final failure.
    assert request.state is RequestState.FAILED
    assert request.dispatches == 2
    assert engine.dispatcher.failovers_total == 1


def test_no_available_candidate_requeues_until_recovery():
    engine = build_lab(config=EngineConfig(
        retry=RetryPolicy(failover=True, max_dispatches=6)))
    engine.comm.registry.get("cam1").go_offline()
    engine.comm.registry.get("cam2").go_offline()

    def recovery(env):
        yield env.timeout(3.0)
        engine.comm.registry.get("cam2").go_online()

    engine.env.process(recovery(engine.env))
    action = engine.actions.get("photo")
    operator = engine.dispatcher.operator_for(action)
    engine.dispatcher.start()
    operator.submit(make_request(engine, Point(16, 3)))
    engine.env.run(until=30.0)

    [request] = engine.dispatcher.completed
    assert request.state is RequestState.SERVICED
    assert request.assigned_device == "cam2"
    assert request.dispatches > 1


def test_dead_device_queue_drains_back_to_dispatcher():
    engine = build_lab(config=EngineConfig(
        probing=False, retry=RetryPolicy(failover=True)))
    engine.comm.registry.get("cam1").go_offline()
    action = engine.actions.get("photo")
    operator = engine.dispatcher.operator_for(action)
    first = make_request(engine, Point(4, 3))
    second = make_request(engine, Point(5, 3))
    first.dispatches = second.dispatches = 1
    camera = engine.comm.registry.get("cam1")

    def proc(env):
        yield from engine.dispatcher._service_queue(
            action, camera, [first, second])

    engine.env.process(proc(engine.env))
    engine.env.run()

    # The first request failed over after its attempt; the second was
    # drained back without ever executing on the dead camera.
    assert first.attempts == 1
    assert second.attempts == 0
    assert second.state is RequestState.PENDING
    assert "cam1" not in second.candidates
    assert operator.pending_count == 2
    assert not engine.locks.is_locked("cam1")


# ----------------------------------------------------------------------
# Quarantine wiring
# ----------------------------------------------------------------------
def test_repeated_probe_failures_quarantine_device():
    engine = build_lab(config=EngineConfig(
        retry=RetryPolicy(failover=True),
        health=HealthPolicy(failure_threshold=2, quarantine_seconds=30.0)))
    engine.comm.registry.get("cam1").go_offline()

    reports = drive(engine, [make_request(engine, Point(16, 3))])
    assert reports[-1].serviced == 1  # cam2 services it
    reports = drive(engine, [make_request(engine, Point(16, 3))])
    # Second consecutive probe failure opened the breaker.
    assert engine.health.state_of("cam1") is BreakerState.OPEN

    probes_before = engine.comm.prober.probes_sent
    reports = drive(engine, [make_request(engine, Point(16, 3))])
    # cam1 was skipped outright: only cam2 got probed.
    assert reports[-1].quarantined_skipped == 1
    assert engine.comm.prober.probes_sent == probes_before + 1


def test_quarantined_device_readmitted_after_probation_probe():
    engine = build_lab(config=EngineConfig(
        retry=RetryPolicy(failover=True),
        health=HealthPolicy(failure_threshold=2, quarantine_seconds=5.0)))
    camera = engine.comm.registry.get("cam1")
    camera.go_offline()
    drive(engine, [make_request(engine, Point(16, 3))])
    drive(engine, [make_request(engine, Point(16, 3))])
    assert engine.health.state_of("cam1") is BreakerState.OPEN

    camera.go_online()
    engine.env.run(until=engine.env.now + 6.0)  # window expires
    request = make_request(engine, Point(4, 3))
    drive(engine, [request])
    # Probation probe succeeded: cam1 is back in the candidate pool.
    assert engine.health.state_of("cam1") is BreakerState.CLOSED
    assert request.state is RequestState.SERVICED
    assert engine.health.recoveries_total == 1
    assert engine.statistics()["devices_readmitted"] == 1


# ----------------------------------------------------------------------
# Disabled-policy equivalence
# ----------------------------------------------------------------------
def test_fault_tolerance_config_is_inert_without_failures():
    """With nothing failing, FT on and off behave identically."""
    outcomes = []
    for config in (EngineConfig(),
                   EngineConfig(retry=RetryPolicy(max_attempts=3,
                                                  failover=True),
                                health=HealthPolicy())):
        engine = build_lab(config=config)
        requests = [make_request(engine, Point(4, 3)),
                    make_request(engine, Point(16, 3)),
                    make_request(engine, Point(10, 3))]
        reports = drive(engine, requests)
        outcomes.append((
            [r.assigned_device for r in requests],
            [r.completed_at for r in requests],
            [(rep.serviced, rep.failed, rep.failed_over,
              rep.batch_finished_at) for rep in reports],
        ))
    assert outcomes[0] == outcomes[1]


def test_statistics_expose_fault_tolerance_counters():
    engine = build_lab(config=EngineConfig(
        retry=RetryPolicy(max_attempts=2, failover=True),
        health=HealthPolicy()))
    drive(engine, [make_request(engine, Point(4, 3))])
    stats = engine.statistics()
    assert stats["execution_attempts"] == 1
    assert stats["retries"] == 0
    assert stats["failovers"] == 0
    assert stats["devices_quarantined"] == 0
    assert stats["currently_quarantined"] == 0
