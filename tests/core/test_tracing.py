"""Tests for the engine trace log."""

import pytest

from repro import SensorStimulus
from repro.core.tracing import EngineTracer, TraceRecord
from tests.core.conftest import FIGURE_1


# ----------------------------------------------------------------------
# The tracer itself
# ----------------------------------------------------------------------

def test_record_and_filter():
    tracer = EngineTracer()
    tracer.record(1.0, "event_detected", query="q1", sensor="m1")
    tracer.record(2.0, "request_serviced", request="r1")
    tracer.record(3.0, "event_detected", query="q2", sensor="m2")
    assert len(tracer) == 3
    detected = tracer.of_kind("event_detected")
    assert [r["query"] for r in detected] == ["q1", "q2"]
    assert [r.kind for r in tracer.since(2.0)] == [
        "request_serviced", "event_detected"]


def test_bounded_retention():
    tracer = EngineTracer(max_records=3)
    for i in range(10):
        tracer.record(float(i), "event_detected", index=i)
    assert len(tracer) == 3
    assert [r["index"] for r in tracer] == [7, 8, 9]


def test_listener_called():
    tracer = EngineTracer()
    seen = []
    tracer.listener = seen.append
    record = tracer.record(1.0, "query_dropped", query="q")
    assert seen == [record]


def test_render_and_clear():
    tracer = EngineTracer()
    tracer.record(1.5, "probe_failed", device="cam9", error="timeout")
    text = tracer.tail()
    assert "probe_failed" in text and "cam9" in text
    tracer.clear()
    assert len(tracer) == 0


def test_record_str():
    record = TraceRecord(at=2.0, kind="request_failed",
                         fields={"device": "cam1"})
    assert "request_failed" in str(record)
    assert record["device"] == "cam1"


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------

def test_engine_traces_full_lifecycle(engine):
    engine.execute(FIGURE_1)
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=900.0))
    engine.start()
    engine.run(until=30.0)
    kinds = {record.kind for record in engine.tracer}
    assert {"query_registered", "event_detected", "request_emitted",
            "batch_dispatched", "request_serviced"} <= kinds
    # Timestamps are monotone non-decreasing.
    times = [record.at for record in engine.tracer]
    assert times == sorted(times)


def test_engine_traces_probe_failures(engine):
    engine.execute(FIGURE_1)
    engine.comm.registry.get("cam1").go_offline()
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=900.0))
    engine.start()
    engine.run(until=30.0)
    failures = engine.tracer.of_kind("probe_failed")
    assert len(failures) == 1
    assert failures[0]["device"] == "cam1"


def test_engine_traces_drop(engine):
    engine.execute(FIGURE_1)
    engine.execute("DROP AQ snapshot")
    assert [r["query"] for r in engine.tracer.of_kind("query_dropped")] \
        == ["snapshot"]
