"""Integration tests: the engine end to end on the Figure 1 scenario."""

import pytest

from repro.errors import AortaError, BindingError, QueryError
from repro import EngineConfig, SensorStimulus
from repro.actions.request import RequestState
from tests.core.conftest import FIGURE_1, build_lab


def test_create_aq_registers_query(engine):
    registered = engine.execute(FIGURE_1)
    assert registered.name == "snapshot"
    assert "snapshot" in engine.continuous.queries


def test_drop_aq_unregisters(engine):
    engine.execute(FIGURE_1)
    engine.execute("DROP AQ snapshot")
    assert "snapshot" not in engine.continuous.queries


def test_drop_unknown_aq_rejected(engine):
    from repro.errors import RegistrationError
    with pytest.raises(RegistrationError, match="no registered query"):
        engine.execute("DROP AQ ghost")


def test_event_triggers_photo(engine):
    engine.execute(FIGURE_1)
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.5,
                               magnitude=800.0))
    engine.start()
    engine.run(until=20.0)
    requests = engine.completed_requests
    assert len(requests) == 1
    request = requests[0]
    assert request.state is RequestState.SERVICED
    assert request.query_id == "snapshot"
    photo = request.result
    assert photo.ok
    assert photo.directory == "photos/admin"
    # The chosen camera actually covers the mote's location.
    camera = engine.comm.registry.get(request.assigned_device)
    assert camera.covers(photo.target)


def test_edge_triggering_fires_once_per_event(engine):
    engine.execute(FIGURE_1)
    mote = engine.comm.registry.get("mote1")
    # One long stimulus spanning many polls: one event.
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=8.0,
                               magnitude=800.0))
    engine.start()
    engine.run(until=30.0)
    assert len(engine.completed_requests) == 1


def test_level_triggering_fires_every_poll():
    engine = build_lab(config=EngineConfig(edge_triggered=False))
    engine.execute(FIGURE_1)
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=5.0,
                               magnitude=800.0))
    engine.start()
    engine.run(until=30.0)
    assert len(engine.completed_requests) > 1


def test_separate_events_fire_separately(engine):
    engine.execute(FIGURE_1)
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=800.0))
    mote.inject(SensorStimulus("accel_x", start=10.0, duration=2.0,
                               magnitude=800.0))
    engine.start()
    engine.run(until=40.0)
    assert len(engine.completed_requests) == 2


def test_concurrent_queries_share_action_operator(engine):
    engine.execute(FIGURE_1)
    engine.execute('''CREATE AQ snapshot2 AS
        SELECT photo(c.ip, s.loc, "photos/backup")
        FROM sensor s, camera c
        WHERE s.accel_x > 300 AND coverage(c.id, s.loc)''')
    operator = engine.dispatcher.operator_for(engine.actions.get("photo"))
    assert operator.shared
    assert operator.attached_queries == {"snapshot", "snapshot2"}


def test_shared_operator_batches_requests_from_multiple_queries(engine):
    engine.execute(FIGURE_1)
    engine.execute('''CREATE AQ snapshot2 AS
        SELECT photo(c.ip, s.loc, "photos/backup")
        FROM sensor s, camera c
        WHERE s.accel_x > 300 AND coverage(c.id, s.loc)''')
    mote = engine.comm.registry.get("mote2")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.5,
                               magnitude=900.0))
    engine.start()
    engine.run(until=30.0)
    # Both queries fired on the same event; one batch dispatched both.
    assert len(engine.completed_requests) == 2
    assert {r.query_id for r in engine.completed_requests} == {
        "snapshot", "snapshot2"}
    batch_report = engine.dispatcher.reports[0]
    assert batch_report.batch_size == 2


def test_event_with_no_covering_camera_is_uncovered(engine):
    env = engine.env
    from repro import Point, SensorMote
    far_mote = SensorMote(env, "far", Point(500, 500), noise_amplitude=0.0)
    engine.add_device(far_mote)
    engine.execute(FIGURE_1)
    far_mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                                   magnitude=900.0))
    engine.start()
    engine.run(until=10.0)
    assert engine.completed_requests == []
    assert engine.continuous.queries["snapshot"].uncovered_events == 1


def test_offline_camera_excluded_by_probe(engine):
    engine.execute(FIGURE_1)
    engine.comm.registry.get("cam1").go_offline()
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=800.0))
    engine.start()
    engine.run(until=30.0)
    request = engine.completed_requests[0]
    assert request.state is RequestState.SERVICED
    assert request.assigned_device == "cam2"


def test_all_cameras_offline_request_fails(engine):
    engine.execute(FIGURE_1)
    engine.comm.registry.get("cam1").go_offline()
    engine.comm.registry.get("cam2").go_offline()
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=800.0))
    engine.start()
    engine.run(until=30.0)
    request = engine.completed_requests[0]
    assert request.state is RequestState.FAILED
    assert "no available candidate" in request.failure_reason


def test_statistics_snapshot(engine):
    engine.execute(FIGURE_1)
    engine.start()
    engine.run(until=5.0)
    stats = engine.statistics()
    assert stats["devices"] == 6
    assert stats["queries"] == 1
    assert stats["polls"] >= 1


def test_engine_start_twice_rejected(engine):
    engine.start()
    with pytest.raises(AortaError, match="already started"):
        engine.start()


def test_run_select_rejects_aq(engine):
    with pytest.raises(QueryError, match="only executes SELECT"):
        engine.run_select(FIGURE_1)
