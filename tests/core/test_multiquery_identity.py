"""Golden identity: the predicate index must not change behaviour.

``predicate_index=True`` switches the continuous executor from the
scan-all walk to indexed matching. Every scenario here runs twice —
knob off and knob on — and the normalized engine dumps (full trace,
statistics, serviced sets, metric snapshots) must be identical, across
observability on/off, both runtime backends, and both fleet widths.
The only tolerated difference is the ``predicate_index_*`` statistics
block, which exists only when the knob is on and is stripped before
diffing.
"""

import pytest

from repro import EngineConfig

from tests.core.conftest import FIGURE_1, build_lab
from tests.obs.golden import diff_dumps, dump_engine
from tests.obs.scenarios import (
    continuous_outage_scenario,
    snapshot_scenario,
)
from tests.shard.scenarios import (
    region_fleet_scenario,
    sharded_snapshot_scenario,
)


def normalized(engine):
    dump = dump_engine(engine)
    dump["statistics"] = {
        key: value for key, value in dump["statistics"].items()
        if not key.startswith("predicate_index_")
    }
    return dump


def assert_identical(baseline, indexed):
    differences = diff_dumps(normalized(baseline), normalized(indexed))
    assert not differences, "\n".join(differences)


@pytest.mark.parametrize("observability", [False, True])
def test_snapshot_identity(observability):
    assert_identical(
        snapshot_scenario(observability),
        snapshot_scenario(observability, predicate_index=True))


@pytest.mark.parametrize("observability", [False, True])
def test_continuous_outage_identity(observability):
    assert_identical(
        continuous_outage_scenario(observability),
        continuous_outage_scenario(observability, predicate_index=True))


def test_snapshot_identity_realtime_backend():
    assert_identical(
        snapshot_scenario(True, runtime="realtime", time_scale=0.0),
        snapshot_scenario(True, runtime="realtime", time_scale=0.0,
                          predicate_index=True))


def test_continuous_outage_identity_realtime_backend():
    assert_identical(
        continuous_outage_scenario(True, runtime="realtime",
                                   time_scale=0.0),
        continuous_outage_scenario(True, runtime="realtime",
                                   time_scale=0.0,
                                   predicate_index=True))


def test_single_shard_identity():
    assert_identical(
        sharded_snapshot_scenario(True),
        sharded_snapshot_scenario(True, predicate_index=True))


def test_four_shard_identity():
    baseline = region_fleet_scenario(4, True)
    indexed = region_fleet_scenario(4, True, predicate_index=True)
    for base_shard, indexed_shard in zip(baseline.shards,
                                         indexed.shards):
        assert_identical(base_shard, indexed_shard)


@pytest.mark.parametrize("indexed", [False, True])
def test_idle_table_scan_and_index_retired(indexed):
    """Dropping a table's last reader retires its scan and index."""
    engine = build_lab(EngineConfig(predicate_index=indexed))
    engine.execute(FIGURE_1)
    engine.start()
    engine.run(until=3.0)
    continuous = engine.continuous
    assert "sensor" in continuous._scans
    assert ("sensor" in continuous._indexes) == indexed
    engine.execute("DROP AQ snapshot")
    assert "sensor" not in continuous._queries_by_table
    assert "sensor" not in continuous._scans
    assert "sensor" not in continuous._indexes


def test_second_reader_keeps_the_scan_alive():
    engine = build_lab(EngineConfig(predicate_index=True))
    engine.execute(FIGURE_1)
    engine.execute('''CREATE AQ hot AS
        SELECT photo(c.ip, s.loc, "photos/hot")
        FROM sensor s, camera c
        WHERE s.temperature > 90 AND coverage(c.id, s.loc)''')
    engine.start()
    engine.run(until=3.0)
    continuous = engine.continuous
    engine.execute("DROP AQ snapshot")
    assert "sensor" in continuous._scans
    assert "sensor" in continuous._indexes
    assert "snapshot" not in continuous._indexes["sensor"]
    engine.execute("DROP AQ hot")
    assert "sensor" not in continuous._scans
    assert "sensor" not in continuous._indexes
