"""Integration: phone reachability through the full engine stack."""

import pytest

from repro import SensorStimulus
from repro.actions.builtins import sendphoto_profile, sendphoto_resolver
from repro.actions.request import RequestState
from repro.devices.failures import FailureInjector


def install_sendphoto(engine):
    def impl(device, args):
        yield from device.execute("connect")
        outcome = yield from device.execute(
            "receive_mms", sender="aorta", body="photo",
            attachment=args["photo_pathname"], size_kb=50.0)
        return outcome.detail

    engine.install_action_code("lib/users/sendphoto.dll", impl)
    engine.install_action_profile(
        "profiles/users/sendphoto.xml", sendphoto_profile(),
        sendphoto_resolver, device_parameters={"phone_no": "number"})
    engine.execute('''CREATE ACTION sendphoto(String phone_no,
                                              String photo_pathname)
        AS "lib/users/sendphoto.dll"
        PROFILE "profiles/users/sendphoto.xml"''')
    engine.execute('''CREATE AQ notify AS
        SELECT sendphoto(p.number, "photos/alert.jpg")
        FROM sensor s, phone p
        WHERE s.accel_x > 500''')


def trigger(engine, at=2.0):
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=at, duration=2.0,
                               magnitude=900.0))


def test_out_of_coverage_phone_excluded_by_probe(engine):
    """A phone out of carrier coverage never answers the probe, so the
    optimizer excludes it — the paper's Section 4 example verbatim."""
    install_sendphoto(engine)
    engine.comm.registry.get("phone1").leave_coverage()
    trigger(engine)
    engine.start()
    engine.run(until=30.0)
    request = engine.completed_requests[0]
    assert request.state is RequestState.FAILED
    assert "no available candidate" in request.failure_reason
    assert engine.tracer.of_kind("probe_failed")[0]["device"] == "phone1"


def test_dropout_window_misses_then_recovers(engine):
    install_sendphoto(engine)
    injector = FailureInjector(engine.env)
    injector.schedule_coverage_dropout(
        engine.comm.registry.get("phone1"), start=0.0, duration=20.0)
    trigger(engine, at=2.0)    # during the dropout: fails
    trigger(engine, at=40.0)   # after recovery: delivered
    engine.start()
    engine.run(until=70.0)
    states = [r.state for r in sorted(engine.completed_requests,
                                      key=lambda r: r.created_at)]
    assert states == [RequestState.FAILED, RequestState.SERVICED]
    assert len(engine.comm.registry.get("phone1").inbox) == 1
