"""The shared-scan optimization: one acquisition per table per poll.

The continuous executor scans each event table once per poll no matter
how many queries watch it — the data-acquisition analogue of shared
action operators.
"""

import pytest

from repro import SensorStimulus


def register_n_queries(engine, count):
    for i in range(count):
        engine.execute(f'''CREATE AQ q{i} AS
            SELECT photo(c.ip, s.loc, "photos/q{i}")
            FROM sensor s, camera c
            WHERE s.accel_x > {500 + i} AND coverage(c.id, s.loc)''')


def run_polls(engine, polls):
    counts = []

    def driver(env):
        for _ in range(polls):
            yield from engine.continuous.poll_once()
        counts.append(engine.continuous._scans["sensor"].tuples_produced)

    engine.env.process(driver(engine.env))
    engine.env.run()
    return counts[0]


def test_one_scan_per_poll_regardless_of_query_count(engine):
    register_n_queries(engine, 5)
    tuples = run_polls(engine, polls=4)
    # 3 motes x 4 polls, NOT x5 queries.
    assert tuples == 12


def test_single_query_same_scan_cost(engine):
    register_n_queries(engine, 1)
    assert run_polls(engine, polls=4) == 12


def test_all_queries_see_the_same_event(engine):
    register_n_queries(engine, 3)
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.5,
                               magnitude=900.0))
    engine.start()
    engine.run(until=30.0)
    queries = engine.continuous.queries
    assert all(queries[f"q{i}"].events_detected == 1 for i in range(3))
