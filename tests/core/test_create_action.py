"""The full CREATE ACTION flow: install code + profile, register, use."""

import pytest

from repro.errors import AortaError, BindingError
from repro import SensorStimulus
from repro.actions.builtins import (
    sendphoto_profile,
    sendphoto_resolver,
)
from tests.core.conftest import build_lab

CREATE_SENDPHOTO = '''CREATE ACTION sendphoto(String phone_no,
                                              String photo_pathname)
AS "lib/users/sendphoto.dll"
PROFILE "profiles/users/sendphoto.xml"'''


def sendphoto_impl(device, args):
    yield from device.execute("connect")
    outcome = yield from device.execute(
        "receive_mms", sender="aorta", body="photo",
        attachment=args["photo_pathname"], size_kb=100.0)
    return outcome.detail


def install_assets(engine, select_all=False):
    engine.install_action_code("lib/users/sendphoto.dll", sendphoto_impl)
    engine.install_action_profile(
        "profiles/users/sendphoto.xml",
        sendphoto_profile(), sendphoto_resolver,
        device_parameters={"phone_no": "number"},
        select_all=select_all)


def test_create_action_registers_definition(engine):
    install_assets(engine)
    definition = engine.execute(CREATE_SENDPHOTO)
    assert definition.name == "sendphoto"
    assert definition.device_type == "phone"
    assert definition.library_path == "lib/users/sendphoto.dll"
    assert not definition.builtin
    assert engine.actions.get("sendphoto") is definition
    # Cost estimation works immediately after registration.
    phone = engine.comm.registry.get("phone1")
    estimate = engine.cost_model.estimate(
        "sendphoto", phone,
        {"phone_no": "+852", "photo_pathname": "x.jpg"})
    assert estimate.seconds > 0


def test_create_action_without_code_rejected(engine):
    engine.install_action_profile(
        "profiles/users/sendphoto.xml",
        sendphoto_profile(), sendphoto_resolver)
    with pytest.raises(BindingError, match="no implementation"):
        engine.execute(CREATE_SENDPHOTO)


def test_create_action_without_profile_rejected(engine):
    engine.install_action_code("lib/users/sendphoto.dll", sendphoto_impl)
    with pytest.raises(BindingError, match="no profile installed"):
        engine.execute(CREATE_SENDPHOTO)


def test_profile_name_mismatch_rejected(engine):
    engine.install_action_code("lib/users/sendphoto.dll", sendphoto_impl)
    engine.install_action_profile(
        "profiles/users/sendphoto.xml",
        sendphoto_profile(), sendphoto_resolver)
    with pytest.raises(BindingError, match="is for action"):
        engine.execute('''CREATE ACTION forward(String phone_no,
                                                String photo_pathname)
            AS "lib/users/sendphoto.dll"
            PROFILE "profiles/users/sendphoto.xml"''')


def test_duplicate_profile_path_rejected(engine):
    install_assets(engine)
    with pytest.raises(AortaError, match="already installed"):
        engine.install_action_profile(
            "profiles/users/sendphoto.xml",
            sendphoto_profile(), sendphoto_resolver)


def test_user_defined_action_in_aq(engine):
    """A UDA embedded in an AQ executes end to end: a sensor event
    delivers an MMS to the manager's phone."""
    install_assets(engine)
    engine.execute(CREATE_SENDPHOTO)
    engine.execute('''CREATE AQ forward AS
        SELECT sendphoto(p.number, "photos/event.jpg")
        FROM sensor s, phone p
        WHERE s.accel_x > 500''')
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=900.0))
    engine.start()
    engine.run(until=30.0)
    phone = engine.comm.registry.get("phone1")
    assert len(phone.inbox) == 1
    assert phone.inbox[0].attachment == "photos/event.jpg"


def test_select_all_action_fans_out():
    engine = build_lab()
    install_assets(engine, select_all=True)
    engine.execute(CREATE_SENDPHOTO)
    # Add a second phone: select_all must hit both.
    from repro import MobilePhone, Point
    engine.add_device(MobilePhone(engine.env, "phone2", Point(5, 0),
                                  number="+85291111111"))
    engine.execute('''CREATE AQ broadcast AS
        SELECT sendphoto(p.number, "photos/alert.jpg")
        FROM sensor s, phone p
        WHERE s.accel_x > 500''')
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=900.0))
    engine.start()
    engine.run(until=30.0)
    assert len(engine.comm.registry.get("phone1").inbox) == 1
    assert len(engine.comm.registry.get("phone2").inbox) == 1
    assert len(engine.completed_requests) == 2
